"""CFG construction and a generic worklist dataflow framework.

The seed static race analysis (:mod:`repro.analysis.static_races`) is a
per-basic-block abstract interpretation that *resets at labels and
branches* — every loop or branching DMA idiom silently falls through to
the dynamic checker.  This module is the foundation that removes that
limitation: a control-flow graph over :class:`repro.ir.module.IRFunction`
and a forward worklist fixpoint engine with pluggable join/transfer
functions, in the spirit of the Scratch (TACAS 2010) static DMA analyser
the paper cites.

Three layers:

* :func:`build_cfg` — basic blocks, successor/predecessor edges,
  reverse postorder, dominators, back edges and natural loops.
* :class:`ForwardAnalysis` / :func:`solve_forward` — the fixpoint
  engine.  Analyses provide ``boundary`` (entry state), ``join`` and a
  per-block ``transfer``; the engine iterates in reverse-postorder until
  block-out states stop changing.  A ``widen`` hook is applied after a
  block has been revisited ``widen_after`` times, bounding loop-carried
  state growth.
* A shared symbolic-value domain (:class:`SymAddr`,
  :func:`eval_value_instr`, :func:`join_values`) used by the DMA
  discipline checker and the outer-traffic analysis alike: registers map
  to known integers or ``(region, offset)`` symbolic addresses, where a
  region is the frame, a global, or an opaque per-instruction pointer
  source.  ``offset is None`` means "somewhere inside the region" — the
  widened form produced when two paths disagree.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.ir.instructions import (
    BinOp,
    CJump,
    Const,
    FrameAddr,
    GlobalAddr,
    Jump,
    Move,
    Ret,
    Trap,
)
from repro.ir.module import IRFunction

#: Instructions that end a basic block.
_TERMINATORS = (Jump, CJump, Ret, Trap)


# ------------------------------------------------------------------- CFG


@dataclass
class BasicBlock:
    """A maximal straight-line instruction range ``[start, end)``."""

    index: int
    start: int
    end: int
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)
    #: Label names whose targets are ``start``.
    labels: tuple[str, ...] = ()

    def instructions(self, function: IRFunction):
        """Iterate ``(instr_index, instr)`` pairs of this block."""
        for index in range(self.start, self.end):
            yield index, function.code[index]


class ControlFlowGraph:
    """Basic blocks and edges of one IR function (entry is block 0)."""

    def __init__(self, function: IRFunction, blocks: list[BasicBlock]):
        self.function = function
        self.blocks = blocks
        self._block_of_index: dict[int, int] = {}
        for block in blocks:
            for index in range(block.start, block.end):
                self._block_of_index[index] = block.index
        self._rpo: Optional[list[int]] = None
        self._doms: Optional[list[set[int]]] = None

    @property
    def entry(self) -> int:
        return 0

    def block_at(self, instr_index: int) -> BasicBlock:
        """The block containing one instruction index."""
        return self.blocks[self._block_of_index[instr_index]]

    # -------------------------------------------------------------- orders

    def reverse_postorder(self) -> list[int]:
        """Block indices in reverse postorder from the entry.

        Unreachable blocks are excluded; analyses iterate this order so
        a block's predecessors are (loops aside) visited first.
        """
        if self._rpo is not None:
            return self._rpo
        if not self.blocks:
            self._rpo = []
            return self._rpo
        seen: set[int] = set()
        postorder: list[int] = []
        # Iterative DFS with an explicit successor cursor per frame.
        stack: list[tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            node, cursor = stack.pop()
            succs = self.blocks[node].succs
            while cursor < len(succs) and succs[cursor] in seen:
                cursor += 1
            if cursor == len(succs):
                postorder.append(node)
                continue
            stack.append((node, cursor + 1))
            child = succs[cursor]
            seen.add(child)
            stack.append((child, 0))
        self._rpo = postorder[::-1]
        return self._rpo

    # ---------------------------------------------------------- dominators

    def dominators(self) -> list[set[int]]:
        """``doms[b]`` = blocks dominating ``b`` (iterative, small CFGs)."""
        if self._doms is not None:
            return self._doms
        rpo = self.reverse_postorder()
        all_reachable = set(rpo)
        doms: list[set[int]] = [set(all_reachable) for _ in self.blocks]
        if self.blocks:
            doms[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for b in rpo:
                if b == self.entry:
                    continue
                preds = [p for p in self.blocks[b].preds if p in all_reachable]
                new = set(all_reachable)
                for p in preds:
                    new &= doms[p]
                new.add(b)
                if new != doms[b]:
                    doms[b] = new
                    changed = True
        self._doms = doms
        return doms

    def back_edges(self) -> list[tuple[int, int]]:
        """Edges ``u -> v`` where ``v`` dominates ``u`` (loop back edges)."""
        doms = self.dominators()
        edges = []
        for u in self.reverse_postorder():
            for v in self.blocks[u].succs:
                if v in doms[u]:
                    edges.append((u, v))
        return edges

    def natural_loops(self) -> list["Loop"]:
        """One :class:`Loop` per back edge, header-deduplicated (loops
        sharing a header are merged)."""
        bodies: dict[int, set[int]] = {}
        for u, header in self.back_edges():
            body = bodies.setdefault(header, {header})
            stack = [u]
            while stack:
                node = stack.pop()
                if node in body:
                    continue
                body.add(node)
                stack.extend(self.blocks[node].preds)
        return [
            Loop(header=header, body=frozenset(body))
            for header, body in sorted(bodies.items())
        ]


@dataclass(frozen=True)
class Loop:
    """A natural loop: its header block and every body block index."""

    header: int
    body: frozenset[int]


def build_cfg(function: IRFunction) -> ControlFlowGraph:
    """Partition a function into basic blocks and wire the edges."""
    code = function.code
    n = len(code)
    if n == 0:
        return ControlFlowGraph(function, [])
    leaders: set[int] = {0}
    targets_of_label = {name: idx for name, idx in function.labels.items()}
    labels_at: dict[int, list[str]] = {}
    for name, idx in sorted(targets_of_label.items()):
        if idx < n:
            leaders.add(idx)
            labels_at.setdefault(idx, []).append(name)
    for index, instr in enumerate(code):
        if isinstance(instr, _TERMINATORS) and index + 1 < n:
            leaders.add(index + 1)
    starts = sorted(leaders)
    blocks: list[BasicBlock] = []
    for bi, start in enumerate(starts):
        end = starts[bi + 1] if bi + 1 < len(starts) else n
        blocks.append(
            BasicBlock(
                index=bi,
                start=start,
                end=end,
                labels=tuple(labels_at.get(start, ())),
            )
        )
    block_of_start = {b.start: b.index for b in blocks}

    def target_block(label: str) -> Optional[int]:
        idx = targets_of_label[label]
        return block_of_start.get(idx)  # None: label at end of code = exit

    for block in blocks:
        last = code[block.end - 1]
        succs: list[int] = []
        if isinstance(last, Jump):
            t = target_block(last.label)
            if t is not None:
                succs.append(t)
        elif isinstance(last, CJump):
            for label in (last.then_label, last.else_label):
                t = target_block(label)
                if t is not None and t not in succs:
                    succs.append(t)
        elif isinstance(last, (Ret, Trap)):
            pass
        elif block.end < n:
            succs.append(block_of_start[block.end])
        block.succs = succs
    for block in blocks:
        for s in block.succs:
            blocks[s].preds.append(block.index)
    return ControlFlowGraph(function, blocks)


# -------------------------------------------------------- fixpoint engine


class ForwardAnalysis:
    """Interface a forward dataflow analysis implements.

    States are opaque immutable-ish values compared with ``==``.  The
    *bottom* element (no information yet / unreachable) is represented
    by ``None`` and never passed to ``join`` or ``transfer``.
    """

    def boundary(self):
        """The state on entry to the function."""
        raise NotImplementedError

    def join(self, a, b):
        """Least upper bound of two predecessor-out states."""
        raise NotImplementedError

    def transfer(self, block: BasicBlock, state):
        """The state after executing ``block`` from ``state``."""
        raise NotImplementedError

    def widen(self, old, new, visits: int):
        """Accelerate convergence once ``visits`` exceeds the engine's
        ``widen_after`` threshold.  Default: no widening."""
        return new

    def edge(self, pred: BasicBlock, succ_index: int, state):
        """Refine a predecessor-out state along the edge into block
        ``succ_index``.  Returning ``None`` marks the edge statically
        infeasible (its contribution is dropped).  The default is the
        identity — edge-insensitive analyses never notice the hook.

        This is what lets an analysis recover branch conditions: on the
        two out-edges of a ``cjump`` the condition register is known
        true/false, and an interval analysis can meet the compared
        operands with the implied bound (see
        :class:`repro.analysis.intervals.IntervalAnalysis`).
        """
        return state


@dataclass
class FixpointResult:
    """Solved dataflow: per-block entry/exit states and effort stats."""

    block_in: dict[int, object]
    block_out: dict[int, object]
    #: Number of block transfer applications until convergence.
    iterations: int
    converged: bool = True


def solve_forward(
    cfg: ControlFlowGraph,
    analysis: ForwardAnalysis,
    *,
    widen_after: int = 4,
    max_block_visits: int = 64,
) -> FixpointResult:
    """Run a forward analysis to fixpoint over one CFG.

    The worklist is prioritised by reverse-postorder position, so acyclic
    regions converge in one sweep and only loop bodies iterate.  After
    ``widen_after`` visits of the same block, :meth:`ForwardAnalysis.widen`
    is applied to its entry state — but only at *widening points*
    (targets of retreating edges, i.e. loop heads): widening a loop-body
    block would wipe out the precision an :meth:`ForwardAnalysis.edge`
    refinement just recovered on the body-entry edge, and every cycle
    passes through a retreating-edge target, so termination is
    unaffected.  ``max_block_visits`` is a hard safety valve (sets
    ``converged=False`` instead of looping forever on a non-monotone
    analysis bug).
    """
    rpo = cfg.reverse_postorder()
    if not rpo:
        return FixpointResult({}, {}, 0)
    rpo_pos = {b: i for i, b in enumerate(rpo)}
    widen_points = {
        b
        for b in rpo
        for p in cfg.blocks[b].preds
        if rpo_pos.get(p, -1) >= rpo_pos[b]
    }
    block_in: dict[int, object] = {}
    block_out: dict[int, object] = {}
    visits: dict[int, int] = {}
    iterations = 0
    converged = True
    heap: list[tuple[int, int]] = [(rpo_pos[b], b) for b in rpo]
    heapq.heapify(heap)
    queued = set(rpo)
    while heap:
        _, b = heapq.heappop(heap)
        if b not in queued:
            continue
        queued.discard(b)
        block = cfg.blocks[b]
        state = analysis.boundary() if b == cfg.entry else None
        for p in block.preds:
            out = block_out.get(p)
            if out is None:
                continue
            out = analysis.edge(cfg.blocks[p], b, out)
            if out is None:
                continue  # statically infeasible edge
            state = out if state is None else analysis.join(state, out)
        if state is None:
            continue  # not reachable yet
        count = visits.get(b, 0) + 1
        visits[b] = count
        if count > max_block_visits:
            converged = False
            continue
        if count > widen_after and b in widen_points and b in block_in:
            state = analysis.widen(block_in[b], state, count)
        block_in[b] = state
        new_out = analysis.transfer(block, state)
        iterations += 1
        if block_out.get(b) == new_out and b in block_out:
            continue
        block_out[b] = new_out
        for s in block.succs:
            if s not in queued:
                queued.add(s)
                heapq.heappush(heap, (rpo_pos[s], s))
    return FixpointResult(block_in, block_out, iterations, converged)


# ------------------------------------------------- symbolic value domain


@dataclass(frozen=True)
class SymAddr:
    """A symbolic address: region name + byte offset.

    Regions: ``"frame"`` (this function's frame), ``"global:<name>"``,
    or ``"u:<instr>"`` — an opaque pointer produced at one instruction
    (non-constant arithmetic).  ``offset is None`` is the widened
    "unknown offset within the region" element.
    """

    region: str
    offset: Optional[int]

    def shifted(self, delta: int) -> "SymAddr":
        if self.offset is None:
            return self
        return SymAddr(self.region, self.offset + delta)

    def widened(self) -> "SymAddr":
        return SymAddr(self.region, None)


#: A register's abstract value: a known int, a SymAddr, or absent (top).
Value = object


def join_value(a: Value, b: Value) -> Optional[Value]:
    """Join two register values; ``None`` means top (drop the register)."""
    if a == b:
        return a
    if isinstance(a, SymAddr) and isinstance(b, SymAddr) and a.region == b.region:
        return SymAddr(a.region, None)
    return None


def join_values(a: dict[int, Value], b: dict[int, Value]) -> dict[int, Value]:
    """Pointwise join of two register maps (absent = top)."""
    out: dict[int, Value] = {}
    for reg, value in a.items():
        other = b.get(reg)
        if other is None:
            continue
        joined = join_value(value, other)
        if joined is not None:
            out[reg] = joined
    return out


def eval_value_instr(
    instr, index: int, values: dict[int, Value]
) -> None:
    """Update a register map for one non-DMA instruction (in place).

    Mirrors the seed analysis' abstract semantics: constants, moves,
    frame/global addresses, and ``+``/``-``/``*`` with the extension
    that adding a non-constant to a symbolic base yields an opaque
    region named after the instruction index — deterministic across
    fixpoint iterations, which is what lets loop states converge.
    """
    if isinstance(instr, Const):
        if isinstance(instr.value, int):
            values[instr.dst] = instr.value
        else:
            values.pop(instr.dst, None)
    elif isinstance(instr, Move):
        src = values.get(instr.src)
        if src is None:
            values.pop(instr.dst, None)
        else:
            values[instr.dst] = src
    elif isinstance(instr, FrameAddr):
        values[instr.dst] = SymAddr("frame", instr.offset)
    elif isinstance(instr, GlobalAddr):
        values[instr.dst] = SymAddr(f"global:{instr.name}", 0)
    elif isinstance(instr, BinOp) and instr.op in ("+", "-", "*"):
        a = values.get(instr.a)
        b = values.get(instr.b)
        if instr.op == "*":
            if isinstance(a, int) and isinstance(b, int):
                values[instr.dst] = a * b
            else:
                values[instr.dst] = SymAddr(f"u:{index}", 0)
            return
        sign = 1 if instr.op == "+" else -1
        if isinstance(a, SymAddr) and isinstance(b, int):
            values[instr.dst] = a.shifted(sign * b)
        elif isinstance(b, SymAddr) and isinstance(a, int) and sign == 1:
            values[instr.dst] = b.shifted(a)
        elif isinstance(a, int) and isinstance(b, int):
            values[instr.dst] = a + sign * b
        else:
            values[instr.dst] = SymAddr(f"u:{index}", 0)
    else:
        dst = getattr(instr, "dst", None)
        if isinstance(dst, int):
            values.pop(dst, None)


def freeze_values(values: dict[int, Value]) -> tuple:
    """A hashable, order-canonical snapshot of a register map."""
    return tuple(sorted(values.items(), key=lambda item: item[0]))


def thaw_values(frozen: tuple) -> dict[int, Value]:
    return dict(frozen)


class ValuesAnalysis(ForwardAnalysis):
    """Register-value tracking alone (used by the traffic analysis).

    States are :func:`freeze_values` tuples; the transfer function folds
    :func:`eval_value_instr` over the block.
    """

    def __init__(self, function: IRFunction):
        self.function = function

    def boundary(self):
        return ()

    def join(self, a, b):
        return freeze_values(join_values(thaw_values(a), thaw_values(b)))

    def transfer(self, block: BasicBlock, state):
        values = thaw_values(state)
        for index, instr in block.instructions(self.function):
            eval_value_instr(instr, index, values)
        return freeze_values(values)

"""Source-effort metrics.

The paper quantifies engineering effort in source terms: offloading a
AAA game's AI cost "~200 lines of additional code"; restructuring the
component system took "1 day".  These helpers measure the analogous
quantities on OffloadMini sources so EXPERIMENTS.md can report
paper-vs-measured effort numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


def count_loc(source: str) -> int:
    """Non-blank, non-comment-only lines of an OffloadMini source."""
    count = 0
    in_block_comment = False
    for raw_line in source.splitlines():
        line = raw_line.strip()
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
                line = line.split("*/", 1)[1].strip()
            else:
                continue
        if line.startswith("/*"):
            if "*/" not in line:
                in_block_comment = True
                continue
            line = line.split("*/", 1)[1].strip()
        if "//" in line:
            line = line.split("//", 1)[0].strip()
        if line:
            count += 1
    return count


@dataclass(frozen=True)
class SourceDelta:
    """Line-level difference between a baseline and a modified source."""

    baseline_loc: int
    modified_loc: int
    added_lines: int
    removed_lines: int

    @property
    def net_additional(self) -> int:
        return self.modified_loc - self.baseline_loc


def source_delta(baseline: str, modified: str) -> SourceDelta:
    """Count lines added/removed between two sources (multiset diff).

    This mirrors how the paper counts "additional code": lines present
    in the offloaded version but not the original.
    """

    def _lines(source: str) -> list[str]:
        result = []
        for raw_line in source.splitlines():
            line = raw_line.strip()
            if line and not line.startswith("//"):
                result.append(line)
        return result

    from collections import Counter

    base_counts = Counter(_lines(baseline))
    mod_counts = Counter(_lines(modified))
    added = sum((mod_counts - base_counts).values())
    removed = sum((base_counts - mod_counts).values())
    return SourceDelta(
        baseline_loc=count_loc(baseline),
        modified_loc=count_loc(modified),
        added_lines=added,
        removed_lines=removed,
    )

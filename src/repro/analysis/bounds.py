"""Static DMA bounds and alignment checking over the interval domain.

The dynamic DMA engine (:mod:`repro.machine.dma`) validates transfers
against the *whole* local store and *whole* main memory — a loop-
computed transfer that walks past the end of its own buffer into a
neighbouring global corrupts data silently and passes every PR 4
check.  This checker consumes the interval × congruence analysis
(:mod:`repro.analysis.intervals`) to prove each ``dma_get`` /
``dma_put`` / accessor bulk transfer fits its source and destination
extents:

* the **outer** side against the byte size of the global it addresses
  (:class:`repro.ir.module.GlobalSlot`),
* the **local** side against the issuing function's frame reservation,
* the absolute address against the target's DMA alignment
  (:attr:`repro.machine.config.MachineConfig.dma_align`), using the
  congruence domain — a 24-byte stride from an 8-aligned base is
  *proven* aligned, not assumed,
* the transfer size against the paper's many-small-DMAs anti-pattern
  (§5: latency-bound transfers under ~one cache line each).

Codes:

* ``E-dma-oob`` — the transfer provably exceeds a known buffer extent
  on some iteration.  Reported only when the address and size intervals
  are *finite* (the loop analysis bounded them), which is what keeps
  this error-severity check free of false positives: an unknown bound
  stays quiet rather than guessing.
* ``W-dma-unaligned`` — every attainable transfer address is provably
  misaligned for the target's DMA engine.
* ``W-dma-tiny-transfer`` — a DMA issued inside a loop moves provably
  fewer than :data:`TINY_DMA_BYTES` bytes per trip; setup/latency
  dominates (the paper's "many small DMAs" anti-pattern).

Interprocedural findings carry related locations: the loop back edge
that makes the address loop-carried, and the call sites through which
an offload entry reaches the issuing function.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.diagnostics import Finding, RelatedLocation
from repro.analysis.intervals import (
    AbsAddr,
    AbsInt,
    Congruence,
    SolvedFunction,
    analyze_function,
    compute_summaries,
)
from repro.ir.instructions import Call, Intrinsic
from repro.ir.module import IRFunction, IRProgram
from repro.machine.config import MachineConfig

#: Below this many bytes, a DMA inside a loop is latency-dominated —
#: the §5 "many small transfers" anti-pattern.  One cache line of the
#: software cache (128 bytes) comfortably clears it; the Figure 1
#: per-entity transfers (24 bytes) deliberately do not get flagged:
#: the threshold targets sub-16-byte scalar-ish traffic.
TINY_DMA_BYTES = 16

#: Frames are allocated 16-aligned by the runtime FrameStack, so frame
#: offsets decide local-side alignment down to this grain.
_FRAME_ALIGN = 16

#: (intrinsic name, local-arg position, outer-arg position, size-arg
#: position, direction) for every bulk-transfer intrinsic.
_DMA_SITES = {
    "dma_get": (0, 1, 2, "get"),
    "dma_put": (0, 1, 2, "put"),
    "acc_bulk_get": (0, 1, 2, "get"),
    "acc_bulk_put": (0, 1, 2, "put"),
}


def _global_extent(program: IRProgram, region: str) -> Optional[tuple[str, int, int]]:
    """(name, base address, byte size) for a ``global:`` region."""
    if not region.startswith("global:"):
        return None
    name = region[len("global:"):]
    slot = program.globals.get(name)
    if slot is None:
        return None
    return name, slot.address, slot.size


def _loop_related(
    solved: SolvedFunction, instr_index: int, file: str
) -> tuple[RelatedLocation, ...]:
    """The back edge of the innermost loop around one instruction."""
    block = solved.cfg.block_at(instr_index)
    enclosing = [
        loop
        for loop in solved.cfg.natural_loops()
        if block.index in loop.body
    ]
    if not enclosing:
        return ()
    innermost = min(enclosing, key=lambda loop: len(loop.body))
    latches = [
        u for u, header in solved.cfg.back_edges() if header == innermost.header
    ]
    if not latches:
        return ()
    latch_end = solved.cfg.blocks[latches[0]].end - 1
    return (
        RelatedLocation(
            message=(
                "the transfer address varies around this loop back edge"
            ),
            file=file,
            function=solved.function.name,
            instr_index=latch_end,
        ),
    )


def _call_chain_related(
    program: IRProgram, function: IRFunction, file: str
) -> tuple[RelatedLocation, ...]:
    """Call sites in *other* accel functions reaching ``function`` —
    the interprocedural path an offload entry takes to the DMA site."""
    related = []
    for caller in sorted(program.accel_functions(), key=lambda f: f.name):
        if caller.name == function.name:
            continue
        for index, instr in enumerate(caller.code):
            if isinstance(instr, Call) and instr.callee == function.name:
                related.append(
                    RelatedLocation(
                        message=f"called from {caller.name}",
                        file=file,
                        function=caller.name,
                        instr_index=index,
                    )
                )
    return tuple(related[:4])  # keep diagnostics readable


def _in_loop(solved: SolvedFunction, instr_index: int) -> bool:
    block = solved.cfg.block_at(instr_index)
    return any(
        block.index in loop.body for loop in solved.cfg.natural_loops()
    )


def _check_extent(
    *,
    what: str,
    extent_name: str,
    extent: int,
    offset: AbsInt,
    size: AbsInt,
) -> Optional[str]:
    """An overrun message when ``[offset, offset+size)`` provably leaves
    ``[0, extent)`` on some attainable iteration; None when in bounds
    or not finitely bounded (no guessing at error severity)."""
    iv, sz = offset.interval, size.interval
    if not (iv.bounded and sz.bounded):
        return None
    if iv.lo < 0:
        return (
            f"the {what} address reaches byte {iv.lo} of {extent_name}, "
            f"before its start"
        )
    if iv.hi + sz.hi > extent:
        return (
            f"the {what} side spans bytes [{iv.lo}, {iv.hi + sz.hi}) of "
            f"{extent_name}, which holds only {extent} bytes"
        )
    return None


def check_function(
    program: IRProgram,
    function: IRFunction,
    config: MachineConfig,
    *,
    summaries=None,
    file: str = "<input>",
) -> list[Finding]:
    """Bounds/alignment findings for one accelerator function."""
    solved = analyze_function(function, summaries)
    findings: list[Finding] = []
    align = config.dma_align
    for index, instr in enumerate(function.code):
        if not isinstance(instr, Intrinsic) or instr.name not in _DMA_SITES:
            continue
        local_arg, outer_arg, size_arg, direction = _DMA_SITES[instr.name]
        regs = solved.values_before(index)
        local = regs.get(instr.args[local_arg])
        outer = regs.get(instr.args[outer_arg])
        size = regs.get(instr.args[size_arg])
        if not isinstance(size, AbsInt):
            size = AbsInt()
        related = _loop_related(solved, index, file)
        if not function.source_name.startswith("__offload_"):
            related += _call_chain_related(program, function, file)

        overruns: list[str] = []
        if isinstance(outer, AbsAddr):
            extent = _global_extent(program, outer.region)
            if extent is not None:
                name, _, nbytes = extent
                message = _check_extent(
                    what="outer",
                    extent_name=f"global '{name}'",
                    extent=nbytes,
                    offset=outer.offset,
                    size=size,
                )
                if message:
                    overruns.append(message)
        if isinstance(local, AbsAddr) and local.region == "frame":
            message = _check_extent(
                what="local",
                extent_name="the frame reservation",
                extent=function.frame_size,
                offset=local.offset,
                size=size,
            )
            if message:
                overruns.append(message)
        for message in overruns:
            findings.append(
                Finding(
                    code="E-dma-oob",
                    message=(
                        f"{instr.name} at instruction {index} is provably "
                        f"out of bounds: {message}"
                    ),
                    file=file,
                    function=function.name,
                    instr_index=index,
                    notes=(
                        "the DMA engine only validates whole-store bounds "
                        "at run time; this transfer would silently corrupt "
                        "adjacent data — clamp the loop bound or split the "
                        "transfer",
                    ),
                    analysis="dma-bounds",
                    related=related,
                )
            )

        if align > 1 and not overruns:
            misaligned: list[str] = []
            if isinstance(outer, AbsAddr):
                extent = _global_extent(program, outer.region)
                if extent is not None:
                    _, base, _ = extent
                    absolute = outer.offset.cong.add(Congruence.const(base))
                    if absolute.aligned_to(align) is False:
                        misaligned.append(
                            f"outer address ≡ {absolute.rem} "
                            f"(mod {absolute.mod or align})"
                        )
            if (
                isinstance(local, AbsAddr)
                and local.region == "frame"
                and align <= _FRAME_ALIGN
                and local.offset.cong.aligned_to(align) is False
            ):
                cong = local.offset.cong
                misaligned.append(
                    f"local address ≡ {cong.rem} (mod {cong.mod or align})"
                )
            if misaligned:
                findings.append(
                    Finding(
                        code="W-dma-unaligned",
                        message=(
                            f"{instr.name} at instruction {index} is "
                            f"provably misaligned for {config.name}'s "
                            f"{align}-byte DMA alignment: "
                            f"{'; '.join(misaligned)}"
                        ),
                        file=file,
                        function=function.name,
                        instr_index=index,
                        notes=(
                            "unaligned transfers take the slow path on "
                            "every target with a real DMA engine; pad the "
                            "struct or round the offset",
                        ),
                        analysis="dma-bounds",
                        related=related,
                    )
                )

        if (
            instr.name in ("dma_get", "dma_put")
            and size.interval.hi is not None
            and size.interval.hi < TINY_DMA_BYTES
            and _in_loop(solved, index)
        ):
            findings.append(
                Finding(
                    code="W-dma-tiny-transfer",
                    message=(
                        f"{instr.name} at instruction {index} moves at "
                        f"most {size.interval.hi} bytes per loop "
                        f"iteration; setup+latency dominate transfers "
                        f"under {TINY_DMA_BYTES} bytes"
                    ),
                    file=file,
                    function=function.name,
                    instr_index=index,
                    notes=(
                        "batch the loop's transfers into one bulk "
                        "dma_get/dma_put outside the loop, or use an "
                        "accessor with a software cache",
                    ),
                    analysis="dma-bounds",
                    related=related,
                )
            )
    return findings


def check_program(
    program: IRProgram,
    config: MachineConfig,
    *,
    file: str = "<input>",
) -> list[Finding]:
    """Bounds/alignment findings for every accelerator function.

    Shared-memory targets lower DMA to plain copies — there are no
    transfer sites left to check, so the walk is a cheap no-op there.
    """
    functions = sorted(program.accel_functions(), key=lambda f: f.name)
    summaries = compute_summaries(functions)
    findings: list[Finding] = []
    for function in functions:
        findings.extend(
            check_function(
                program, function, config, summaries=summaries, file=file
            )
        )
    return findings

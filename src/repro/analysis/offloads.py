"""Static offload-handle discipline check (``W-offload-unjoined``).

A launched offload whose handle is never joined finishes at an
unsynchronized time: nothing orders its memory effects against later
host code.  The runtime audits this precisely at run end
(:meth:`repro.vm.interpreter.Interpreter.audit_handles`); this module is
the matching *static* check, so ``repro.tools.check`` flags the pattern
without executing the program.

The check is per-function and flow-insensitive in the usual lattice
sense but walks the instruction list in order, tracking which registers
alias each launch's handle:

* ``Move`` propagates handle aliases; any other write to a register
  kills the aliases it held.
* An ``OffloadJoin`` of any alias marks the launch joined.
* A handle that *escapes* — passed to a call or intrinsic, stored to
  memory, or returned — is conservatively treated as joined elsewhere
  (no warning: we cannot see the rest of its life).

Statement-form ``__offload {...};`` blocks are auto-joined by the
lowerer, so this analysis only fires on expression-form launches whose
handle is provably dropped on the floor.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Finding
from repro.ir.instructions import (
    Call,
    DomainCall,
    ICall,
    Intrinsic,
    Move,
    OffloadJoin,
    OffloadLaunch,
    Ret,
    Store,
)
from repro.ir.module import IRFunction, IRProgram

_ESCAPE_CALLS = (Call, ICall, DomainCall, Intrinsic)


def check_function(function: IRFunction, file: str = "<input>") -> list[Finding]:
    """Warn for each launch in ``function`` that is neither joined nor
    escaping."""
    launches: list[tuple[int, OffloadLaunch]] = [
        (index, instr)
        for index, instr in enumerate(function.code)
        if isinstance(instr, OffloadLaunch)
    ]
    if not launches:
        return []

    #: register -> set of launch instruction indices it may alias
    aliases: dict[int, set[int]] = {}
    joined: set[int] = set()
    escaped: set[int] = set()

    def mark(regs, into: set[int]) -> None:
        for reg in regs:
            into.update(aliases.get(reg, ()))

    for index, instr in enumerate(function.code):
        if isinstance(instr, OffloadLaunch):
            aliases[instr.dst] = {index}
            continue
        if isinstance(instr, OffloadJoin):
            mark((instr.handle,), joined)
            continue
        if isinstance(instr, Move):
            aliases[instr.dst] = set(aliases.get(instr.src, ()))
            continue
        if isinstance(instr, _ESCAPE_CALLS):
            mark(instr.args, escaped)
        elif isinstance(instr, Store):
            mark((instr.src,), escaped)
        elif isinstance(instr, Ret):
            if instr.src is not None:
                mark((instr.src,), escaped)
        dst = getattr(instr, "dst", None)
        if isinstance(dst, int):
            aliases.pop(dst, None)

    findings = []
    for index, instr in launches:
        if index in joined or index in escaped:
            continue
        findings.append(
            Finding(
                code="W-offload-unjoined",
                message=(
                    f"offload #{instr.offload_id} handle (r{instr.dst}) "
                    f"is never joined; its completion is unsynchronized "
                    f"with the host"
                ),
                file=file,
                function=function.name,
                instr_index=index,
                analysis="offload-handles",
            )
        )
    return findings


def check_program(program: IRProgram, file: str = "<input>") -> list[Finding]:
    """Run the handle check over every host-side function."""
    findings: list[Finding] = []
    for function in sorted(
        program.host_functions(), key=lambda f: f.name
    ):
        findings.extend(check_function(function, file=file))
    return findings

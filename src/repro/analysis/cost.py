"""Static per-offload cycle and DMA-traffic estimation.

This is the "zero-run profile" consumer of the interval layer
(:mod:`repro.analysis.intervals`): loop trip-count bounds × the
machine's :class:`~repro.machine.config.CostModel` give a cycle and
DMA-byte *interval* for every offload entry without simulating a
single instruction.  Three consumers:

* the ``critical-path`` scheduler policy takes
  :func:`static_profile`'s per-offload cycle numbers through
  ``SchedOptions(profile=...)`` — profile-feedback quality with no
  profiling pass;
* the static-vs-dynamic agreement tests hold the predicted DMA bytes
  against the measured ``RunReport`` counters (exactly, for fully
  bounded uncached loops);
* ``repro.tools.check`` reports ``W-cost-unbounded`` when a loop in
  offloaded code cannot be bounded — on a local-store machine an
  unbounded loop means unbounded traffic, the paper's central resource.

The model deliberately mirrors how the interpreter charges cycles
(ALU/branch/call costs, ``local_access`` vs ``host_mem_access``, DMA
setup + latency + size/bandwidth) but does not try to be cycle-exact:
cycles form an *interval* whose upper bound orders offloads the same
way a measured profile does.  DMA **bytes** are exact where the loop
analysis is exact, because transfer sizes are architectural facts —
``dma_get``/``acc_bulk_*`` sizes and raw outer access widths — not
micro-architectural ones.

Block execution counts come from natural-loop trip bounds: a block
executes ``Π trips(L)`` for its enclosing loops (headers run one extra
trip for the exit test); the product's lower bound applies only when
the block provably runs every iteration (it is a header or dominates
every latch) and the outermost header dominates every function exit.
Everything else keeps a sound ``0`` lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.dataflow import build_cfg
from repro.analysis.diagnostics import Finding, RelatedLocation
from repro.analysis.intervals import (
    AbsInt,
    Interval,
    SolvedFunction,
    analyze_function,
    compute_summaries,
    loop_trips,
)
from repro.ir.instructions import (
    AccSpace,
    BinOp,
    Call,
    CJump,
    Const,
    Copy,
    DomainCall,
    FrameAddr,
    GlobalAddr,
    ICall,
    Intrinsic,
    Jump,
    Load,
    Move,
    Ret,
    Store,
    UnOp,
)
from repro.ir.module import IRFunction, IRProgram, OffloadMeta
from repro.machine.config import MachineConfig
from repro.vm.context import CACHE_LINE_SIZE

#: ``(lo, hi)`` with ``hi is None`` meaning unbounded.  Internal form;
#: results surface as :class:`repro.analysis.intervals.Interval`.
_Bounds = tuple[int, Optional[int]]

_ZERO: _Bounds = (0, 0)


def _add(a: _Bounds, b: _Bounds) -> _Bounds:
    hi = None if a[1] is None or b[1] is None else a[1] + b[1]
    return (a[0] + b[0], hi)


def _scale(a: _Bounds, count: _Bounds) -> _Bounds:
    hi = None if a[1] is None or count[1] is None else a[1] * count[1]
    return (a[0] * count[0], hi)


def _join(a: _Bounds, b: _Bounds) -> _Bounds:
    hi = None if a[1] is None or b[1] is None else max(a[1], b[1])
    return (min(a[0], b[0]), hi)


def _interval(b: _Bounds) -> Interval:
    return Interval(b[0], b[1])


@dataclass(frozen=True)
class FunctionCost:
    """Per-invocation cost interval of one accel function (callees
    included)."""

    name: str
    cycles: Interval
    get_bytes: Interval
    put_bytes: Interval
    #: ``(function name, header instruction index)`` of every natural
    #: loop whose trip count the interval analysis could not bound.
    unbounded_loops: tuple[tuple[str, int], ...] = ()

    @property
    def bounded(self) -> bool:
        return self.cycles.hi is not None


@dataclass(frozen=True)
class OffloadCost:
    """Static cost of one offload body (entry function, transitively)."""

    offload_id: int
    entry: str
    cycles: Interval
    get_bytes: Interval
    put_bytes: Interval
    unbounded_loops: tuple[tuple[str, int], ...] = ()

    @property
    def bounded(self) -> bool:
        return self.cycles.hi is not None

    @property
    def exact_traffic(self) -> bool:
        """True when the DMA-byte prediction is a single point — the
        static model commits to an exact figure the dynamic counters
        must reproduce."""
        return self.get_bytes.is_const and self.put_bytes.is_const


def _block_counts(
    solved: SolvedFunction,
) -> tuple[dict[int, _Bounds], list[tuple[int, TripCountLike]]]:
    """Execution-count bounds per reachable block, plus per-loop trips.

    Returns ``(counts, loops)`` where ``loops`` pairs each natural
    loop's header *instruction* index with its trip bounds (``None``
    max = unbounded) so callers can report unbounded loops by site.
    """
    cfg = solved.cfg
    loops = cfg.natural_loops()
    trips = {loop: loop_trips(solved, loop) for loop in loops}
    doms = cfg.dominators()
    latches: dict[int, list[int]] = {}
    for u, header in cfg.back_edges():
        latches.setdefault(header, []).append(u)
    exits = [
        b.index
        for b in cfg.blocks
        if not b.succs and b.index in set(cfg.reverse_postorder())
    ]

    counts: dict[int, _Bounds] = {}
    for index in cfg.reverse_postorder():
        enclosing = sorted(
            (loop for loop in loops if index in loop.body),
            key=lambda loop: len(loop.body),
        )
        lo, hi = 1, 1
        for loop in enclosing:
            t = trips[loop]
            extra = 1 if index == loop.header else 0
            lo *= t.min_trips + extra
            hi = (
                None
                if hi is None or t.max_trips is None
                else hi * (t.max_trips + extra)
            )
        # The product's lower bound only holds when this block provably
        # runs on every trip of every enclosing loop *and* control
        # provably enters the region at all.
        every_trip = all(
            index == loop.header
            or all(index in doms[latch] for latch in latches.get(loop.header, []))
            for loop in enclosing
        )
        anchor = enclosing[-1].header if enclosing else index
        reaches_exit = bool(exits) and all(anchor in doms[e] for e in exits)
        if not (every_trip and reaches_exit):
            lo = 0
        counts[index] = (lo, hi)
    loop_sites = [
        (cfg.blocks[loop.header].start, trips[loop]) for loop in loops
    ]
    return counts, loop_sites


# loop_trips returns TripCount; alias for the annotation above without
# importing it as a runtime dependency of the docstring.
TripCountLike = object


def _dma_transfer_cycles(config: MachineConfig, size: Optional[int]) -> _Bounds:
    cost = config.cost
    if size is None:
        return (cost.dma_setup + cost.dma_latency, None)
    wire = -(-size // cost.dma_bytes_per_cycle) if cost.dma_bytes_per_cycle else 0
    total = cost.dma_setup + cost.dma_latency + wire
    return (total, total)


class _OffloadCostBuilder:
    """Memoized interprocedural walk of one offload's call graph."""

    def __init__(
        self,
        program: IRProgram,
        meta: OffloadMeta,
        config: MachineConfig,
        summaries,
    ) -> None:
        self.program = program
        self.meta = meta
        self.config = config
        self.summaries = summaries
        self.memo: dict[str, FunctionCost] = {}
        self.stack: list[str] = []
        self.cached = meta.cache_kind is not None

    def _outer_access(self, size: int) -> tuple[_Bounds, _Bounds]:
        """(cycles, dma-get-equivalent bytes) of one raw outer access.

        On shared-memory machines outer access is a plain (cheap) load;
        with a software cache the DMA happens only on a miss, so bytes
        are ``[0, line]`` per access; raw DMA staging moves exactly the
        access width every time.
        """
        cost = self.config.cost
        if self.config.shared_memory:
            return ((cost.host_mem_access, cost.host_mem_access), _ZERO)
        if self.cached:
            probe = (cost.cache_probe, cost.cache_probe)
            miss = _dma_transfer_cycles(self.config, CACHE_LINE_SIZE)
            return (
                (probe[0], None if miss[1] is None else probe[1] + miss[1]),
                (0, CACHE_LINE_SIZE),
            )
        return (_dma_transfer_cycles(self.config, size), (size, size))

    def function_cost(self, name: str) -> FunctionCost:
        if name in self.memo:
            return self.memo[name]
        function = self.program.functions.get(name)
        if function is None or name in self.stack:
            # Unknown callee or recursion: sound but open-ended.
            return FunctionCost(
                name=name,
                cycles=Interval(0, None),
                get_bytes=Interval(0, None),
                put_bytes=Interval(0, None),
                unbounded_loops=((name, 0),) if name in self.stack else (),
            )
        self.stack.append(name)
        try:
            result = self._cost_of(function)
        finally:
            self.stack.pop()
        self.memo[name] = result
        return result

    def _cost_of(self, function: IRFunction) -> FunctionCost:
        solved = analyze_function(function, self.summaries)
        counts, loop_sites = _block_counts(solved)
        cost = self.config.cost
        cycles: _Bounds = _ZERO
        get_bytes: _Bounds = _ZERO
        put_bytes: _Bounds = _ZERO
        unbounded = [
            (function.name, header_index)
            for header_index, t in loop_sites
            if t.max_trips is None
        ]
        for block in solved.cfg.blocks:
            count = counts.get(block.index)
            if count is None:  # unreachable
                continue
            b_cycles: _Bounds = _ZERO
            b_get: _Bounds = _ZERO
            b_put: _Bounds = _ZERO
            for index in range(block.start, block.end):
                instr = function.code[index]
                c, g, p, u = self._instr_cost(solved, function, index, instr)
                b_cycles = _add(b_cycles, c)
                b_get = _add(b_get, g)
                b_put = _add(b_put, p)
                unbounded.extend(u)
            cycles = _add(cycles, _scale(b_cycles, count))
            get_bytes = _add(get_bytes, _scale(b_get, count))
            put_bytes = _add(put_bytes, _scale(b_put, count))
        return FunctionCost(
            name=function.name,
            cycles=_interval(cycles),
            get_bytes=_interval(get_bytes),
            put_bytes=_interval(put_bytes),
            unbounded_loops=tuple(dict.fromkeys(unbounded)),
        )

    def _instr_cost(
        self,
        solved: SolvedFunction,
        function: IRFunction,
        index: int,
        instr,
    ) -> tuple[_Bounds, _Bounds, _Bounds, list[tuple[str, int]]]:
        """(cycles, get bytes, put bytes, callee unbounded-loop sites)."""
        cost = self.config.cost
        alu = (cost.alu, cost.alu)
        if isinstance(instr, (Const, Move, BinOp, UnOp, FrameAddr, GlobalAddr)):
            return alu, _ZERO, _ZERO, []
        if isinstance(instr, (Jump, CJump)):
            return (cost.branch, cost.branch), _ZERO, _ZERO, []
        if isinstance(instr, Ret):
            return (cost.ret, cost.ret), _ZERO, _ZERO, []
        if isinstance(instr, Load):
            if instr.space is AccSpace.OUTER:
                c, bytes_ = self._outer_access(instr.size)
                return c, bytes_, _ZERO, []
            w = (
                cost.local_access
                if instr.space is AccSpace.LOCAL
                else cost.host_mem_access
            )
            return (w, w), _ZERO, _ZERO, []
        if isinstance(instr, Store):
            if instr.space is AccSpace.OUTER:
                c, bytes_ = self._outer_access(instr.size)
                return c, _ZERO, bytes_, []
            w = (
                cost.local_access
                if instr.space is AccSpace.LOCAL
                else cost.host_mem_access
            )
            return (w, w), _ZERO, _ZERO, []
        if isinstance(instr, Copy):
            size = instr.size if not instr.size_reg else None
            crossing = instr.dst_space is not instr.src_space
            if crossing and not self.config.shared_memory:
                return _dma_transfer_cycles(self.config, size), _ZERO, _ZERO, []
            w = cost.host_mem_access
            return (w, None if size is None else w + size), _ZERO, _ZERO, []
        if isinstance(instr, Call):
            callee = self.function_cost(instr.callee)
            base = (cost.call, cost.call)
            return (
                _add(base, _as_bounds(callee.cycles)),
                _as_bounds(callee.get_bytes),
                _as_bounds(callee.put_bytes),
                list(callee.unbounded_loops),
            )
        if isinstance(instr, DomainCall):
            targets = sorted(
                {
                    entry.target
                    for row in self.meta.domain.inner
                    for entry in row
                    if isinstance(entry.target, str)
                    and entry.target in self.program.functions
                }
            )
            dispatch = cost.call + cost.domain_probe + cost.inner_domain_probe
            base = (dispatch, dispatch)
            if not targets:
                return base, _ZERO, _ZERO, []
            cyc = gb = pb = None
            unbounded: list[tuple[str, int]] = []
            for target in targets:
                callee = self.function_cost(target)
                c = _as_bounds(callee.cycles)
                g = _as_bounds(callee.get_bytes)
                p = _as_bounds(callee.put_bytes)
                cyc = c if cyc is None else _join(cyc, c)
                gb = g if gb is None else _join(gb, g)
                pb = p if pb is None else _join(pb, p)
                unbounded.extend(callee.unbounded_loops)
            return _add(base, cyc), gb, pb, unbounded
        if isinstance(instr, ICall):
            # Host-style indirect call in accel code: target unknowable.
            return (cost.vtable_load + cost.call, None), _ZERO, _ZERO, []
        if isinstance(instr, Intrinsic):
            return self._intrinsic_cost(solved, index, instr)
        # Launch/join and anything unmodeled: charge nothing rather than
        # guess; offload bodies contain none of these today.
        return _ZERO, _ZERO, _ZERO, []

    def _intrinsic_cost(
        self, solved: SolvedFunction, index: int, instr: Intrinsic
    ) -> tuple[_Bounds, _Bounds, _Bounds, list[tuple[str, int]]]:
        cost = self.config.cost
        name = instr.name
        if name in ("dma_get", "dma_put", "acc_bulk_get", "acc_bulk_put"):
            regs = solved.values_before(index)
            size_val = regs.get(instr.args[2])
            size_bounds: _Bounds = (0, None)
            if isinstance(size_val, AbsInt):
                iv = size_val.interval
                size_bounds = (max(iv.lo or 0, 0), iv.hi)
            if name in ("dma_get", "dma_put"):
                # Issue cost only; the latency bill arrives at dma_wait.
                cycles: _Bounds = (cost.dma_setup, cost.dma_setup)
            else:
                cycles = _dma_transfer_cycles(
                    self.config, size_bounds[1]
                )
                cycles = (
                    _dma_transfer_cycles(self.config, size_bounds[0])[0],
                    cycles[1],
                )
            if self.config.shared_memory:
                return cycles, _ZERO, _ZERO, []
            if name.endswith("get"):
                return cycles, size_bounds, _ZERO, []
            return cycles, _ZERO, size_bounds, []
        if name == "dma_wait":
            # Worst case the transfer just issued: full latency remains.
            return (0, cost.dma_latency), _ZERO, _ZERO, []
        if name == "sqrtf":
            w = 4 * cost.alu
            return (w, w), _ZERO, _ZERO, []
        return (cost.alu, cost.alu), _ZERO, _ZERO, []


def _as_bounds(interval: Interval) -> _Bounds:
    return (interval.lo if interval.lo is not None else 0, interval.hi)


def estimate_offload(
    program: IRProgram,
    meta: OffloadMeta,
    config: MachineConfig,
    *,
    summaries=None,
) -> OffloadCost:
    """Static cost interval for one offload body."""
    if summaries is None:
        summaries = compute_summaries(
            sorted(program.accel_functions(), key=lambda f: f.name)
        )
    builder = _OffloadCostBuilder(program, meta, config, summaries)
    entry = builder.function_cost(meta.entry)
    return OffloadCost(
        offload_id=meta.offload_id,
        entry=meta.entry,
        cycles=entry.cycles,
        get_bytes=entry.get_bytes,
        put_bytes=entry.put_bytes,
        unbounded_loops=entry.unbounded_loops,
    )


def estimate_program(
    program: IRProgram, config: MachineConfig
) -> dict[int, OffloadCost]:
    """Static cost intervals for every offload, keyed by offload id."""
    summaries = compute_summaries(
        sorted(program.accel_functions(), key=lambda f: f.name)
    )
    return {
        offload_id: estimate_offload(
            program, meta, config, summaries=summaries
        )
        for offload_id, meta in sorted(program.offload_meta.items())
    }


def static_profile(program: IRProgram, config: MachineConfig) -> dict[int, int]:
    """Per-offload cycle estimates for ``SchedOptions(profile=...)``.

    Upper bounds of the static cycle intervals — what a profiling run
    feeds the ``critical-path`` policy, with no run.  Offloads whose
    loops could not be bounded are omitted; the scheduler falls back to
    its instruction-count estimate for those.
    """
    return {
        offload_id: oc.cycles.hi
        for offload_id, oc in estimate_program(program, config).items()
        if oc.cycles.hi is not None
    }


def check_program(
    program: IRProgram,
    config: MachineConfig,
    *,
    file: str = "<input>",
) -> list[Finding]:
    """``W-cost-unbounded`` findings: loops in offloaded code whose trip
    counts the interval analysis could not bound."""
    findings: list[Finding] = []
    seen: set[tuple[str, int]] = set()
    for offload_id, oc in estimate_program(program, config).items():
        for function_name, header_index in oc.unbounded_loops:
            if (function_name, header_index) in seen:
                continue
            seen.add((function_name, header_index))
            findings.append(
                Finding(
                    code="W-cost-unbounded",
                    message=(
                        f"loop at instruction {header_index} in "
                        f"{function_name} cannot be statically bounded; "
                        f"cycle and DMA-traffic estimates for offload "
                        f"{offload_id} are open-ended"
                    ),
                    file=file,
                    function=function_name,
                    instr_index=header_index,
                    notes=(
                        "bound the loop with a compile-time constant "
                        "trip count (or a provable induction pattern) so "
                        "the static cost model can place this offload "
                        "without a profiling run",
                    ),
                    analysis="cost",
                    related=(
                        RelatedLocation(
                            message=f"offload {offload_id} entry",
                            file=file,
                            function=oc.entry,
                            instr_index=0,
                        ),
                    ),
                )
            )
    return findings

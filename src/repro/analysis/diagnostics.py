"""Unified analysis diagnostics: stable codes, severities, renderers.

Every static analysis in :mod:`repro.analysis` reports through one
:class:`Finding` type carrying a machine-readable code from the
:data:`CODES` registry.  The registry is the single source of truth for
severity and the one-line meaning of each code — the docs table in
``docs/static-analysis.md`` and the SARIF rule metadata are both
generated from it.

Renderers: :func:`format_text` (human CLI output), :func:`format_json`
(canonical machine-readable JSON) and :func:`format_sarif` (SARIF 2.1.0,
the format CI annotation services ingest).  Baseline suppression:
:func:`fingerprint` gives each finding a stable identity (independent of
instruction indices, so unrelated edits don't churn baselines), and
:func:`load_baseline` / :func:`write_baseline` read and write the
suppression file consumed by ``repro.tools.check --baseline``.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import SourceSpan

SEV_ERROR = "error"
SEV_WARNING = "warning"
SEV_NOTE = "note"

#: Rank for ``--fail-on`` comparisons (higher = more severe).
_SEVERITY_RANK = {SEV_NOTE: 0, SEV_WARNING: 1, SEV_ERROR: 2}


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    severity: str
    summary: str


#: Every diagnostic code the analyses can emit, with severity and a
#: one-line meaning.  Codes are stable API: tests, baselines and CI
#: configuration key on them.
CODES: dict[str, CodeInfo] = {
    "E-dma-race": CodeInfo(
        SEV_ERROR,
        "two in-flight DMA transfers may touch overlapping memory with "
        "no dma_wait between them",
    ),
    "E-dma-leak": CodeInfo(
        SEV_ERROR,
        "an offload block can return while DMA transfers it issued are "
        "still in flight",
    ),
    "E-dma-orphan-wait": CodeInfo(
        SEV_ERROR,
        "dma_wait on a tag that no execution path ever issued a "
        "transfer with",
    ),
    "E-local-overflow": CodeInfo(
        SEV_ERROR,
        "estimated local-store footprint of an offload exceeds the "
        "target's scratch-pad capacity",
    ),
    "W-local-pressure": CodeInfo(
        SEV_WARNING,
        "estimated local-store footprint is close to scratch-pad "
        "capacity",
    ),
    "W-local-recursion": CodeInfo(
        SEV_WARNING,
        "recursive call cycle reachable from an offload block; frame "
        "depth is statically unbounded",
    ),
    "W-outer-loop-traffic": CodeInfo(
        SEV_WARNING,
        "a loop in uncached offload code performs repeated outer-memory "
        "accesses; a software cache or DMA batching would amortise them",
    ),
    "E-domain-missing": CodeInfo(
        SEV_ERROR,
        "a virtual method reachable from an offload block is missing "
        "from its domain(...) annotation",
    ),
    "W-offload-unjoined": CodeInfo(
        SEV_WARNING,
        "an offload handle is never joined, so its completion is "
        "unsynchronized with the host",
    ),
    "E-dma-oob": CodeInfo(
        SEV_ERROR,
        "a DMA transfer provably reads or writes outside its "
        "source/destination buffer extent on some loop iteration",
    ),
    "W-dma-unaligned": CodeInfo(
        SEV_WARNING,
        "a DMA transfer address is provably misaligned for the "
        "target's DMA alignment grain",
    ),
    "W-dma-tiny-transfer": CodeInfo(
        SEV_WARNING,
        "a DMA inside a loop moves provably fewer bytes per iteration "
        "than setup+latency can amortise (many-small-DMAs anti-pattern)",
    ),
    "W-cost-unbounded": CodeInfo(
        SEV_WARNING,
        "a loop in offloaded code cannot be statically bounded, so the "
        "static cycle/DMA-traffic estimate for its offload is open-ended",
    ),
}


@dataclass(frozen=True)
class RelatedLocation:
    """A secondary location attached to a finding — the loop back edge
    an address varies around, or a call site on the interprocedural
    path to the reported instruction.  Rendered as SARIF
    ``relatedLocations``."""

    message: str
    file: str = "<input>"
    function: str = ""
    instr_index: Optional[int] = None


@dataclass(frozen=True)
class Finding:
    """One analysis result, anchored to a function and instruction.

    ``file`` is the source path the program came from; ``function`` the
    mangled IR function name (or offload entry); ``instr_index`` the IR
    instruction the finding anchors to, when one exists.  ``span`` is a
    source range when the producing analysis works at the AST level.
    """

    code: str
    message: str
    file: str = "<input>"
    function: str = ""
    instr_index: Optional[int] = None
    span: Optional[SourceSpan] = None
    notes: tuple[str, ...] = ()
    analysis: str = ""
    related: tuple[RelatedLocation, ...] = ()

    @property
    def severity(self) -> str:
        return CODES[self.code].severity

    def render(self) -> str:
        where = self.file
        if self.span is not None:
            where = str(self.span.start)
        elif self.function:
            where = f"{self.file}:{self.function}"
            if self.instr_index is not None:
                where += f"[{self.instr_index}]"
        text = f"{where}: {self.severity}[{self.code}]: {self.message}"
        for note in self.notes:
            text += f"\n  note: {note}"
        for rel in self.related:
            rwhere = f"{rel.file}:{rel.function}" if rel.function else rel.file
            if rel.instr_index is not None:
                rwhere += f"[{rel.instr_index}]"
            text += f"\n  see: {rwhere}: {rel.message}"
        return text


def severity_rank(severity: str) -> int:
    return _SEVERITY_RANK[severity]


def meets_threshold(finding: Finding, fail_on: str) -> bool:
    """True when a finding is at or above the ``--fail-on`` severity."""
    return severity_rank(finding.severity) >= severity_rank(fail_on)


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Deterministic order: severity (errors first), file, function,
    instruction, code."""
    return sorted(
        findings,
        key=lambda f: (
            -severity_rank(f.severity),
            f.file,
            f.function,
            f.instr_index if f.instr_index is not None else -1,
            f.code,
            f.message,
        ),
    )


# ------------------------------------------------------------ fingerprints


#: Compiled-duplicate mangling suffix: ``name@<offload>$<signature>``.
#: One *source* function fans out into one duplicate per (offload,
#: signature) pair; fingerprints strip the suffix so a diagnostic at a
#: shared source site has one identity, not one per duplicate.
_DUPLICATE_SUFFIX = re.compile(r"@\d+\$[A-Za-z0-9_]*")


def _normalize_duplicates(text: str) -> str:
    return _DUPLICATE_SUFFIX.sub("", text)


def fingerprint(finding: Finding) -> str:
    """A stable identity for baseline suppression and deduplication.

    Deliberately excludes instruction indices and note text so that
    unrelated edits (which shift IR indices) don't invalidate baselines;
    includes code, file, function and message.  Compiled-duplicate
    mangling (``name@<offload>$<sig>``) is stripped from the function
    name *and* the message, so per-duplicate re-reports of one source
    site collapse to one fingerprint (the runner dedupes on it).
    """
    function = _normalize_duplicates(finding.function)
    message = _normalize_duplicates(finding.message)
    payload = f"{finding.code}|{finding.file}|{function}|{message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: str) -> set[str]:
    """Read a baseline file; returns the suppressed fingerprints."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "suppress" not in data:
        raise ValueError(f"{path}: not a repro-check baseline file")
    return set(data["suppress"])


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write the baseline suppressing every given finding; returns the
    number of fingerprints written."""
    prints = sorted({fingerprint(f) for f in findings})
    payload = {"version": 1, "tool": "repro-check", "suppress": prints}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(prints)


def apply_baseline(
    findings: Iterable[Finding], suppressed: set[str]
) -> tuple[list[Finding], int]:
    """Split findings into (kept, suppressed_count)."""
    kept: list[Finding] = []
    hidden = 0
    for finding in findings:
        if fingerprint(finding) in suppressed:
            hidden += 1
        else:
            kept.append(finding)
    return kept, hidden


# --------------------------------------------------------------- renderers


def format_text(findings: list[Finding]) -> str:
    """One rendered finding per line group (the CLI default)."""
    return "\n".join(f.render() for f in findings)


def findings_to_dicts(findings: list[Finding]) -> list[dict]:
    out = []
    for f in findings:
        entry = {
            "code": f.code,
            "severity": f.severity,
            "message": f.message,
            "file": f.file,
            "function": f.function,
            "fingerprint": fingerprint(f),
        }
        if f.instr_index is not None:
            entry["instr_index"] = f.instr_index
        if f.span is not None:
            entry["line"] = f.span.start.line
            entry["column"] = f.span.start.column
        if f.notes:
            entry["notes"] = list(f.notes)
        if f.analysis:
            entry["analysis"] = f.analysis
        if f.related:
            entry["related"] = [
                {
                    "message": rel.message,
                    "file": rel.file,
                    "function": rel.function,
                    **(
                        {"instr_index": rel.instr_index}
                        if rel.instr_index is not None
                        else {}
                    ),
                }
                for rel in f.related
            ]
        out.append(entry)
    return out


def format_json(findings: list[Finding]) -> str:
    """Canonical JSON: ``{"version": 1, "findings": [...]}``."""
    payload = {"version": 1, "findings": findings_to_dicts(findings)}
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_SARIF_LEVEL = {SEV_ERROR: "error", SEV_WARNING: "warning", SEV_NOTE: "note"}


def sarif_report(findings: list[Finding]) -> dict:
    """A SARIF 2.1.0 log object (one run, rules from :data:`CODES`)."""
    rules = [
        {
            "id": code,
            "shortDescription": {"text": info.summary},
            "defaultConfiguration": {"level": _SARIF_LEVEL[info.severity]},
        }
        for code, info in sorted(CODES.items())
    ]
    results = []
    for f in findings:
        location: dict = {
            "physicalLocation": {
                "artifactLocation": {"uri": f.file},
            }
        }
        if f.span is not None:
            location["physicalLocation"]["region"] = {
                "startLine": f.span.start.line,
                "startColumn": f.span.start.column,
            }
        if f.function:
            location["logicalLocations"] = [
                {"name": f.function, "kind": "function"}
            ]
        message = f.message
        if f.notes:
            message += "".join(f"\n{note}" for note in f.notes)
        result = {
            "ruleId": f.code,
            "level": _SARIF_LEVEL[f.severity],
            "message": {"text": message},
            "locations": [location],
            "partialFingerprints": {"reproCheck/v1": fingerprint(f)},
        }
        if f.related:
            related = []
            for rel in f.related:
                entry: dict = {
                    "message": {"text": rel.message},
                    "physicalLocation": {
                        "artifactLocation": {"uri": rel.file},
                    },
                }
                if rel.function:
                    entry["logicalLocations"] = [
                        {"name": rel.function, "kind": "function"}
                    ]
                related.append(entry)
            result["relatedLocations"] = related
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static-analysis"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def format_sarif(findings: list[Finding]) -> str:
    return (
        json.dumps(sarif_report(findings), sort_keys=True, indent=2) + "\n"
    )


def validate_sarif(log: object) -> list[str]:
    """Check the SARIF 2.1.0 required-property subset; returns problems.

    Not a full schema validation — the invariants GitHub code scanning
    and the SARIF spec both require: version string, runs array, each
    run's ``tool.driver.name``, and per-result ``ruleId`` /
    ``message.text`` / a known ``level``.
    """
    problems: list[str] = []
    if not isinstance(log, dict):
        return ["top level must be an object"]
    if log.get("version") != "2.1.0":
        problems.append("version must be the string '2.1.0'")
    runs = log.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty array"]
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        driver = run.get("tool", {}).get("driver") if isinstance(run, dict) else None
        if not isinstance(driver, dict) or not isinstance(
            driver.get("name"), str
        ):
            problems.append(f"{where}: missing tool.driver.name")
            continue
        rule_ids = {
            rule.get("id")
            for rule in driver.get("rules", [])
            if isinstance(rule, dict)
        }
        for si, result in enumerate(run.get("results", [])):
            rwhere = f"{where}.results[{si}]"
            if not isinstance(result, dict):
                problems.append(f"{rwhere}: not an object")
                continue
            if result.get("ruleId") not in rule_ids:
                problems.append(f"{rwhere}: ruleId not among driver rules")
            if result.get("level") not in ("error", "warning", "note"):
                problems.append(f"{rwhere}: bad level")
            message = result.get("message")
            if not isinstance(message, dict) or not isinstance(
                message.get("text"), str
            ):
                problems.append(f"{rwhere}: missing message.text")
            related = result.get("relatedLocations", [])
            if not isinstance(related, list):
                problems.append(f"{rwhere}: relatedLocations must be an array")
                continue
            for li, rel in enumerate(related):
                lwhere = f"{rwhere}.relatedLocations[{li}]"
                if not isinstance(rel, dict):
                    problems.append(f"{lwhere}: not an object")
                    continue
                rmessage = rel.get("message")
                if not isinstance(rmessage, dict) or not isinstance(
                    rmessage.get("text"), str
                ):
                    problems.append(f"{lwhere}: missing message.text")
                uri = (
                    rel.get("physicalLocation", {})
                    .get("artifactLocation", {})
                    .get("uri")
                    if isinstance(rel.get("physicalLocation"), dict)
                    else None
                )
                if not isinstance(uri, str):
                    problems.append(
                        f"{lwhere}: missing "
                        f"physicalLocation.artifactLocation.uri"
                    )
    return problems

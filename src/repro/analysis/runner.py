"""The analysis driver: run every static analysis over one program.

One entry point, :func:`run_analyses`, runs the whole-program analyses
(DMA discipline, local-store footprint, outer traffic and — when
semantic info is supplied — domain-annotation coverage) and returns the
merged, deterministically sorted findings plus per-unit wall-clock
timings.  Each analysis of each function/offload emits one
:data:`repro.obs.trace.EV_ANALYSIS` span on the ``analysis`` track, so
``repro.tools.check --time-passes`` and the Perfetto export both show
where check time goes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis import bounds, cost, dmacheck, footprint, offloads, traffic
from repro.analysis.annotations import report_for_program
from repro.analysis.diagnostics import Finding, fingerprint, sort_findings
from repro.analysis.intervals import compute_summaries as interval_summaries
from repro.ir.instructions import OffloadLaunch
from repro.ir.module import IRProgram
from repro.machine.config import MachineConfig, resolve_target
from repro.obs.trace import EV_ANALYSIS, NULL_RECORDER


@dataclass(frozen=True)
class AnalysisTiming:
    """Wall-clock cost of one analysis over one function/offload."""

    analysis: str
    function: str
    seconds: float


@dataclass
class AnalysisResult:
    """Everything one :func:`run_analyses` call produced."""

    findings: list[Finding] = field(default_factory=list)
    timings: list[AnalysisTiming] = field(default_factory=list)

    def by_severity(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts


class _Meter:
    """Times one unit of analysis work and emits its trace span."""

    def __init__(self, result: AnalysisResult, trace) -> None:
        self.result = result
        self.trace = trace
        self._cursor_us = 0

    def run(self, analysis: str, function: str, thunk) -> object:
        start = time.perf_counter()
        out = thunk()
        seconds = time.perf_counter() - start
        self.result.timings.append(AnalysisTiming(analysis, function, seconds))
        if self.trace.enabled:
            duration_us = int(seconds * 1_000_000)
            self.trace.emit(
                self._cursor_us,
                "analysis",
                EV_ANALYSIS,
                (analysis, function, duration_us),
            )
            self._cursor_us += duration_us
        return out


def run_analyses(
    program: IRProgram,
    config: "MachineConfig | str",
    *,
    info=None,
    file: str = "<input>",
    trace=NULL_RECORDER,
) -> AnalysisResult:
    """Run every static analysis; returns sorted findings + timings.

    ``config`` — the machine the program targets (its local-store
    capacity bounds the footprint analysis) — is a
    :class:`MachineConfig` or a registered target name resolved through
    :func:`repro.machine.config.resolve_target`.  ``info`` (a
    :class:`repro.lang.sema.SemanticInfo`) enables the
    annotation-coverage analysis (``E-domain-missing``); IR-only callers
    may omit it.  ``trace`` receives ``analysis.span`` events stamped
    with wall-clock microseconds, like compile-pass spans.
    """
    config = resolve_target(config, source="run_analyses")
    result = AnalysisResult()
    meter = _Meter(result, trace)
    findings = result.findings

    # DMA discipline: summaries once, then per-function checks.
    accel = sorted(program.accel_functions(), key=lambda f: f.name)
    accel_names = frozenset(f.name for f in accel)
    summaries = meter.run(
        "dma-discipline",
        "(summaries)",
        lambda: dmacheck.compute_summaries(accel),
    )
    for function in accel:
        findings.extend(
            meter.run(
                "dma-discipline",
                function.name,
                lambda fn=function: dmacheck.check_function(
                    fn, summaries, accel_names, file=file
                ),
            )
        )

    # Local-store footprint, per offload block.
    for offload_id in sorted(program.offload_meta):
        meta = program.offload_meta[offload_id]
        findings.extend(
            meter.run(
                "local-footprint",
                meta.entry,
                lambda m=meta: footprint.check_offload(
                    program, m, config, file=file
                ),
            )
        )

    # Offload-handle discipline, per host function containing launches.
    for function in sorted(program.host_functions(), key=lambda f: f.name):
        if not any(isinstance(i, OffloadLaunch) for i in function.code):
            continue
        findings.extend(
            meter.run(
                "offload-handles",
                function.name,
                lambda fn=function: offloads.check_function(fn, file=file),
            )
        )

    # DMA bounds/alignment over the interval domain, per accel function
    # (interval summaries computed once, shared with the cost model).
    ivals = meter.run(
        "dma-bounds",
        "(summaries)",
        lambda: interval_summaries(accel),
    )
    for function in accel:
        findings.extend(
            meter.run(
                "dma-bounds",
                function.name,
                lambda fn=function: bounds.check_function(
                    program, fn, config, summaries=ivals, file=file
                ),
            )
        )

    # Static cost model: flags loops it cannot bound (whole-program —
    # the walk follows each offload's call graph).
    findings.extend(
        meter.run(
            "cost",
            "(offloads)",
            lambda: cost.check_program(program, config, file=file),
        )
    )

    # Outer traffic, per function reachable from an uncached offload.
    reach = traffic.uncached_reachable(program)
    for function in accel:
        if function.name not in reach:
            continue
        findings.extend(
            meter.run(
                "outer-traffic",
                function.name,
                lambda fn=function: traffic.check_function(fn, file=file),
            )
        )

    # Domain-annotation coverage (source-level; needs semantic info).
    if info is not None:
        for report in report_for_program(info):
            entry = f"__offload_{report.offload_id}"
            findings.extend(
                meter.run(
                    "annotations",
                    entry,
                    lambda r=report, e=entry: _annotation_findings(
                        r, e, file
                    ),
                )
            )

    # Per-duplicate specialized functions re-derive the same source
    # site; fingerprints normalize the duplicate mangling away, so one
    # source-level problem keeps exactly one (deterministically first
    # in sorted order) finding.
    deduped: list[Finding] = []
    seen: set[str] = set()
    for finding in sort_findings(findings):
        print_ = fingerprint(finding)
        if print_ in seen:
            continue
        seen.add(print_)
        deduped.append(finding)
    result.findings = deduped
    return result


def _annotation_findings(report, entry: str, file: str) -> list[Finding]:
    missing = report.missing
    if not missing:
        return []
    return [
        Finding(
            code="E-domain-missing",
            message=(
                f"offload #{report.offload_id} can dispatch to "
                f"{len(missing)} virtual method(s) absent from its "
                f"domain(...) annotation"
            ),
            file=file,
            function=entry,
            notes=tuple(f"missing: {name}" for name in missing),
            analysis="annotations",
        )
    ]


def format_analysis_timings(timings: list[AnalysisTiming]) -> str:
    """Aggregate per-analysis timing table (``--time-passes`` extra)."""
    totals: dict[str, tuple[float, int]] = {}
    for t in timings:
        seconds, units = totals.get(t.analysis, (0.0, 0))
        totals[t.analysis] = (seconds + t.seconds, units + 1)
    grand = sum(seconds for seconds, _ in totals.values())
    lines = ["analysis             seconds      units     share"]
    for analysis in sorted(totals):
        seconds, units = totals[analysis]
        share = (seconds / grand * 100.0) if grand > 0 else 0.0
        lines.append(
            f"{analysis:20s} {seconds:10.6f} {units:9d} {share:8.1f}%"
        )
    lines.append(f"{'total':20s} {grand:10.6f}")
    return "\n".join(lines)

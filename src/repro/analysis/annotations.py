"""Annotation-requirement analysis (the Section 4.1 effort metric).

When a portion of code is offloaded, every virtual method that *might*
be invoked inside it must be listed in the offload's ``domain(...)``
annotation.  This analysis computes that set: it walks the offload body
and everything statically reachable from it; for each virtual call site
``p->m()`` with static receiver type ``C``, every implementation of
``m`` in ``C`` or any of its subclasses is required (any of them could
be the dynamic target).

The paper's case study: a component system dispatched ~1300 virtual
calls per frame; offloading it monolithically required >100 annotations,
and restructuring into 13 type-specialised offloads brought the maximum
per offload down to ~40.  The E4 benchmark uses this module to measure
exactly those quantities on our game substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.sema import SemanticInfo
from repro.lang.types import ClassType, MethodInfo


@dataclass
class AnnotationReport:
    """Required annotations for one offload block."""

    offload_id: int
    required: list[str] = field(default_factory=list)
    declared: list[str] = field(default_factory=list)
    virtual_call_sites: int = 0

    @property
    def count(self) -> int:
        return len(self.required)

    @property
    def missing(self) -> list[str]:
        declared = set(self.declared)
        return [name for name in self.required if name not in declared]


def _subclass_implementations(
    info: SemanticInfo, base: ClassType, method_name: str
) -> list[MethodInfo]:
    """Every implementation of ``method_name`` callable through a
    ``base*`` receiver: the one ``base`` sees, plus every override in
    the subtree below ``base``."""
    implementations: list[MethodInfo] = []
    seen: set[str] = set()
    root = base.find_method(method_name)
    if root is not None:
        implementations.append(root)
        seen.add(root.qualified_name)
    for class_type in info.classes.values():
        if not class_type.is_subclass_of(base) or class_type is base:
            continue
        method = class_type.methods.get(method_name)
        if method is not None and method.qualified_name not in seen:
            implementations.append(method)
            seen.add(method.qualified_name)
    return implementations


class _Walker:
    """Collects virtual/indirect call sites in a statement tree, the set
    of statically called functions (for transitive traversal), and
    address-taken free functions."""

    def __init__(self) -> None:
        self.virtual_sites: list[ast.CallExpr] = []
        self.indirect_sites: list[ast.CallExpr] = []
        self.static_callees: list[ast.FuncDecl] = []
        self.taken_functions: list[ast.FuncDecl] = []

    # -- statements

    def walk_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.BlockStmt):
            for inner in stmt.statements:
                self.walk_stmt(inner)
        elif isinstance(stmt, ast.VarDeclStmt):
            if stmt.init is not None:
                self.walk_expr(stmt.init)
        elif isinstance(stmt, ast.AssignStmt):
            self.walk_expr(stmt.target)
            self.walk_expr(stmt.value)
        elif isinstance(stmt, ast.IncDecStmt):
            self.walk_expr(stmt.target)
        elif isinstance(stmt, ast.ExprStmt):
            self.walk_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self.walk_expr(stmt.condition)
            self.walk_stmt(stmt.then_body)
            if stmt.else_body is not None:
                self.walk_stmt(stmt.else_body)
        elif isinstance(stmt, ast.WhileStmt):
            self.walk_expr(stmt.condition)
            self.walk_stmt(stmt.body)
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self.walk_stmt(stmt.init)
            if stmt.condition is not None:
                self.walk_expr(stmt.condition)
            if stmt.step is not None:
                self.walk_stmt(stmt.step)
            self.walk_stmt(stmt.body)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self.walk_expr(stmt.value)
        elif isinstance(stmt, ast.JoinStmt):
            self.walk_expr(stmt.handle)
        # break/continue: nothing to do

    # -- expressions

    def walk_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.UnaryExpr):
            target = getattr(expr, "func_target", None)
            if isinstance(target, ast.FuncDecl):
                self.taken_functions.append(target)
                return
            self.walk_expr(expr.operand)
        elif isinstance(expr, ast.BinaryExpr):
            self.walk_expr(expr.lhs)
            self.walk_expr(expr.rhs)
        elif isinstance(expr, ast.IndexExpr):
            self.walk_expr(expr.base)
            self.walk_expr(expr.index)
        elif isinstance(expr, ast.MemberExpr):
            self.walk_expr(expr.base)
        elif isinstance(expr, ast.CastExpr):
            self.walk_expr(expr.operand)
        elif isinstance(expr, ast.CallExpr):
            if isinstance(expr.callee, ast.MemberExpr):
                self.walk_expr(expr.callee.base)
            for arg in expr.args:
                self.walk_expr(arg)
            if expr.is_virtual:
                self.virtual_sites.append(expr)
            elif expr.target == "indirect":
                self.indirect_sites.append(expr)
            elif isinstance(expr.target, ast.FuncDecl):
                self.static_callees.append(expr.target)
            elif isinstance(expr.target, MethodInfo):
                decl = expr.target.decl
                if isinstance(decl, ast.FuncDecl):
                    self.static_callees.append(decl)
        elif isinstance(expr, ast.OffloadExpr):
            # Nested offloads are rejected by sema; nothing to walk.
            pass


def _owner_of(expr: ast.CallExpr) -> ClassType | None:
    callee = expr.callee
    if isinstance(callee, ast.MemberExpr):
        base_type = callee.base.type
        from repro.lang.types import PointerType

        if isinstance(base_type, PointerType) and isinstance(
            base_type.pointee, ClassType
        ):
            return base_type.pointee
        if isinstance(base_type, ClassType):
            return base_type
    return None


def _program_taken_functions(info: SemanticInfo) -> list[ast.FuncDecl]:
    """Every free function whose address is taken anywhere in the
    program — any of them may be the target of an indirect call."""
    taken: list[ast.FuncDecl] = []
    seen: set[str] = set()
    for decl in info.functions.values():
        if decl.body is None:
            continue
        walker = _Walker()
        walker.walk_stmt(decl.body)
        for func in walker.taken_functions:
            if func.qualified_name not in seen:
                seen.add(func.qualified_name)
                taken.append(func)
    return taken


def annotation_requirements(
    info: SemanticInfo, offload: ast.OffloadExpr
) -> AnnotationReport:
    """Compute the dynamic-dispatch annotation set one offload needs:
    virtual method implementations plus, for calls through function
    pointers, every address-taken function of a matching signature."""
    walker = _Walker()
    walker.walk_stmt(offload.body)
    # Transitively include functions statically reachable from the block.
    visited: set[str] = set()
    queue = list(walker.static_callees)
    while queue:
        decl = queue.pop()
        if decl.qualified_name in visited or decl.body is None:
            continue
        visited.add(decl.qualified_name)
        inner = _Walker()
        inner.walk_stmt(decl.body)
        walker.virtual_sites.extend(inner.virtual_sites)
        walker.indirect_sites.extend(inner.indirect_sites)
        queue.extend(inner.static_callees)
    required: list[str] = []
    seen: set[str] = set()
    for site in walker.virtual_sites:
        target = site.target
        receiver = _owner_of(site)
        if not isinstance(target, MethodInfo) or receiver is None:
            continue
        for implementation in _subclass_implementations(
            info, receiver, target.name
        ):
            if implementation.qualified_name not in seen:
                seen.add(implementation.qualified_name)
                required.append(implementation.qualified_name)
    if walker.indirect_sites:
        taken = _program_taken_functions(info)
        for site in walker.indirect_sites:
            func_type = getattr(site, "funcptr_type", None)
            for candidate in taken:
                if candidate.qualified_name in seen:
                    continue
                if func_type is None or len(candidate.params) == len(
                    func_type.param_types
                ):
                    seen.add(candidate.qualified_name)
                    required.append(candidate.qualified_name)
    declared = [item.display() for item in offload.domain]
    return AnnotationReport(
        offload_id=offload.offload_id,
        required=sorted(required),
        declared=declared,
        virtual_call_sites=len(walker.virtual_sites)
        + len(walker.indirect_sites),
    )


def report_for_program(info: SemanticInfo) -> list[AnnotationReport]:
    """Annotation reports for every offload block in a program."""
    return [annotation_requirements(info, o) for o in info.offloads]

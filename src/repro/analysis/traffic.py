"""Outer-traffic analysis: flag uncached hot outer loops.

On a scratch-pad machine every :data:`AccSpace.OUTER` load or store an
offload executes crosses the memory-space boundary.  Without a software
cache the runtime's :class:`repro.vm.context.RawDmaStrategy` turns each
one into a blocking bounce-buffer DMA round trip — two orders of
magnitude slower than a local access under the default cost model.  An
outer access *inside a loop* pays that toll every iteration; the paper's
§5 guidance is to either put a software cache in front of the accesses
or batch them into one bulk DMA outside the loop.  This analysis
mechanizes the guidance.

For every natural loop of every accel function reachable from an
*uncached* offload block, the analysis counts outer access sites
(``Load``/``Store``/``Copy`` touching OUTER space), resolves their
addresses with the shared symbolic-value domain, and *coalesces* sites
that provably hit the same region+offset (those would share a cache
line or a single batched transfer).  Loops whose coalesced count meets
:data:`HOT_LOOP_THRESHOLD` get ``W-outer-loop-traffic`` with a concrete
per-iteration byte estimate and the two §5 remedies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import (
    ControlFlowGraph,
    SymAddr,
    ValuesAnalysis,
    build_cfg,
    eval_value_instr,
    solve_forward,
    thaw_values,
)
from repro.analysis.diagnostics import Finding
from repro.analysis.footprint import reachable_functions
from repro.ir.instructions import AccSpace, Copy, Load, Store
from repro.ir.module import IRFunction, IRProgram

#: Minimum coalesced outer-access sites per loop iteration to warn.
HOT_LOOP_THRESHOLD = 1


@dataclass(frozen=True)
class OuterAccess:
    """One outer-memory access site inside a loop body."""

    instr_index: int
    kind: str  # "load" | "store" | "copy-in" | "copy-out"
    size: int
    addr: object  # SymAddr | int | None (statically unresolved)


@dataclass(frozen=True)
class LoopTraffic:
    """Per-loop result: raw sites, coalesced count and byte estimate."""

    function: str
    header_index: int  # first instruction index of the loop header
    accesses: tuple[OuterAccess, ...]
    coalesced_sites: int
    bytes_per_iteration: int


def _outer_accesses_in(
    function: IRFunction, cfg: ControlFlowGraph, body: frozenset
) -> list[OuterAccess]:
    """Outer access sites in a loop body, with resolved addresses.

    Register values are taken from the solved whole-function value
    analysis at each block entry and replayed through the block, so an
    address computed before the loop still resolves inside it.
    """
    result = solve_forward(cfg, ValuesAnalysis(function))
    accesses: list[OuterAccess] = []
    for block_index in sorted(body):
        state = result.block_in.get(block_index)
        if state is None:
            continue
        values = thaw_values(state)
        for index, instr in cfg.blocks[block_index].instructions(function):
            if isinstance(instr, Load) and instr.space is AccSpace.OUTER:
                accesses.append(
                    OuterAccess(index, "load", instr.size, values.get(instr.addr))
                )
            elif isinstance(instr, Store) and instr.space is AccSpace.OUTER:
                accesses.append(
                    OuterAccess(index, "store", instr.size, values.get(instr.addr))
                )
            elif isinstance(instr, Copy):
                if instr.src_space is AccSpace.OUTER:
                    accesses.append(
                        OuterAccess(
                            index, "copy-in", instr.size, values.get(instr.src_addr)
                        )
                    )
                if instr.dst_space is AccSpace.OUTER:
                    accesses.append(
                        OuterAccess(
                            index, "copy-out", instr.size, values.get(instr.dst_addr)
                        )
                    )
            eval_value_instr(instr, index, values)
    return accesses


def _coalesce(accesses: list[OuterAccess]) -> tuple[int, int]:
    """(coalesced site count, bytes per iteration).

    Sites whose addresses resolve to the same region+offset merge (the
    widest access wins); unresolved or widened addresses stay distinct —
    there is nothing static to coalesce them on.
    """
    merged: dict[object, int] = {}
    distinct = 0
    distinct_bytes = 0
    for access in accesses:
        addr = access.addr
        if isinstance(addr, SymAddr) and addr.offset is not None:
            key = (addr.region, addr.offset)
            merged[key] = max(merged.get(key, 0), access.size)
        elif isinstance(addr, int):
            key = ("absolute", addr)
            merged[key] = max(merged.get(key, 0), access.size)
        else:
            distinct += 1
            distinct_bytes += access.size
    return distinct + len(merged), distinct_bytes + sum(merged.values())


def analyze_function(function: IRFunction) -> list[LoopTraffic]:
    """Loop traffic summaries for one accel function (cache-agnostic)."""
    cfg = build_cfg(function)
    loops = cfg.natural_loops()
    if not loops:
        return []
    out: list[LoopTraffic] = []
    for loop in loops:
        accesses = _outer_accesses_in(function, cfg, loop.body)
        if not accesses:
            continue
        sites, nbytes = _coalesce(accesses)
        out.append(
            LoopTraffic(
                function=function.name,
                header_index=cfg.blocks[loop.header].start,
                accesses=tuple(accesses),
                coalesced_sites=sites,
                bytes_per_iteration=nbytes,
            )
        )
    return out


def uncached_reachable(program: IRProgram) -> set[str]:
    """Accel functions reachable from at least one *uncached* offload.

    Functions reachable only from cached offloads are exempt from the
    traffic warning: their outer accesses hit the software cache, which
    is precisely the remedy the warning suggests.
    """
    reach: set[str] = set()
    for meta in program.offload_meta.values():
        if meta.cache_kind is None:
            reach |= reachable_functions(program, meta)
    return reach


def check_function(
    function: IRFunction, *, file: str = "<input>"
) -> list[Finding]:
    """``W-outer-loop-traffic`` findings for one (uncached) function."""
    findings: list[Finding] = []
    for loop in analyze_function(function):
        if loop.coalesced_sites < HOT_LOOP_THRESHOLD:
            continue
        raw = len(loop.accesses)
        coalesced = (
            f"{loop.coalesced_sites} coalesced outer access"
            f"{'es' if loop.coalesced_sites != 1 else ''}"
        )
        if raw != loop.coalesced_sites:
            coalesced += f" ({raw} sites before coalescing)"
        findings.append(
            Finding(
                code="W-outer-loop-traffic",
                message=(
                    f"loop at instruction {loop.header_index} performs "
                    f"{coalesced}, ~{loop.bytes_per_iteration} bytes, "
                    f"per iteration in uncached offload code"
                ),
                file=file,
                function=function.name,
                instr_index=loop.header_index,
                notes=(
                    "each access is a blocking bounce-buffer DMA round "
                    "trip; annotate the offload block with cache(...) "
                    "or hoist the accesses into one bulk dma_get/"
                    "dma_put outside the loop",
                ),
                analysis="outer-traffic",
            )
        )
    return findings


def check_program(
    program: IRProgram, *, file: str = "<input>"
) -> list[Finding]:
    """``W-outer-loop-traffic`` findings for uncached offload blocks."""
    reach = uncached_reachable(program)
    findings: list[Finding] = []
    for function in sorted(program.accel_functions(), key=lambda f: f.name):
        if function.name in reach:
            findings.extend(check_function(function, file=file))
    return findings

"""Interprocedural interval × congruence abstract interpretation.

The PR 4 checkers reason about DMA *discipline* (which transfers are in
flight) but not DMA *values*: an out-of-bounds or misaligned transfer
size computed in a loop sails through ``repro.tools.check`` and only
dies — or silently corrupts a neighbouring buffer — at simulation time.
This module closes that gap with a classic abstract-interpretation
layer in the style of Cousot's interval domain crossed with Granger's
congruence (stride/alignment) domain, built directly on the PR 4
dataflow framework (:mod:`repro.analysis.dataflow`):

* :class:`Interval` — ``[lo, hi]`` with ``None`` endpoints for ±∞,
  widening to converge around loop back edges.
* :class:`Congruence` — ``value ≡ rem (mod mod)``; ``mod == 0`` pins an
  exact constant, ``mod == 1`` is ⊤.  This is what proves *alignment*:
  an address striding by 24 from an 8-aligned base stays 8-aligned.
* :class:`AbsAddr` — the interval generalisation of the shared
  :class:`repro.analysis.dataflow.SymAddr` domain: a region (frame,
  global, opaque) plus an abstract *offset*, so buffer extents are
  shared with every existing analysis.
* :class:`IntervalAnalysis` — the forward transfer function over
  register maps, with **branch-edge refinement**: on the edge out of a
  ``cjump`` whose condition is a tracked comparison, both operands (and
  every register copy-equivalent to them) are met with the implied
  bound.  This is what keeps loop bodies precise after widening — the
  header widens the induction variable to ``[0, +∞)`` but the
  body-entry edge re-clips it to ``[0, n-1]`` — exactly the precision
  a static DMA bounds proof needs.
* :func:`compute_summaries` — per-function summaries over the accel
  call graph, in the style of :mod:`repro.analysis.dmacheck`: return
  intervals and joined call-site argument intervals iterated to a
  global fixpoint, so a helper returning a computed transfer size still
  yields a bounded value at the caller's DMA site.
* :func:`loop_trips` — trip-count bounds for natural loops from the
  solved states (exact for canonical counted loops), the input the
  static cost model (:mod:`repro.analysis.cost`) multiplies block costs
  by.

Soundness notes: integer arithmetic in the VM wraps to 32 bits, so any
abstract result leaving the signed 32-bit range widens to ⊤ rather than
pretending Python's bignums model the machine.  Floats, loads and
unknown intrinsics are ⊤.  ``None`` in a register map means ⊤ (the
register may hold anything, including a float or address).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.dataflow import (
    BasicBlock,
    ControlFlowGraph,
    FixpointResult,
    ForwardAnalysis,
    Loop,
    build_cfg,
    solve_forward,
)
from repro.ir.instructions import (
    BinOp,
    Call,
    CJump,
    Const,
    DomainCall,
    FrameAddr,
    GlobalAddr,
    ICall,
    Intrinsic,
    Move,
    Ret,
    UnOp,
)
from repro.ir.module import IRFunction

#: The VM wraps integer arithmetic to signed 32 bits; abstract results
#: outside this range widen to ⊤ instead of modelling the wrap.
INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1


# ------------------------------------------------------------- intervals


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``None`` endpoints mean ±∞."""

    lo: Optional[int] = None
    hi: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @staticmethod
    def const(value: int) -> "Interval":
        return Interval(value, value)

    @property
    def is_const(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    @property
    def bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    def contains(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> Optional["Interval"]:
        """Intersection; ``None`` when empty (an infeasible path)."""
        lo = self.lo if other.lo is None else (
            other.lo if self.lo is None else max(self.lo, other.lo)
        )
        hi = self.hi if other.hi is None else (
            other.hi if self.hi is None else min(self.hi, other.hi)
        )
        if lo is not None and hi is not None and lo > hi:
            return None
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Classic interval widening: endpoints that grew jump to ∞."""
        lo = self.lo
        if lo is not None and (newer.lo is None or newer.lo < lo):
            lo = None
        hi = self.hi
        if hi is not None and (newer.hi is None or newer.hi > hi):
            hi = None
        return Interval(lo, hi)


TOP_INTERVAL = Interval(None, None)


def _clamp32(interval: Interval) -> Interval:
    """Widen to ⊤ when a result can leave the signed 32-bit range —
    modelling Python bignums would be unsound against the wrapping VM."""
    if interval.lo is None or interval.lo < INT32_MIN:
        return TOP_INTERVAL
    if interval.hi is None or interval.hi > INT32_MAX:
        return TOP_INTERVAL
    return interval


def _iv_add(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else a.lo + b.lo
    hi = None if a.hi is None or b.hi is None else a.hi + b.hi
    return _clamp32(Interval(lo, hi))


def _iv_neg(a: Interval) -> Interval:
    lo = None if a.hi is None else -a.hi
    hi = None if a.lo is None else -a.lo
    return _clamp32(Interval(lo, hi))


def _iv_sub(a: Interval, b: Interval) -> Interval:
    return _iv_add(a, _iv_neg(b))


def _iv_mul(a: Interval, b: Interval) -> Interval:
    if not (a.bounded and b.bounded):
        # Only the easy unbounded cases are refined: anything times a
        # possibly-negative or unbounded factor is ⊤.
        return TOP_INTERVAL
    products = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
    return _clamp32(Interval(min(products), max(products)))


# ----------------------------------------------------------- congruences


@dataclass(frozen=True)
class Congruence:
    """``value ≡ rem (mod mod)``; ``mod == 0`` means exactly ``rem``,
    ``mod == 1`` is ⊤ (any integer)."""

    mod: int = 1
    rem: int = 0

    def __post_init__(self) -> None:
        if self.mod < 0:
            raise ValueError("modulus must be non-negative")
        if self.mod > 0:
            object.__setattr__(self, "rem", self.rem % self.mod)

    @staticmethod
    def const(value: int) -> "Congruence":
        return Congruence(0, value)

    def contains(self, value: int) -> bool:
        if self.mod == 0:
            return value == self.rem
        return value % self.mod == self.rem

    def join(self, other: "Congruence") -> "Congruence":
        if self == other:
            return self
        mod = math.gcd(self.mod, other.mod, abs(self.rem - other.rem))
        if mod == 0:
            return self  # identical constants (handled above), defensive
        return Congruence(mod, self.rem % mod)

    def add(self, other: "Congruence") -> "Congruence":
        mod = math.gcd(self.mod, other.mod)
        rem = self.rem + other.rem
        return Congruence(mod, rem if mod else rem)

    def neg(self) -> "Congruence":
        return Congruence(self.mod, -self.rem if self.mod else -self.rem)

    def sub(self, other: "Congruence") -> "Congruence":
        return self.add(other.neg())

    def mul(self, other: "Congruence") -> "Congruence":
        # Granger's multiplication: gcd of the cross terms.
        mod = math.gcd(
            self.mod * other.mod, self.mod * other.rem, other.mod * self.rem
        )
        rem = self.rem * other.rem
        return Congruence(mod, rem if mod else rem)

    def aligned_to(self, align: int) -> Optional[bool]:
        """True/False when alignment to ``align`` is decided; None when
        the congruence can't tell (attainable values mix residues)."""
        if align <= 1:
            return True
        if self.mod == 0:
            return self.rem % align == 0
        if self.mod % align == 0:
            return self.rem % align == 0
        return None


TOP_CONGRUENCE = Congruence(1, 0)


# ------------------------------------------------------- abstract values


@dataclass(frozen=True)
class AbsInt:
    """A machine integer: interval × congruence (reduced product-lite)."""

    interval: Interval = TOP_INTERVAL
    cong: Congruence = TOP_CONGRUENCE

    @staticmethod
    def const(value: int) -> "AbsInt":
        return AbsInt(Interval.const(value), Congruence.const(value))

    @property
    def const_value(self) -> Optional[int]:
        return self.interval.lo if self.interval.is_const else None

    def contains(self, value: int) -> bool:
        return self.interval.contains(value) and self.cong.contains(value)

    def join(self, other: "AbsInt") -> "AbsInt":
        return AbsInt(
            self.interval.join(other.interval), self.cong.join(other.cong)
        )

    def widen(self, newer: "AbsInt") -> "AbsInt":
        # Congruences have no infinite ascending chains (divisor
        # lattice), so only the interval needs widening.
        return AbsInt(
            self.interval.widen(newer.interval),
            self.cong.join(newer.cong),
        )


TOP_INT = AbsInt()


def _arith(op: str, a: AbsInt, b: AbsInt) -> AbsInt:
    if op == "+":
        return AbsInt(_iv_add(a.interval, b.interval), a.cong.add(b.cong))
    if op == "-":
        return AbsInt(_iv_sub(a.interval, b.interval), a.cong.sub(b.cong))
    if op == "*":
        return AbsInt(_iv_mul(a.interval, b.interval), a.cong.mul(b.cong))
    if op in ("/", "%"):
        divisor = b.const_value
        if op == "%" and divisor is not None and divisor > 0:
            lo, hi = a.interval.lo, a.interval.hi
            if lo is not None and lo >= 0 and hi is not None and hi < divisor:
                return a  # already reduced
            return AbsInt(Interval(0, divisor - 1), TOP_CONGRUENCE)
        if op == "/" and divisor is not None and divisor > 0:
            lo, hi = a.interval.lo, a.interval.hi
            if lo is not None and hi is not None and lo >= 0:
                return AbsInt(
                    Interval(lo // divisor, hi // divisor), TOP_CONGRUENCE
                )
        return TOP_INT
    return TOP_INT


@dataclass(frozen=True)
class AbsAddr:
    """A symbolic address with an abstract offset.

    The interval generalisation of :class:`~repro.analysis.dataflow.SymAddr`
    over the same region vocabulary: ``"frame"``, ``"global:<name>"``,
    and ``"u:<instr>"`` opaque pointer sources.
    """

    region: str
    offset: AbsInt

    def shifted(self, delta: AbsInt, sign: int = 1) -> "AbsAddr":
        op = "+" if sign > 0 else "-"
        return AbsAddr(self.region, _arith(op, self.offset, delta))


#: A register's abstract value: AbsInt, AbsAddr, or None (⊤ — the map
#: simply drops the register).
AbsVal = object


def join_abs(a: AbsVal, b: AbsVal) -> Optional[AbsVal]:
    if a == b:
        return a
    if isinstance(a, AbsInt) and isinstance(b, AbsInt):
        return a.join(b)
    if (
        isinstance(a, AbsAddr)
        and isinstance(b, AbsAddr)
        and a.region == b.region
    ):
        return AbsAddr(a.region, a.offset.join(b.offset))
    return None


def widen_abs(a: AbsVal, b: AbsVal) -> Optional[AbsVal]:
    if a == b:
        return a
    if isinstance(a, AbsInt) and isinstance(b, AbsInt):
        return a.widen(b)
    if (
        isinstance(a, AbsAddr)
        and isinstance(b, AbsAddr)
        and a.region == b.region
    ):
        return AbsAddr(a.region, a.offset.widen(b.offset))
    return None


# --------------------------------------------------------- machine state
#
# The per-point state is a frozen snapshot of three maps:
#   regs:   reg -> AbsVal           (absent = ⊤)
#   conds:  reg -> (op, a, b)       integer comparison feeding the reg
#   copies: reg -> root reg         copy-equivalence (Move chains)
#
# ``conds``/``copies`` exist purely to make branch-edge refinement and
# induction-variable recognition work on the lowered IR, which copies a
# loop counter into a fresh register before every compare.


@dataclass(frozen=True)
class AbsState:
    regs: tuple
    conds: tuple
    copies: tuple


EMPTY_ABS_STATE = AbsState(regs=(), conds=(), copies=())


def _freeze(regs: dict, conds: dict, copies: dict) -> AbsState:
    return AbsState(
        regs=tuple(sorted(regs.items())),
        conds=tuple(sorted(conds.items())),
        copies=tuple(sorted(copies.items())),
    )


def _thaw(state: AbsState) -> tuple[dict, dict, dict]:
    return dict(state.regs), dict(state.conds), dict(state.copies)


def _kill_reg(reg: int, conds: dict, copies: dict) -> None:
    """A write to ``reg`` invalidates every fact mentioning it."""
    conds.pop(reg, None)
    for key in [k for k, (_, a, b) in conds.items() if reg in (a, b)]:
        conds.pop(key, None)
    copies.pop(reg, None)
    for key in [k for k, root in copies.items() if root == reg]:
        copies.pop(key, None)


def _class_of(reg: int, copies: dict) -> set[int]:
    """Every register copy-equivalent to ``reg`` (including itself)."""
    root = copies.get(reg, reg)
    members = {root}
    members.update(k for k, r in copies.items() if r == root)
    return members


#: Negation of each comparison op, for the not-taken edge.
_NEGATE = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}


def _refine_pair(
    op: str, a: AbsInt, b: AbsInt
) -> Optional[tuple[AbsInt, AbsInt]]:
    """Refine ``(a, b)`` assuming ``a op b`` holds; None = infeasible."""
    ia, ib = a.interval, b.interval
    if op == "==":
        met = ia.meet(ib)
        if met is None:
            return None
        joined_cong = a.cong if a.cong == b.cong else TOP_CONGRUENCE
        if a.cong.mod == 0:
            joined_cong = a.cong
        elif b.cong.mod == 0:
            joined_cong = b.cong
        refined = AbsInt(met, joined_cong)
        return refined, refined
    if op == "!=":
        new_a, new_b = ia, ib
        if ib.is_const:
            c = ib.lo
            if ia.lo == c and ia.hi == c:
                return None
            if ia.lo == c:
                new_a = Interval(c + 1, ia.hi)
            elif ia.hi == c:
                new_a = Interval(ia.lo, c - 1)
        if ia.is_const:
            c = ia.lo
            if ib.lo == c and ib.hi == c:
                return None
            if ib.lo == c:
                new_b = Interval(c + 1, ib.hi)
            elif ib.hi == c:
                new_b = Interval(ib.lo, c - 1)
        return AbsInt(new_a, a.cong), AbsInt(new_b, b.cong)
    if op in ("<", "<="):
        slack = 0 if op == "<=" else 1
        cap = None if ib.hi is None else ib.hi - slack
        floor = None if ia.lo is None else ia.lo + slack
        new_a = ia.meet(Interval(None, cap))
        new_b = ib.meet(Interval(floor, None))
        if new_a is None or new_b is None:
            return None
        return AbsInt(new_a, a.cong), AbsInt(new_b, b.cong)
    if op in (">", ">="):
        flipped = _refine_pair("<" if op == ">" else "<=", b, a)
        if flipped is None:
            return None
        rb, ra = flipped
        return ra, rb
    return a, b


# -------------------------------------------------------------- summaries


@dataclass(frozen=True)
class FunctionSummary:
    """What the interval analysis knows about one accel function.

    ``params`` — joined abstract values of every call-site argument
    (⊤ entries omitted); ``ret`` — the joined return value over all
    ``Ret`` sites.  Entry functions (offload entries, domain-dispatch
    targets) keep ⊤ params: their arguments come from the runtime.
    """

    params: tuple = ()
    ret: Optional[AbsVal] = None


#: Sound default: nothing known (⊤ everywhere).
UNKNOWN_SUMMARY = FunctionSummary()


class IntervalAnalysis(ForwardAnalysis):
    """Register interval/congruence tracking for one function."""

    def __init__(
        self,
        function: IRFunction,
        summaries: Optional[dict[str, FunctionSummary]] = None,
        boundary_params: Optional[dict[int, AbsVal]] = None,
    ):
        self.function = function
        self.summaries = summaries or {}
        self.boundary_params = boundary_params or {}
        #: Call-site argument joins recorded during transfer, consumed
        #: by :func:`compute_summaries`.
        self.call_args: dict[str, list[Optional[AbsVal]]] = {}

    # ------------------------------------------------------------ lattice

    def boundary(self) -> AbsState:
        regs = {
            reg: val
            for reg, val in self.boundary_params.items()
            if val is not None
        }
        return _freeze(regs, {}, {})

    def join(self, a: AbsState, b: AbsState) -> AbsState:
        return self._merge(a, b, widen_abs=False)

    def widen(self, old: AbsState, new: AbsState, visits: int) -> AbsState:
        return self._merge(old, new, widen_abs=True)

    def _merge(self, a: AbsState, b: AbsState, *, widen_abs: bool) -> AbsState:
        ra, ca, pa = _thaw(a)
        rb, cb, pb = _thaw(b)
        regs: dict = {}
        combine = globals()["widen_abs"] if widen_abs else join_abs
        for reg, val in ra.items():
            other = rb.get(reg)
            if other is None:
                continue
            merged = combine(val, other)
            if merged is not None:
                regs[reg] = merged
        conds = {k: v for k, v in ca.items() if cb.get(k) == v}
        copies = {k: v for k, v in pa.items() if pb.get(k) == v}
        return _freeze(regs, conds, copies)

    # ----------------------------------------------------------- transfer

    def transfer(self, block: BasicBlock, state: AbsState) -> AbsState:
        regs, conds, copies = _thaw(state)
        for index, instr in block.instructions(self.function):
            self._step(instr, regs, conds, copies)
        return _freeze(regs, conds, copies)

    def _step(self, instr, regs: dict, conds: dict, copies: dict) -> None:
        if isinstance(instr, Const):
            _kill_reg(instr.dst, conds, copies)
            if isinstance(instr.value, int) and not isinstance(
                instr.value, bool
            ):
                regs[instr.dst] = AbsInt.const(instr.value)
            else:
                regs.pop(instr.dst, None)
        elif isinstance(instr, Move):
            if instr.dst == instr.src:
                return
            _kill_reg(instr.dst, conds, copies)
            src = regs.get(instr.src)
            if src is None:
                regs.pop(instr.dst, None)
            else:
                regs[instr.dst] = src
            copies[instr.dst] = copies.get(instr.src, instr.src)
        elif isinstance(instr, FrameAddr):
            _kill_reg(instr.dst, conds, copies)
            regs[instr.dst] = AbsAddr("frame", AbsInt.const(instr.offset))
        elif isinstance(instr, GlobalAddr):
            _kill_reg(instr.dst, conds, copies)
            regs[instr.dst] = AbsAddr(
                f"global:{instr.name}", AbsInt.const(0)
            )
        elif isinstance(instr, BinOp):
            a = regs.get(instr.a)
            b = regs.get(instr.b)
            # Record integer comparison facts for the branch refinement,
            # before the dst write invalidates anything.
            is_cond = instr.is_compare and not instr.float_op
            cond_fact = (instr.op, instr.a, instr.b) if is_cond else None
            _kill_reg(instr.dst, conds, copies)
            if cond_fact is not None and instr.dst not in (instr.a, instr.b):
                conds[instr.dst] = cond_fact
            regs.pop(instr.dst, None)
            if instr.is_compare:
                regs[instr.dst] = AbsInt(Interval(0, 1), TOP_CONGRUENCE)
                return
            if instr.float_op:
                return
            value = self._binop_value(instr, a, b)
            if value is not None:
                regs[instr.dst] = value
        elif isinstance(instr, UnOp):
            a = regs.get(instr.a)
            _kill_reg(instr.dst, conds, copies)
            regs.pop(instr.dst, None)
            if instr.op == "-" and isinstance(a, AbsInt) and not instr.float_op:
                regs[instr.dst] = AbsInt(_iv_neg(a.interval), a.cong.neg())
            elif instr.op == "!":
                regs[instr.dst] = AbsInt(Interval(0, 1), TOP_CONGRUENCE)
        elif isinstance(instr, Call):
            for position, arg in enumerate(instr.args):
                slots = self.call_args.setdefault(instr.callee, [])
                while len(slots) <= position:
                    slots.append("unset")
                held = slots[position]
                value = regs.get(arg)
                if held == "unset":
                    slots[position] = value
                elif held is not None:
                    slots[position] = (
                        join_abs(held, value) if value is not None else None
                    )
            if instr.dst is not None:
                _kill_reg(instr.dst, conds, copies)
                regs.pop(instr.dst, None)
                summary = self.summaries.get(instr.callee)
                if summary is not None and summary.ret is not None:
                    regs[instr.dst] = summary.ret
        elif isinstance(instr, (ICall, DomainCall, Intrinsic)):
            dst = getattr(instr, "dst", None)
            if dst is not None:
                _kill_reg(dst, conds, copies)
                regs.pop(dst, None)
        else:
            dst = getattr(instr, "dst", None)
            if isinstance(dst, int):
                _kill_reg(dst, conds, copies)
                regs.pop(dst, None)

    def _binop_value(
        self, instr: BinOp, a: AbsVal, b: AbsVal
    ) -> Optional[AbsVal]:
        if isinstance(a, AbsAddr) and isinstance(b, AbsInt):
            if instr.op in ("+", "-"):
                return a.shifted(b, 1 if instr.op == "+" else -1)
            return None
        if isinstance(a, AbsInt) and isinstance(b, AbsAddr):
            if instr.op == "+":
                return b.shifted(a)
            return None
        if isinstance(a, AbsAddr) and isinstance(b, AbsAddr):
            if instr.op == "-" and a.region == b.region:
                return AbsInt(
                    _iv_sub(a.offset.interval, b.offset.interval),
                    a.offset.cong.sub(b.offset.cong),
                )
            return None
        if isinstance(a, AbsInt) and isinstance(b, AbsInt):
            return _arith(instr.op, a, b)
        return None

    # ------------------------------------------------------- branch edges

    def edge(
        self, pred: BasicBlock, succ_index: int, state: AbsState
    ) -> Optional[AbsState]:
        """Refine the state along one CFG edge (None = infeasible)."""
        last = self.function.code[pred.end - 1]
        if not isinstance(last, CJump):
            return state
        if len(pred.succs) < 2:
            return state  # then/else collapse to one target: no info
        taken = succ_index == pred.succs[0]
        regs, conds, copies = _thaw(state)
        fact = conds.get(last.cond)
        if fact is None:
            return state
        op, ra, rb = fact
        if not taken:
            op = _NEGATE[op]
        a = regs.get(ra, TOP_INT)
        b = regs.get(rb, TOP_INT)
        if not isinstance(a, AbsInt) or not isinstance(b, AbsInt):
            return state  # addresses/floats: no arithmetic refinement
        refined = _refine_pair(op, a, b)
        if refined is None:
            return None
        new_a, new_b = refined
        for reg in _class_of(ra, copies):
            if regs.get(reg) == a or reg == ra:
                regs[reg] = new_a
        for reg in _class_of(rb, copies):
            if regs.get(reg) == b or reg == rb:
                regs[reg] = new_b
        return _freeze(regs, conds, copies)


# -------------------------------------------------- whole-function solve


@dataclass
class SolvedFunction:
    """One function's solved interval dataflow, ready for consumers."""

    function: IRFunction
    cfg: ControlFlowGraph
    result: FixpointResult
    analysis: IntervalAnalysis

    def values_at(self, block_index: int) -> dict[int, AbsVal]:
        """The register map on entry to one block."""
        state = self.result.block_in.get(block_index)
        if state is None:
            return {}
        regs, _, _ = _thaw(state)
        return regs

    def values_before(self, instr_index: int) -> dict[int, AbsVal]:
        """The register map immediately before one instruction."""
        block = self.cfg.block_at(instr_index)
        state = self.result.block_in.get(block.index)
        if state is None:
            return {}
        regs, conds, copies = _thaw(state)
        for index, instr in block.instructions(self.function):
            if index == instr_index:
                break
            self.analysis._step(instr, regs, conds, copies)
        return regs


def analyze_function(
    function: IRFunction,
    summaries: Optional[dict[str, FunctionSummary]] = None,
    boundary_params: Optional[dict[int, AbsVal]] = None,
) -> SolvedFunction:
    """Solve the interval analysis for one function.

    When ``boundary_params`` is omitted but the function's own summary
    carries call-site argument joins (:attr:`FunctionSummary.params`),
    those seed the entry state — consumers re-solving a callee after
    :func:`compute_summaries` get the interprocedural argument bounds
    without re-running the global fixpoint.
    """
    if boundary_params is None and summaries:
        summary = summaries.get(function.name)
        if summary is not None and summary.params:
            boundary_params = dict(summary.params)
    cfg = build_cfg(function)
    analysis = IntervalAnalysis(function, summaries, boundary_params)
    result = solve_forward(cfg, analysis)
    return SolvedFunction(function, cfg, result, analysis)


def _return_value(solved: SolvedFunction) -> Optional[AbsVal]:
    """Joined abstract value over every ``Ret r`` site (None = ⊤)."""
    function = solved.function
    ret: Optional[AbsVal] = "unset"  # sentinel: no Ret seen yet
    for block in solved.cfg.blocks:
        if block.index not in solved.result.block_in:
            continue
        last = function.code[block.end - 1]
        if not isinstance(last, Ret) or last.src is None:
            if isinstance(last, Ret):
                return None  # bare ret returns 0/⊤; keep it simple
            continue
        regs = solved.values_before(block.end - 1)
        value = regs.get(last.src)
        if value is None:
            return None
        ret = value if ret == "unset" else join_abs(ret, value)
        if ret is None:
            return None
    return None if ret == "unset" else ret


def compute_summaries(
    functions: list[IRFunction],
    *,
    entry_names: Optional[frozenset] = None,
    max_rounds: int = 8,
) -> dict[str, FunctionSummary]:
    """Global fixpoint of interval summaries over the accel call graph.

    ``entry_names`` — functions whose arguments come from outside the
    analysed world (offload entries, domain-dispatch targets); they keep
    ⊤ parameters.  Everything else gets the join of the argument values
    at every analysed call site.  When the final round still changed
    (pathological graphs), parameter knowledge is discarded — ⊤ params
    are always sound.
    """
    if entry_names is None:
        entry_names = frozenset(
            f.name
            for f in functions
            if f.source_name.startswith("__offload_")
        )
    names = frozenset(f.name for f in functions)
    summaries: dict[str, FunctionSummary] = {}
    boundaries: dict[str, dict[int, AbsVal]] = {}
    converged = False
    for _ in range(max_rounds):
        changed = False
        call_joins: dict[str, list[Optional[AbsVal]]] = {}
        for function in functions:
            solved = analyze_function(
                function, summaries, boundaries.get(function.name)
            )
            new = FunctionSummary(
                params=tuple(
                    sorted(boundaries.get(function.name, {}).items())
                ),
                ret=_return_value(solved),
            )
            if summaries.get(function.name) != new:
                summaries[function.name] = new
                changed = True
            for callee, args in solved.analysis.call_args.items():
                if callee not in names:
                    continue
                held = call_joins.setdefault(callee, list(args))
                for position, value in enumerate(args):
                    if position >= len(held):
                        held.append(value)
                    elif held[position] == "unset":
                        held[position] = value
                    elif value == "unset":
                        pass
                    elif held[position] is None or value is None:
                        held[position] = None
                    else:
                        held[position] = join_abs(held[position], value)
        new_boundaries: dict[str, dict[int, AbsVal]] = {}
        for name, args in call_joins.items():
            if name in entry_names:
                continue
            params = {
                position: value
                for position, value in enumerate(args)
                if value is not None and value != "unset"
            }
            if params:
                new_boundaries[name] = params
        if new_boundaries != boundaries:
            boundaries = new_boundaries
            changed = True
        if not changed:
            converged = True
            break
    if not converged:
        # Re-solve without parameter knowledge: unconditionally sound.
        summaries = {}
        for function in functions:
            solved = analyze_function(function, summaries)
            summaries[function.name] = FunctionSummary(
                params=(), ret=_return_value(solved)
            )
    return summaries


# ------------------------------------------------------------ trip counts


@dataclass(frozen=True)
class TripCount:
    """Trip-count bounds of one natural loop.

    ``min_trips``/``max_trips`` bound how many times the loop *body*
    executes per entry; ``exact`` is True when they coincide and the
    bound is provably attained (const init, const bound, const step).
    ``max_trips is None`` means statically unbounded.
    """

    loop: Loop
    min_trips: int = 0
    max_trips: Optional[int] = None

    @property
    def exact(self) -> bool:
        return self.max_trips is not None and self.min_trips == self.max_trips


def _step_of(
    solved: SolvedFunction, loop: Loop, var_class: set[int]
) -> Optional[int]:
    """The constant increment of the induction variable, or None.

    Matches the lowered ``for`` shape: inside the loop body the counter
    register is reassigned exactly once, by a Move whose source chains
    back (within the same block) to ``counter + const``.
    """
    function = solved.function
    writes: list[tuple[int, object]] = []
    body_blocks = [solved.cfg.blocks[bi] for bi in sorted(loop.body)]
    for block in body_blocks:
        for index, instr in block.instructions(function):
            dst = getattr(instr, "dst", None)
            if isinstance(dst, int) and dst in var_class:
                writes.append((index, instr))
    candidates = [w for w in writes if w[1].__class__ is Move]
    other = [w for w in writes if w[1].__class__ is not Move]
    if other:
        return None
    steps: set[int] = set()
    for index, move in candidates:
        block = solved.cfg.block_at(index)
        # Walk the defining chain backwards within the block.
        local: dict[int, object] = {}
        for i, instr in block.instructions(function):
            if i >= index:
                break
            local[getattr(instr, "dst", -1)] = instr
        src = move.src
        seen: set[int] = set()
        while True:
            if src in var_class:
                steps.add(0)
                break
            if src in seen:
                return None
            seen.add(src)
            define = local.get(src)
            if define is None:
                return None
            if isinstance(define, Move):
                src = define.src
                continue
            if (
                isinstance(define, BinOp)
                and define.op == "+"
                and not define.float_op
            ):
                const_side = None
                var_side = None
                for operand in (define.a, define.b):
                    const_def = local.get(operand)
                    if (
                        isinstance(const_def, Const)
                        and isinstance(const_def.value, int)
                    ):
                        const_side = const_def.value
                    else:
                        var_side = operand
                if const_side is None or var_side is None:
                    return None
                chains_back = var_side in var_class or (
                    isinstance(local.get(var_side), Move)
                    and local[var_side].src in var_class
                )
                if not chains_back:
                    return None
                steps.add(const_side)
                break
            return None
    steps.discard(0)
    if len(steps) != 1:
        return None
    return steps.pop()


def loop_trips(solved: SolvedFunction, loop: Loop) -> TripCount:
    """Bound one natural loop's trip count from the solved dataflow.

    Recognises the canonical counted loop the lowering emits — header
    compares (a copy of) the counter against a bound, the body
    increments it by a constant — and derives trips from the counter's
    interval on the loop-entry edges, the bound's interval at the
    header, and the step.  Anything else is unbounded (``max_trips
    None``) — the static cost model then reports ``W-cost-unbounded``.
    """
    cfg = solved.cfg
    function = solved.function
    header = cfg.blocks[loop.header]
    last = function.code[header.end - 1]
    state = solved.result.block_in.get(loop.header)
    if not isinstance(last, CJump) or state is None:
        return TripCount(loop)
    # Exactly one successor inside the loop, one outside, or it's not a
    # guarded counted loop we can bound.
    inside = [s for s in header.succs if s in loop.body]
    if len(header.succs) != 2 or len(inside) != 1:
        return TripCount(loop)
    taken = inside[0] == header.succs[0]
    regs, conds, copies = _thaw(state)
    # Evaluate the header block up to the CJump so the compare fact and
    # the operand values reflect the branch point.
    for index, instr in header.instructions(function):
        if index == header.end - 1:
            break
        solved.analysis._step(instr, regs, conds, copies)
    fact = conds.get(last.cond)
    if fact is None:
        return TripCount(loop)
    op, ra, rb = fact
    if not taken:
        op = _NEGATE[op]
    # Identify the induction side: operand whose copy class is written
    # in the body.  Normalise to  var OP bound.  Const writes are
    # loop-invariant by definition (the header re-materialises the
    # bound each iteration), and a Move from inside the same class just
    # renames the value — neither makes a register loop-variant.
    def written_in_body(reg: int) -> bool:
        var_class = _class_of(reg, copies)
        for bi in loop.body:
            for _, instr in cfg.blocks[bi].instructions(function):
                dst = getattr(instr, "dst", None)
                if not (isinstance(dst, int) and dst in var_class):
                    continue
                if isinstance(instr, Const):
                    continue
                if isinstance(instr, Move) and instr.src in var_class:
                    continue
                return True
        return False

    a_var = written_in_body(ra)
    b_var = written_in_body(rb)
    if a_var == b_var:
        return TripCount(loop)
    if b_var:
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
        op, ra, rb = flip[op], rb, ra
    var_class = _class_of(ra, copies)
    bound = regs.get(rb, TOP_INT)
    if not isinstance(bound, AbsInt):
        return TripCount(loop)
    step = _step_of(solved, loop, var_class)
    if step is None or step <= 0 or op not in ("<", "<=", "!="):
        return TripCount(loop)
    # Initial counter value: join of the counter's value flowing in on
    # the loop-entry edges (predecessors outside the body).
    init: Optional[AbsInt] = None
    for p in header.preds:
        if p in loop.body:
            continue
        out = solved.result.block_out.get(p)
        if out is None:
            continue
        pregs, _, _ = _thaw(out)
        value = pregs.get(min(var_class))
        if value is None:
            for member in sorted(var_class):
                value = pregs.get(member)
                if value is not None:
                    break
        if not isinstance(value, AbsInt):
            return TripCount(loop)
        init = value if init is None else init.join(value)
    if init is None:
        return TripCount(loop)
    iv_init, iv_bound = init.interval, bound.interval
    slack = 1 if op == "<=" else 0
    if op == "!=":
        # i != n with positive step only terminates when n is reachable
        # exactly; require const init/bound and step | (n - init).
        if not (init.const_value is not None and bound.const_value is not None):
            return TripCount(loop)
        span = bound.const_value - init.const_value
        if span < 0 or span % step != 0:
            return TripCount(loop)
        trips = span // step
        return TripCount(loop, trips, trips)
    if iv_bound.hi is None or iv_init.lo is None:
        return TripCount(loop)
    max_span = iv_bound.hi + slack - iv_init.lo
    max_trips = max(0, -(-max_span // step)) if max_span > 0 else 0
    min_trips = 0
    if iv_bound.lo is not None and iv_init.hi is not None:
        min_span = iv_bound.lo + slack - iv_init.hi
        min_trips = max(0, -(-min_span // step)) if min_span > 0 else 0
    return TripCount(loop, min_trips, max_trips)

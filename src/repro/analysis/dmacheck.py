"""Flow-sensitive, interprocedural DMA-discipline checking.

The rebuilt static side of the paper's DMA race tooling (Scratch,
TACAS 2010): where :mod:`repro.analysis.static_races` resets its state
at every label and branch, this checker runs the abstract semantics
through the dataflow framework (:mod:`repro.analysis.dataflow`), so the
set of issued-but-unwaited transfers flows *across* branches and around
loop back edges.  The Figure 1 collision pattern with a forgotten wait
between iterations — which the intra-block analysis provably misses —
is reported statically here.

Abstract state per program point:

* register values (the shared symbolic-address domain),
* the set of in-flight :class:`PendingTransfer` records,
* the set of DMA tags possibly issued so far (orphan-wait detection),
* the set of tags *definitely* waited on every path (summaries).

Joins union the pending set (a transfer in flight on either path may be
in flight at the merge), pointwise-join register values, union issued
tags and intersect waited tags.  Loop-carried growth is bounded by
collapsing pending transfers that originate at the same instruction —
their addresses are joined, widening disagreeing offsets to
"unknown offset within the region" — so the fixpoint always converges.

Interprocedural reasoning uses per-function :class:`FunctionSummary`
records computed to a global fixpoint over the accelerator call graph:
tags a callee may issue, transfers it may leave in flight at return
(propagated into the caller's pending set), and tags it is guaranteed
to wait for (which fence the caller's earlier transfers).

Diagnostic codes (see :mod:`repro.analysis.diagnostics`):

* ``E-dma-race`` — two in-flight transfers may overlap.
* ``E-dma-leak`` — an offload entry returns with transfers in flight
  (nothing on the host can ever wait for them).
* ``E-dma-orphan-wait`` — a wait on a tag no path ever issued.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.dataflow import (
    BasicBlock,
    ForwardAnalysis,
    SymAddr,
    build_cfg,
    eval_value_instr,
    freeze_values,
    join_values,
    solve_forward,
    thaw_values,
)
from repro.analysis.diagnostics import Finding, RelatedLocation
from repro.ir.instructions import Call, DomainCall, ICall, Intrinsic, Ret
from repro.ir.module import IRFunction, IRProgram


@dataclass(frozen=True)
class PendingTransfer:
    """One issued, un-waited DMA transfer in the abstract state."""

    kind: str  # "get" | "put"
    tag: Optional[int]  # None when not statically known
    local: Optional[SymAddr]
    outer: Optional[SymAddr]
    size: Optional[int]
    index: int  # issuing instruction index (in ``origin``)
    origin: str  # function the transfer was issued in


@dataclass(frozen=True)
class DmaState:
    """The abstract state at one program point (immutable, hashable)."""

    values: tuple  # freeze_values() of the register map
    pending: frozenset  # of PendingTransfer
    issued: frozenset  # of int tags possibly issued
    unknown_issue: bool  # a dynamic callee / unknown tag may have issued
    waited: frozenset  # of int tags waited on EVERY path so far
    waits_all: bool  # an all-fencing wait happened on every path


EMPTY_STATE = DmaState(
    values=(),
    pending=frozenset(),
    issued=frozenset(),
    unknown_issue=False,
    waited=frozenset(),
    waits_all=False,
)


@dataclass(frozen=True)
class FunctionSummary:
    """What one accelerator function may do to the DMA state.

    ``must_wait_tags`` / ``waits_all`` hold on *every* path through the
    function, so a caller may treat them as fences; ``issued_tags``,
    ``unknown_issue`` and ``leaked`` are may-information.
    """

    issued_tags: frozenset
    unknown_issue: bool
    leaked: tuple  # of PendingTransfer possibly in flight at return
    must_wait_tags: frozenset
    waits_all: bool


#: Conservative summary for callees not yet computed (cycles) or not
#: analysable: assumes no fencing and an unknown issue source.
UNKNOWN_SUMMARY = FunctionSummary(
    issued_tags=frozenset(),
    unknown_issue=True,
    leaked=(),
    must_wait_tags=frozenset(),
    waits_all=False,
)


def _ranges_overlap(
    a: Optional[SymAddr],
    a_size: Optional[int],
    b: Optional[SymAddr],
    b_size: Optional[int],
) -> bool:
    """Conservative overlap test over symbolic addresses.

    Unknown provenance (``None``) never overlaps — distinct opaque
    sources stay quiet, matching the seed analysis.  Within one region,
    an unknown (widened) offset or size counts as overlapping.
    """
    if a is None or b is None:
        return False
    if a.region != b.region:
        return False
    if a.offset is None or b.offset is None:
        return True
    if a_size is None or b_size is None:
        return True
    return a.offset < b.offset + b_size and b.offset < a.offset + a_size


def _conflict(earlier: PendingTransfer, later: PendingTransfer) -> Optional[str]:
    """Same rules as the dynamic checker: put/put or get/put overlap in
    outer memory races; any overlap involving a get's local target
    races in the local store."""
    if _ranges_overlap(earlier.outer, earlier.size, later.outer, later.size):
        if not (earlier.kind == "get" and later.kind == "get"):
            return "outer"
    if _ranges_overlap(earlier.local, earlier.size, later.local, later.size):
        if earlier.kind == "get" or later.kind == "get":
            return "local"
    return None


def _join_addr(a: Optional[SymAddr], b: Optional[SymAddr]) -> Optional[SymAddr]:
    if a == b:
        return a
    if a is None or b is None:
        return None
    if a.region == b.region:
        return SymAddr(a.region, None)
    return None


def _collapse_pending(pending: frozenset) -> frozenset:
    """Bound loop-carried growth: transfers issued at the same
    instruction (same origin/index) are merged, widening any field the
    paths disagree on.  This is the analysis' widening operator — the
    pending set is thereby at most one entry per DMA instruction."""
    by_site: dict[tuple[str, int], PendingTransfer] = {}
    for t in pending:
        key = (t.origin, t.index)
        held = by_site.get(key)
        if held is None:
            by_site[key] = t
            continue
        by_site[key] = PendingTransfer(
            kind=held.kind,
            tag=held.tag if held.tag == t.tag else None,
            local=_join_addr(held.local, t.local),
            outer=_join_addr(held.outer, t.outer),
            size=held.size if held.size == t.size else None,
            index=held.index,
            origin=held.origin,
        )
    return frozenset(by_site.values())


class DmaDisciplineAnalysis(ForwardAnalysis):
    """The dataflow analysis proper, parameterised by callee summaries.

    ``report`` collects findings during the final reporting pass; during
    fixpoint solving it is None so transient states don't produce
    duplicate diagnostics.
    """

    def __init__(
        self,
        function: IRFunction,
        summaries: dict[str, FunctionSummary],
        accel_names: frozenset,
    ):
        self.function = function
        self.summaries = summaries
        self.accel_names = accel_names
        self.report: Optional[list] = None

    # ------------------------------------------------------------ lattice

    def boundary(self) -> DmaState:
        return EMPTY_STATE

    def join(self, a: DmaState, b: DmaState) -> DmaState:
        return DmaState(
            values=freeze_values(
                join_values(thaw_values(a.values), thaw_values(b.values))
            ),
            pending=_collapse_pending(a.pending | b.pending),
            issued=a.issued | b.issued,
            unknown_issue=a.unknown_issue or b.unknown_issue,
            waited=a.waited & b.waited,
            waits_all=a.waits_all and b.waits_all,
        )

    def widen(self, old: DmaState, new: DmaState, visits: int) -> DmaState:
        # The join already collapses per-site; as a last resort drop all
        # offset precision so the chain is finite even under adversarial
        # address arithmetic.
        widened = frozenset(
            PendingTransfer(
                kind=t.kind,
                tag=t.tag,
                local=t.local.widened() if t.local else None,
                outer=t.outer.widened() if t.outer else None,
                size=None,
                index=t.index,
                origin=t.origin,
            )
            for t in new.pending
        )
        return DmaState(
            values=new.values,
            pending=_collapse_pending(widened),
            issued=new.issued,
            unknown_issue=new.unknown_issue,
            waited=new.waited,
            waits_all=new.waits_all,
        )

    # ----------------------------------------------------------- transfer

    def transfer(self, block: BasicBlock, state: DmaState) -> DmaState:
        values = thaw_values(state.values)
        pending = set(state.pending)
        issued = set(state.issued)
        unknown_issue = state.unknown_issue
        waited = set(state.waited)
        waits_all = state.waits_all
        fn = self.function
        for index, instr in block.instructions(fn):
            if isinstance(instr, Intrinsic) and instr.name in (
                "dma_get",
                "dma_put",
            ):
                local = values.get(instr.args[0])
                outer = values.get(instr.args[1])
                size = values.get(instr.args[2])
                tag = values.get(instr.args[3])
                transfer = PendingTransfer(
                    kind="get" if instr.name == "dma_get" else "put",
                    tag=tag if isinstance(tag, int) else None,
                    local=local if isinstance(local, SymAddr) else None,
                    outer=outer if isinstance(outer, SymAddr) else None,
                    size=size if isinstance(size, int) else None,
                    index=index,
                    origin=fn.name,
                )
                if self.report is not None:
                    for earlier in sorted(
                        pending, key=lambda t: (t.origin, t.index)
                    ):
                        location = _conflict(earlier, transfer)
                        if location is not None:
                            self.report.append(
                                ("race", earlier, transfer, location)
                            )
                pending.add(transfer)
                if isinstance(tag, int):
                    issued.add(tag)
                else:
                    unknown_issue = True
                if instr.dst is not None:
                    values.pop(instr.dst, None)
            elif isinstance(instr, Intrinsic) and instr.name == "dma_wait":
                tag = values.get(instr.args[0])
                if isinstance(tag, int):
                    if (
                        self.report is not None
                        and tag not in issued
                        and not unknown_issue
                    ):
                        self.report.append(("orphan", tag, index))
                    pending = {t for t in pending if t.tag != tag}
                    waited.add(tag)
                else:
                    # Unknown tag: conservatively treat as a full fence
                    # (the seed analysis' behaviour).
                    pending.clear()
                    waits_all = True
                if instr.dst is not None:
                    values.pop(instr.dst, None)
            elif isinstance(instr, Call):
                summary = self._summary_for(instr.callee)
                if summary is not None:
                    if summary.waits_all:
                        pending.clear()
                        waits_all = True
                    elif summary.must_wait_tags:
                        pending = {
                            t
                            for t in pending
                            if t.tag not in summary.must_wait_tags
                        }
                        waited |= summary.must_wait_tags
                    if self.report is not None:
                        for leaked in summary.leaked:
                            for earlier in sorted(
                                pending, key=lambda t: (t.origin, t.index)
                            ):
                                location = _conflict(earlier, leaked)
                                if location is not None:
                                    self.report.append(
                                        ("race", earlier, leaked, location)
                                    )
                    pending.update(summary.leaked)
                    issued |= summary.issued_tags
                    unknown_issue = unknown_issue or summary.unknown_issue
                if instr.dst is not None:
                    values.pop(instr.dst, None)
            elif isinstance(instr, (ICall, DomainCall)):
                # Dynamic dispatch: the duplicate actually invoked is
                # not resolved here; assume it may issue transfers we
                # cannot see (suppresses orphan-wait false positives)
                # but model no fence.
                unknown_issue = True
                if instr.dst is not None:
                    values.pop(instr.dst, None)
            elif isinstance(instr, Ret):
                if self.report is not None and pending:
                    self.report.append(("leak", frozenset(pending), index))
            else:
                eval_value_instr(instr, index, values)
        return DmaState(
            values=freeze_values(values),
            pending=_collapse_pending(frozenset(pending)),
            issued=frozenset(issued),
            unknown_issue=unknown_issue,
            waited=frozenset(waited),
            waits_all=waits_all,
        )

    def _summary_for(self, callee: str) -> Optional[FunctionSummary]:
        if callee in self.summaries:
            return self.summaries[callee]
        if callee in self.accel_names:
            return UNKNOWN_SUMMARY  # cycle / not yet computed
        return None  # host helper: no accel DMA engine involved


# ------------------------------------------------------------- summaries


def _export_transfer(t: PendingTransfer) -> PendingTransfer:
    """Rewrite a leaked transfer for use in callers: the callee's frame
    is not the caller's frame, so frame regions are renamed to a
    callee-qualified region (globals are genuinely shared and kept)."""

    def rewrite(addr: Optional[SymAddr]) -> Optional[SymAddr]:
        if addr is None:
            return None
        if addr.region == "frame" or addr.region.startswith("u:"):
            return SymAddr(f"{addr.region}@{t.origin}", addr.offset)
        return addr

    return PendingTransfer(
        kind=t.kind,
        tag=t.tag,
        local=rewrite(t.local),
        outer=rewrite(t.outer),
        size=t.size,
        index=t.index,
        origin=t.origin,
    )


def _summarise(
    function: IRFunction,
    summaries: dict[str, FunctionSummary],
    accel_names: frozenset,
) -> FunctionSummary:
    """One summary from the function's solved dataflow: states at Ret."""
    cfg = build_cfg(function)
    analysis = DmaDisciplineAnalysis(function, summaries, accel_names)
    result = solve_forward(cfg, analysis)
    ret_states: list[DmaState] = []
    for block_index, out_state in result.block_out.items():
        block = cfg.blocks[block_index]
        if block.end > 0 and isinstance(function.code[block.end - 1], Ret):
            ret_states.append(out_state)
    if not ret_states:
        return FunctionSummary(
            issued_tags=frozenset(),
            unknown_issue=False,
            leaked=(),
            must_wait_tags=frozenset(),
            waits_all=False,
        )
    issued: set = set()
    unknown = False
    leaked: set = set()
    must_wait = None
    waits_all = True
    for state in ret_states:
        issued |= state.issued
        unknown = unknown or state.unknown_issue
        leaked |= {_export_transfer(t) for t in state.pending}
        must_wait = (
            set(state.waited)
            if must_wait is None
            else must_wait & state.waited
        )
        waits_all = waits_all and state.waits_all
    return FunctionSummary(
        issued_tags=frozenset(issued),
        unknown_issue=unknown,
        leaked=tuple(
            sorted(leaked, key=lambda t: (t.origin, t.index, t.kind))
        ),
        must_wait_tags=frozenset(must_wait or ()),
        waits_all=waits_all,
    )


def compute_summaries(
    functions: list[IRFunction], *, max_rounds: int = 8
) -> dict[str, FunctionSummary]:
    """Fixpoint of per-function summaries over the accel call graph.

    Starts every function at :data:`UNKNOWN_SUMMARY` (sound for cycles)
    and re-summarises until nothing changes; ``max_rounds`` bounds the
    work on pathological graphs.
    """
    accel_names = frozenset(f.name for f in functions)
    summaries: dict[str, FunctionSummary] = {}
    for _ in range(max_rounds):
        changed = False
        for function in functions:
            new = _summarise(function, summaries, accel_names)
            if summaries.get(function.name) != new:
                summaries[function.name] = new
                changed = True
        if not changed:
            break
    return summaries


# -------------------------------------------------------------- reporting


def _is_offload_entry(function: IRFunction) -> bool:
    return function.source_name.startswith("__offload_")


def check_function(
    function: IRFunction,
    summaries: dict[str, FunctionSummary],
    accel_names: frozenset,
    *,
    file: str = "<input>",
) -> list[Finding]:
    """Report DMA-discipline findings for one accelerator function."""
    cfg = build_cfg(function)
    analysis = DmaDisciplineAnalysis(function, summaries, accel_names)
    result = solve_forward(cfg, analysis)
    raw: list = []
    analysis.report = raw
    for block_index, in_state in result.block_in.items():
        analysis.transfer(cfg.blocks[block_index], in_state)
    findings: list[Finding] = []
    seen: set = set()
    for item in raw:
        if item[0] == "race":
            _, earlier, later, location = item
            key = ("race", earlier.origin, earlier.index, later.index, location)
            if key in seen:
                continue
            seen.add(key)
            first_at = (
                f"instruction {earlier.index}"
                if earlier.origin == function.name
                else f"instruction {earlier.index} of {earlier.origin}"
            )
            related = (
                RelatedLocation(
                    message=(
                        f"the earlier {earlier.kind} was issued here"
                    ),
                    file=file,
                    function=earlier.origin,
                    instr_index=earlier.index,
                ),
            )
            findings.append(
                Finding(
                    code="E-dma-race",
                    message=(
                        f"possible DMA race in {location} memory between "
                        f"the {earlier.kind} at {first_at} and the "
                        f"{later.kind} at instruction {later.index} "
                        f"(no intervening dma_wait on every path)"
                    ),
                    file=file,
                    function=function.name,
                    instr_index=later.index,
                    analysis="dma-discipline",
                    related=related,
                )
            )
        elif item[0] == "orphan":
            _, tag, index = item
            key = ("orphan", index)
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                Finding(
                    code="E-dma-orphan-wait",
                    message=(
                        f"dma_wait on tag {tag} at instruction {index}, "
                        f"but no execution path issues a transfer with "
                        f"that tag"
                    ),
                    file=file,
                    function=function.name,
                    instr_index=index,
                    analysis="dma-discipline",
                )
            )
        elif item[0] == "leak" and _is_offload_entry(function):
            _, pending, index = item
            for t in sorted(pending, key=lambda t: (t.origin, t.index)):
                key = ("leak", t.origin, t.index)
                if key in seen:
                    continue
                seen.add(key)
                tag_text = f"tag {t.tag}" if t.tag is not None else "unknown tag"
                where = (
                    f"instruction {t.index}"
                    if t.origin == function.name
                    else f"instruction {t.index} of {t.origin}"
                )
                related = (
                    (
                        RelatedLocation(
                            message=(
                                f"the in-flight {t.kind} was issued in "
                                f"this callee"
                            ),
                            file=file,
                            function=t.origin,
                            instr_index=t.index,
                        ),
                    )
                    if t.origin != function.name
                    else ()
                )
                findings.append(
                    Finding(
                        code="E-dma-leak",
                        message=(
                            f"offload block can return while the "
                            f"{t.kind} ({tag_text}) issued at {where} is "
                            f"still in flight; add a dma_wait before the "
                            f"block ends"
                        ),
                        file=file,
                        function=function.name,
                        instr_index=t.index,
                        analysis="dma-discipline",
                        related=related,
                    )
                )
    return findings


def check_program(
    program: IRProgram, *, file: str = "<input>"
) -> list[Finding]:
    """Run the DMA-discipline checker over every accelerator function."""
    functions = program.accel_functions()
    summaries = compute_summaries(functions)
    accel_names = frozenset(f.name for f in functions)
    findings: list[Finding] = []
    for function in sorted(functions, key=lambda f: f.name):
        findings.extend(
            check_function(function, summaries, accel_names, file=file)
        )
    return findings

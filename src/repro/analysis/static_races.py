"""Static DMA race analysis over the IR.

The paper cites static (Scratch, TACAS 2010) and dynamic (IBM Race Check
Library) tools for the DMA race bug class.  This module is the static
side for our IR: a per-basic-block abstract interpretation that tracks

* registers holding *known symbolic addresses* — a (region, offset)
  pair, where a region is a global, the frame, or an unknown pointer
  source — propagated through Const/Move/FrameAddr/GlobalAddr and
  constant-offset arithmetic; and
* the set of DMA transfers issued but not yet waited for, as intervals
  over those symbolic regions.

Two outstanding transfers conflict under the same rules as the dynamic
checker (put/put or get/put overlap in main memory; any overlap
involving a get's local target in the local store).  The analysis is
intra-block and resets at labels/branches, so it is sound only for the
straight-line DMA idioms that dominate real offload code (the Figure 1
pattern); loops are covered by the dynamic checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.instructions import (
    BinOp,
    CJump,
    Const,
    FrameAddr,
    GlobalAddr,
    Intrinsic,
    Jump,
    Move,
)
from repro.ir.module import IRFunction


@dataclass(frozen=True)
class SymAddr:
    """A symbolic address: region name + constant byte offset."""

    region: str  # "frame", "global:<name>", or "unknown:<n>"
    offset: int

    def shifted(self, delta: int) -> "SymAddr":
        return SymAddr(self.region, self.offset + delta)


@dataclass(frozen=True)
class PendingTransfer:
    """One issued, un-waited transfer."""

    kind: str  # "get" | "put"
    tag: Optional[int]  # None when not statically known
    local: Optional[SymAddr]
    outer: Optional[SymAddr]
    size: Optional[int]
    index: int  # instruction index, for reporting


@dataclass(frozen=True)
class StaticRaceFinding:
    """A potential race between two statically-issued transfers."""

    function: str
    first_index: int
    second_index: int
    location: str  # "outer" | "local"

    def describe(self) -> str:
        return (
            f"{self.function}: possible DMA race in {self.location} memory "
            f"between transfers at instructions {self.first_index} and "
            f"{self.second_index} (no intervening dma_wait)"
        )


def _ranges_overlap(
    a: Optional[SymAddr],
    a_size: Optional[int],
    b: Optional[SymAddr],
    b_size: Optional[int],
) -> bool:
    """Conservative overlap: unknown addresses in the same region (or an
    unknown size) count as overlapping only when regions match."""
    if a is None or b is None:
        return False  # different unknown provenance: stay quiet
    if a.region != b.region:
        return False
    if a_size is None or b_size is None:
        return True
    return a.offset < b.offset + b_size and b.offset < a.offset + a_size


def _conflict(
    earlier: PendingTransfer, later: PendingTransfer
) -> Optional[str]:
    if _ranges_overlap(earlier.outer, earlier.size, later.outer, later.size):
        if not (earlier.kind == "get" and later.kind == "get"):
            return "outer"
    if _ranges_overlap(earlier.local, earlier.size, later.local, later.size):
        if earlier.kind == "get" or later.kind == "get":
            return "local"
    return None


def find_static_races(function: IRFunction) -> list[StaticRaceFinding]:
    """Run the analysis over one IR function."""
    findings: list[StaticRaceFinding] = []
    values: dict[int, object] = {}  # reg -> int | SymAddr
    pending: list[PendingTransfer] = []
    unknown_counter = 0
    label_indices = set(function.labels.values())

    def reset_state() -> None:
        values.clear()
        pending.clear()

    for index, instr in enumerate(function.code):
        if index in label_indices:
            reset_state()
        if isinstance(instr, Const):
            values[instr.dst] = instr.value if isinstance(instr.value, int) else None
        elif isinstance(instr, Move):
            values[instr.dst] = values.get(instr.src)
        elif isinstance(instr, FrameAddr):
            values[instr.dst] = SymAddr("frame", instr.offset)
        elif isinstance(instr, GlobalAddr):
            values[instr.dst] = SymAddr(f"global:{instr.name}", 0)
        elif isinstance(instr, BinOp) and instr.op in ("+", "-", "*"):
            a = values.get(instr.a)
            b = values.get(instr.b)
            if instr.op == "*":
                if isinstance(a, int) and isinstance(b, int):
                    values[instr.dst] = a * b
                else:
                    unknown_counter += 1
                    values[instr.dst] = SymAddr(f"unknown:{unknown_counter}", 0)
                continue
            sign = 1 if instr.op == "+" else -1
            if isinstance(a, SymAddr) and isinstance(b, int):
                values[instr.dst] = a.shifted(sign * b)
            elif isinstance(b, SymAddr) and isinstance(a, int) and sign == 1:
                values[instr.dst] = b.shifted(a)
            elif isinstance(a, int) and isinstance(b, int):
                values[instr.dst] = a + sign * b
            else:
                unknown_counter += 1
                values[instr.dst] = SymAddr(f"unknown:{unknown_counter}", 0)
        elif isinstance(instr, (Jump, CJump)):
            reset_state()
        elif isinstance(instr, Intrinsic):
            if instr.name in ("dma_get", "dma_put"):
                local = values.get(instr.args[0])
                outer = values.get(instr.args[1])
                size = values.get(instr.args[2])
                tag = values.get(instr.args[3])
                transfer = PendingTransfer(
                    kind="get" if instr.name == "dma_get" else "put",
                    tag=tag if isinstance(tag, int) else None,
                    local=local if isinstance(local, SymAddr) else None,
                    outer=outer if isinstance(outer, SymAddr) else None,
                    size=size if isinstance(size, int) else None,
                    index=index,
                )
                for earlier in pending:
                    location = _conflict(earlier, transfer)
                    if location is not None:
                        findings.append(
                            StaticRaceFinding(
                                function=function.name,
                                first_index=earlier.index,
                                second_index=index,
                                location=location,
                            )
                        )
                pending.append(transfer)
            elif instr.name == "dma_wait":
                tag = values.get(instr.args[0])
                if isinstance(tag, int):
                    pending[:] = [t for t in pending if t.tag != tag]
                else:
                    pending.clear()  # unknown tag: conservatively fences all
            elif instr.name in ("acc_bulk_get", "acc_bulk_put"):
                pass  # accessor transfers wait internally
        else:
            # Any other instruction writing a register invalidates it.
            dst = getattr(instr, "dst", None)
            if isinstance(dst, int):
                values.pop(dst, None)
    return findings


def find_races_in_program(functions: list[IRFunction]) -> list[StaticRaceFinding]:
    """Analyse every accelerator function of a program."""
    findings: list[StaticRaceFinding] = []
    for function in functions:
        findings.extend(find_static_races(function))
    return findings

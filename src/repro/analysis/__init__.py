"""Developer-facing analyses.

* :mod:`repro.analysis.dataflow` — CFG construction over the IR and the
  generic worklist fixpoint engine the whole-program analyses build on.
* :mod:`repro.analysis.dmacheck` — flow-sensitive, interprocedural DMA
  discipline checking (races, leaks, orphan waits).
* :mod:`repro.analysis.intervals` — interprocedural abstract
  interpretation over the dataflow engine: an interval × congruence
  (stride/alignment) domain with widening, branch refinement,
  per-function summaries and loop trip-count bounds.
* :mod:`repro.analysis.bounds` — static DMA bounds/alignment proofs on
  the interval domain (``E-dma-oob``, ``W-dma-unaligned``,
  ``W-dma-tiny-transfer``).
* :mod:`repro.analysis.cost` — static per-offload cycle and DMA-traffic
  estimation (``W-cost-unbounded``); :func:`repro.analysis.cost.static_profile`
  feeds the ``critical-path`` scheduler policy with no profiling run.
* :mod:`repro.analysis.footprint` — local-store footprint estimation
  per offload block against the target's scratch-pad capacity.
* :mod:`repro.analysis.traffic` — outer-traffic analysis flagging
  uncached hot outer loops (the §5 guidance, mechanized).
* :mod:`repro.analysis.diagnostics` — the unified :class:`Finding`
  type, the diagnostic-code registry, and text/JSON/SARIF renderers.
* :mod:`repro.analysis.runner` — :func:`run_analyses`, the driver that
  runs everything and reports merged findings with per-unit timings.
* :mod:`repro.analysis.annotations` — computes which virtual methods an
  offload block *would need* in its ``domain(...)`` annotation, the
  quantity whose explosion drove the Section 4.1 restructuring.
* :mod:`repro.analysis.static_races` — the seed per-block DMA race
  analysis, kept as the baseline the CFG-based checker is differentially
  tested against.
* :mod:`repro.analysis.metrics` — source-effort metrics (lines of code,
  source deltas) used to reproduce the paper's "~200 additional lines"
  style of claim.
"""

from repro.analysis.annotations import (
    AnnotationReport,
    annotation_requirements,
    report_for_program,
)
from repro.analysis.cost import (
    OffloadCost,
    estimate_program,
    static_profile,
)
from repro.analysis.diagnostics import CODES, Finding, RelatedLocation
from repro.analysis.intervals import (
    AbsInt,
    Congruence,
    Interval,
    TripCount,
    analyze_function,
    loop_trips,
)
from repro.analysis.metrics import count_loc, source_delta
from repro.analysis.runner import AnalysisResult, run_analyses
from repro.analysis.static_races import StaticRaceFinding, find_static_races

__all__ = [
    "AbsInt",
    "AnalysisResult",
    "AnnotationReport",
    "CODES",
    "Congruence",
    "Finding",
    "Interval",
    "OffloadCost",
    "RelatedLocation",
    "StaticRaceFinding",
    "TripCount",
    "analyze_function",
    "annotation_requirements",
    "count_loc",
    "estimate_program",
    "find_static_races",
    "loop_trips",
    "report_for_program",
    "run_analyses",
    "source_delta",
    "static_profile",
]

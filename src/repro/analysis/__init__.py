"""Developer-facing analyses.

* :mod:`repro.analysis.dataflow` — CFG construction over the IR and the
  generic worklist fixpoint engine the whole-program analyses build on.
* :mod:`repro.analysis.dmacheck` — flow-sensitive, interprocedural DMA
  discipline checking (races, leaks, orphan waits).
* :mod:`repro.analysis.footprint` — local-store footprint estimation
  per offload block against the target's scratch-pad capacity.
* :mod:`repro.analysis.traffic` — outer-traffic analysis flagging
  uncached hot outer loops (the §5 guidance, mechanized).
* :mod:`repro.analysis.diagnostics` — the unified :class:`Finding`
  type, the diagnostic-code registry, and text/JSON/SARIF renderers.
* :mod:`repro.analysis.runner` — :func:`run_analyses`, the driver that
  runs everything and reports merged findings with per-unit timings.
* :mod:`repro.analysis.annotations` — computes which virtual methods an
  offload block *would need* in its ``domain(...)`` annotation, the
  quantity whose explosion drove the Section 4.1 restructuring.
* :mod:`repro.analysis.static_races` — the seed per-block DMA race
  analysis, kept as the baseline the CFG-based checker is differentially
  tested against.
* :mod:`repro.analysis.metrics` — source-effort metrics (lines of code,
  source deltas) used to reproduce the paper's "~200 additional lines"
  style of claim.
"""

from repro.analysis.annotations import (
    AnnotationReport,
    annotation_requirements,
    report_for_program,
)
from repro.analysis.diagnostics import CODES, Finding
from repro.analysis.metrics import count_loc, source_delta
from repro.analysis.runner import AnalysisResult, run_analyses
from repro.analysis.static_races import StaticRaceFinding, find_static_races

__all__ = [
    "AnalysisResult",
    "AnnotationReport",
    "CODES",
    "Finding",
    "StaticRaceFinding",
    "annotation_requirements",
    "count_loc",
    "find_static_races",
    "report_for_program",
    "run_analyses",
    "source_delta",
]

"""Developer-facing analyses.

* :mod:`repro.analysis.annotations` — computes which virtual methods an
  offload block *would need* in its ``domain(...)`` annotation, the
  quantity whose explosion drove the Section 4.1 restructuring.
* :mod:`repro.analysis.static_races` — a static DMA race analysis over
  the IR (the Scratch/TACAS-2010 idea, simplified to per-block abstract
  interpretation of transfer intervals).
* :mod:`repro.analysis.metrics` — source-effort metrics (lines of code,
  source deltas) used to reproduce the paper's "~200 additional lines"
  style of claim.
"""

from repro.analysis.annotations import (
    AnnotationReport,
    annotation_requirements,
    report_for_program,
)
from repro.analysis.metrics import count_loc, source_delta
from repro.analysis.static_races import StaticRaceFinding, find_static_races

__all__ = [
    "AnnotationReport",
    "StaticRaceFinding",
    "annotation_requirements",
    "count_loc",
    "find_static_races",
    "report_for_program",
    "source_delta",
]

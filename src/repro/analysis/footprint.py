"""Local-store footprint estimation per offload block.

A scratch-pad machine gives each offload a fixed, small budget
(``MachineConfig.local_store_size``) that must hold every frame of the
deepest call chain *plus* the runtime's own reservations: the DMA bounce
buffer at the top of the store and, for cached offloads, the software
cache's line storage just below it.  Blowing the budget is a *runtime*
error today (:class:`repro.errors.LocalStoreOverflow`); this analysis
moves the check to compile time — the §3 capacity-planning argument.

The estimate walks the duplicated accelerator call graph from each
offload entry: direct :class:`Call` edges plus, for
:class:`DomainCall` sites, every compiled duplicate in the offload's
domain table (dispatch may pick any of them).  Frame sizes are rounded
up to the :class:`repro.vm.context.FrameStack` alignment, so the figure
is an upper bound on what the allocator can actually use.

Cycles in the call graph make the depth statically unbounded; those get
``W-local-recursion`` and the cycle is charged once (the minimum any
execution pays).

Codes: ``E-local-overflow`` when the estimate exceeds capacity,
``W-local-pressure`` above :data:`PRESSURE_RATIO` of capacity,
``W-local-recursion`` for call cycles reachable from an offload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import Finding
from repro.ir.instructions import Call, DomainCall
from repro.ir.module import IRProgram, OffloadMeta
from repro.machine.config import MachineConfig
from repro.vm.context import CACHE_LINE_SIZE, CACHE_NUM_LINES, SCRATCH_BYTES

#: Warn when the estimated footprint exceeds this share of capacity.
PRESSURE_RATIO = 0.85

#: Frame alignment used by the runtime allocator (FrameStack.push).
_FRAME_ALIGN = 16


@dataclass(frozen=True)
class FootprintEstimate:
    """The per-offload result, independent of any machine config."""

    offload_id: int
    entry: str
    #: Worst-case bytes of stacked frames along the deepest call chain.
    frame_bytes: int
    #: Function names along that deepest chain, entry first.
    deepest_chain: tuple[str, ...]
    #: Runtime reservations (bounce buffer + software-cache lines).
    reserved_bytes: int
    #: Functions participating in a reachable call cycle ("" when none).
    recursive: tuple[str, ...] = ()

    @property
    def total_bytes(self) -> int:
        return self.frame_bytes + self.reserved_bytes


def _aligned_frame(size: int) -> int:
    return (size + _FRAME_ALIGN - 1) // _FRAME_ALIGN * _FRAME_ALIGN


def call_targets(program: IRProgram, meta: OffloadMeta, name: str) -> set[str]:
    """Accel functions one call edge away from ``name``.

    :class:`DomainCall` sites conservatively fan out to every compiled
    duplicate in the offload's domain table — dispatch may select any of
    them at run time.
    """
    function = program.functions.get(name)
    if function is None:
        return set()
    out: set[str] = set()
    for instr in function.code:
        if isinstance(instr, Call) and instr.callee in program.functions:
            if program.functions[instr.callee].space == "accel":
                out.add(instr.callee)
        elif isinstance(instr, DomainCall):
            for row in meta.domain.inner:
                for entry in row:
                    if (
                        isinstance(entry.target, str)
                        and entry.target in program.functions
                    ):
                        out.add(entry.target)
    return out


def reachable_functions(program: IRProgram, meta: OffloadMeta) -> set[str]:
    """All accel functions an offload block can reach, entry included."""
    seen: set[str] = set()
    frontier = [meta.entry]
    while frontier:
        name = frontier.pop()
        if name in seen or name not in program.functions:
            continue
        seen.add(name)
        frontier.extend(call_targets(program, meta, name))
    return seen


def estimate_offload(
    program: IRProgram, meta: OffloadMeta
) -> FootprintEstimate:
    """Worst-case footprint of one offload block's call graph."""
    reserved = SCRATCH_BYTES
    if meta.cache_kind is not None:
        reserved += CACHE_LINE_SIZE * CACHE_NUM_LINES

    # Depth-first longest path; nodes on the current stack form cycles.
    best: dict[str, tuple[int, tuple[str, ...]]] = {}
    on_stack: list[str] = []
    recursive: set[str] = set()

    def depth_of(name: str) -> tuple[int, tuple[str, ...]]:
        if name in best:
            return best[name]
        if name in on_stack:
            # Back edge: charge the cycle once, flag every member.
            recursive.update(on_stack[on_stack.index(name):])
            return (0, ())
        function = program.functions.get(name)
        own = _aligned_frame(function.frame_size) if function else 0
        on_stack.append(name)
        deepest = (0, ())
        for callee in sorted(call_targets(program, meta, name)):
            sub = depth_of(callee)
            if sub[0] > deepest[0]:
                deepest = sub
        on_stack.pop()
        result = (own + deepest[0], (name,) + deepest[1])
        # Don't memoise results computed while inside a cycle: they are
        # truncated views and would poison later queries.
        if name not in recursive:
            best[name] = result
        return result

    frame_bytes, chain = depth_of(meta.entry)
    return FootprintEstimate(
        offload_id=meta.offload_id,
        entry=meta.entry,
        frame_bytes=frame_bytes,
        deepest_chain=chain,
        reserved_bytes=reserved,
        recursive=tuple(sorted(recursive)),
    )


def check_offload(
    program: IRProgram,
    meta: OffloadMeta,
    config: MachineConfig,
    *,
    file: str = "<input>",
) -> list[Finding]:
    """Footprint findings for one offload block under ``config``."""
    capacity = config.local_store_size
    if capacity <= 0 or config.shared_memory:
        return []
    offload_id = meta.offload_id
    est = estimate_offload(program, meta)
    chain = " -> ".join(est.deepest_chain) or meta.entry
    breakdown = (
        f"{est.frame_bytes} bytes of frames along {chain}, plus "
        f"{est.reserved_bytes} bytes reserved by the runtime "
        f"(bounce buffer"
        + (" + software cache)" if meta.cache_kind else ")")
    )
    findings: list[Finding] = []
    if est.recursive:
        findings.append(
            Finding(
                code="W-local-recursion",
                message=(
                    f"offload #{offload_id} can reach a recursive "
                    f"call cycle ({', '.join(est.recursive)}); its "
                    f"frame depth is statically unbounded and the "
                    f"footprint estimate only charges the cycle once"
                ),
                file=file,
                function=meta.entry,
                analysis="local-footprint",
            )
        )
    if est.total_bytes > capacity:
        findings.append(
            Finding(
                code="E-local-overflow",
                message=(
                    f"offload #{offload_id} needs an estimated "
                    f"{est.total_bytes} bytes of local store but "
                    f"{config.name} provides {capacity}"
                ),
                file=file,
                function=meta.entry,
                notes=(breakdown,),
                analysis="local-footprint",
            )
        )
    elif est.total_bytes > capacity * PRESSURE_RATIO:
        findings.append(
            Finding(
                code="W-local-pressure",
                message=(
                    f"offload #{offload_id} uses an estimated "
                    f"{est.total_bytes} of {capacity} local-store "
                    f"bytes on {config.name} "
                    f"({est.total_bytes * 100 // capacity}%)"
                ),
                file=file,
                function=meta.entry,
                notes=(breakdown,),
                analysis="local-footprint",
            )
        )
    return findings


def check_program(
    program: IRProgram,
    config: MachineConfig,
    *,
    file: str = "<input>",
) -> list[Finding]:
    """Footprint findings for every offload block under ``config``.

    Shared-memory machines (``local_store_size == 0``) have no scratch
    pad to overflow, so the analysis is a no-op there.
    """
    findings: list[Finding] = []
    for offload_id in sorted(program.offload_meta):
        findings.extend(
            check_offload(
                program, program.offload_meta[offload_id], config, file=file
            )
        )
    return findings

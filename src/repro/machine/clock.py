"""Per-core logical clocks.

The simulator is deterministic: each core advances its own cycle counter
as it executes, and parallelism is modelled by *timestamp combination* —
when a host joins an offload thread, the host clock becomes the maximum
of its own time and the accelerator's finish time.  This reproduces the
overlap behaviour the paper's Figure 2 relies on (host collision
detection running concurrently with offloaded strategy calculation)
without any real threads.
"""

from __future__ import annotations


class CoreClock:
    """A monotonically advancing cycle counter for one core."""

    def __init__(self, start: int = 0):
        if start < 0:
            raise ValueError("clock cannot start in the past")
        self._now = start

    @property
    def now(self) -> int:
        """Current simulated time, in cycles."""
        return self._now

    def advance(self, cycles: int) -> int:
        """Consume ``cycles`` of execution time; returns the new time."""
        if cycles < 0:
            raise ValueError(f"cannot advance by negative cycles: {cycles}")
        self._now += cycles
        return self._now

    def sync_to(self, time: int) -> int:
        """Wait until ``time`` if it is in the future; returns the new time.

        Used for joins and DMA fences: waiting for an event that already
        completed costs nothing extra.
        """
        if time > self._now:
            self._now = time
        return self._now

    def reset(self, time: int = 0) -> None:
        """Rewind the clock (only used when resetting a whole machine)."""
        if time < 0:
            raise ValueError("clock cannot be reset to a negative time")
        self._now = time

    def __repr__(self) -> str:
        return f"CoreClock(now={self._now})"

"""The assembled simulated machine."""

from __future__ import annotations

from repro.errors import MachineError
from repro.machine.config import MachineConfig
from repro.machine.cores import AcceleratorCore, HostCore
from repro.machine.interconnect import Interconnect
from repro.machine.memory import BumpAllocator, MemorySpace
from repro.machine.perf import PerfCounters
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import NULL_RECORDER


class Machine:
    """One simulated system: main memory, a host core, accelerator cores.

    All components share a single :class:`PerfCounters` sink so that
    benchmarks can read machine-wide statistics with one call.

    Example::

        machine = Machine(CELL_LIKE)
        acc = machine.accelerator(0)
        t = acc.dma.get(tag=1, local_addr=0, outer_addr=0x1000,
                        size=128, now=acc.clock.now)
        acc.clock.sync_to(acc.dma.wait(1, t))
    """

    def __init__(self, config: MachineConfig):
        self.config = config
        self.perf = PerfCounters()
        granularity = config.word_size if config.word_addressed else 1
        self.main_memory = MemorySpace("main", config.main_memory_size, granularity)
        self.host = HostCore(self.main_memory, config.cost, self.perf)
        self.interconnect = (
            Interconnect(config.cost.dma_bytes_per_cycle, self.perf)
            if config.shared_interconnect
            else None
        )
        self.accelerators = [
            AcceleratorCore(
                i, config, self.main_memory, self.perf, self.interconnect
            )
            for i in range(config.num_accelerators)
        ]
        # Reserve low main memory for globals; the rest is heap.
        self._heap = BumpAllocator(
            base=config.main_memory_size // 4, limit=config.main_memory_size
        )
        #: Event sink shared by every component; the null recorder until
        #: :meth:`attach_trace` installs a real one.
        self.trace = NULL_RECORDER
        #: Metrics sink shared by every component; the null hub until
        #: :meth:`attach_metrics` installs a real one.
        self.metrics = NULL_METRICS

    def attach_trace(self, recorder) -> None:
        """Install ``recorder`` as the machine-wide event sink.

        Propagates the recorder to every core and DMA engine so each
        instrumentation site keeps its pre-bound reference (one
        attribute check per event when disabled).  Must be called
        before building an execution engine for the machine; pass
        :data:`repro.obs.trace.NULL_RECORDER` to detach.
        """
        self.trace = recorder
        self.host.trace = recorder
        for acc in self.accelerators:
            acc.trace = recorder
            if acc.dma is not None:
                acc.dma.trace = recorder

    def attach_metrics(self, hub) -> None:
        """Install ``hub`` as the machine-wide metrics sink.

        Mirrors :meth:`attach_trace`: the hub is propagated to every
        core and DMA engine so each instrumentation site keeps its
        pre-bound reference (one attribute check per observation when
        disabled).  Must be called before building an execution engine
        for the machine; pass :data:`repro.obs.metrics.NULL_METRICS`
        to detach.
        """
        self.metrics = hub
        self.host.metrics = hub
        for acc in self.accelerators:
            acc.metrics = hub
            if acc.dma is not None:
                acc.dma.metrics = hub

    def accelerator(self, index: int) -> AcceleratorCore:
        """The ``index``-th accelerator core."""
        if not 0 <= index < len(self.accelerators):
            raise MachineError(
                f"accelerator index {index} out of range "
                f"0..{len(self.accelerators) - 1}"
            )
        return self.accelerators[index]

    @property
    def heap(self) -> BumpAllocator:
        """Allocator over the main-memory heap region."""
        return self._heap

    def reset(self) -> None:
        """Return the machine to its power-on state.

        Memory contents are preserved only in the sense of being zeroed;
        clocks, counters, DMA queues and the heap allocator all restart.
        """
        self.perf.reset()
        self.host.clock.reset()
        if self.interconnect is not None:
            self.interconnect.reset()
        self.main_memory.fill(0)
        for acc in self.accelerators:
            acc.clock.reset()
            if acc.local_store is not None:
                acc.local_store.fill(0)
            if acc.dma is not None:
                acc.dma.reset()
        self._heap.reset()

    def total_cycles(self) -> int:
        """The latest clock across all cores — wall-clock of the run."""
        latest = self.host.clock.now
        for acc in self.accelerators:
            latest = max(latest, acc.clock.now)
        return latest

    def __repr__(self) -> str:
        return (
            f"Machine(config={self.config.name!r}, "
            f"accelerators={len(self.accelerators)})"
        )

"""Tagged DMA engine.

Models the Cell-style memory flow controller the paper's Figure 1 code is
written against: non-blocking ``get``/``put`` transfers between an
accelerator's local store and main memory, grouped by a small integer
*tag*; ``wait(tag)`` blocks until every transfer issued under that tag has
completed.

Timing model: issuing a transfer costs ``dma_setup`` cycles on the issuing
core.  The transfer itself completes at::

    max(issue_time + dma_latency, channel_free) + ceil(size / bandwidth)

i.e. latencies of back-to-back transfers overlap but the data channel
serialises bandwidth — this is what makes the Figure 1 "two gets under one
tag" idiom faster than two blocking gets, and what double buffering
(Section 4.1/4.2) exploits.

Functionally, data moves at issue time; the engine records in-flight
requests so the dynamic race checker (``repro.runtime.racecheck``) and the
interpreter can detect unsynchronised access, the bug class targeted by
the static and dynamic tools the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import DmaError
from repro.machine.config import CostModel
from repro.machine.memory import MemorySpace
from repro.machine.perf import PerfCounters
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import EV_DMA_WAIT, EV_DMA_XFER, NULL_RECORDER

NUM_TAGS = 32

GET = "get"
PUT = "put"


@dataclass(frozen=True)
class DmaRequest:
    """One issued DMA transfer.

    Attributes:
        kind: ``"get"`` (main memory -> local store) or ``"put"``.
        tag: Tag group, 0..31.
        local_addr: Byte address in the local store.
        outer_addr: Byte address in main memory.
        size: Transfer length in bytes.
        issue_time: Cycle at which the issuing core posted the request.
        complete_time: Cycle at which the transfer finishes.
        serial: Issue order within the owning engine (1-based), used for
            deterministic reporting.  Per-engine rather than
            process-global, so serials are reproducible regardless of
            how many machines ran earlier in the same process.
    """

    kind: str
    tag: int
    local_addr: int
    outer_addr: int
    size: int
    issue_time: int
    complete_time: int
    serial: int

    def outer_range(self) -> tuple[int, int]:
        """Half-open byte range touched in main memory."""
        return (self.outer_addr, self.outer_addr + self.size)

    def local_range(self) -> tuple[int, int]:
        """Half-open byte range touched in the local store."""
        return (self.local_addr, self.local_addr + self.size)

    def describe(self) -> str:
        return (
            f"dma_{self.kind}(tag={self.tag}, local={self.local_addr:#x}, "
            f"outer={self.outer_addr:#x}, size={self.size}) "
            f"issued@{self.issue_time}"
        )


class DmaEngine:
    """The memory flow controller of one accelerator core.

    Args:
        local_store: The accelerator's scratch-pad memory.
        main_memory: The shared outer memory.
        cost: Cycle cost model.
        perf: Counter sink (shared machine-wide).
        name: Used in diagnostics, e.g. ``"dma0"``.
        observer: Optional callback invoked with each issued
            :class:`DmaRequest` *and* the list of requests still in flight
            at issue time — the dynamic race checker plugs in here.
        interconnect: Optional machine-wide shared channel; when set,
            bandwidth is serialised across *all* engines instead of per
            engine (see :mod:`repro.machine.interconnect`).
    """

    def __init__(
        self,
        local_store: MemorySpace,
        main_memory: MemorySpace,
        cost: CostModel,
        perf: PerfCounters,
        name: str = "dma",
        observer: Optional[Callable[[DmaRequest, list[DmaRequest]], None]] = None,
        interconnect: object = None,
    ):
        self.local_store = local_store
        self.main_memory = main_memory
        self.cost = cost
        self.perf = perf
        self.name = name
        self.observer = observer
        self.interconnect = interconnect
        #: Event sink; installed by ``Machine.attach_trace``.
        self.trace = NULL_RECORDER
        #: Metrics sink; installed by ``Machine.attach_metrics``.
        self.metrics = NULL_METRICS
        self._in_flight: list[DmaRequest] = []
        self._channel_free = 0
        self._next_serial = 0

    # ------------------------------------------------------------ issuing

    def _validate(self, tag: int, local_addr: int, outer_addr: int, size: int) -> None:
        if not 0 <= tag < NUM_TAGS:
            raise DmaError(f"{self.name}: tag {tag} out of range 0..{NUM_TAGS - 1}")
        if size <= 0:
            raise DmaError(f"{self.name}: transfer size must be positive, got {size}")
        if local_addr < 0 or local_addr + size > self.local_store.size:
            raise DmaError(
                f"{self.name}: local range [{local_addr:#x}, "
                f"{local_addr + size:#x}) outside local store"
            )
        if outer_addr < 0 or outer_addr + size > self.main_memory.size:
            raise DmaError(
                f"{self.name}: outer range [{outer_addr:#x}, "
                f"{outer_addr + size:#x}) outside main memory"
            )

    def _schedule(self, issue_time: int, size: int) -> int:
        earliest = issue_time + self.cost.dma_latency
        if self.interconnect is not None:
            return self.interconnect.reserve(earliest, size)  # type: ignore[attr-defined]
        start = max(earliest, self._channel_free)
        duration = -(-size // self.cost.dma_bytes_per_cycle)  # ceil division
        complete = start + duration
        self._channel_free = complete
        return complete

    def _issue(
        self, kind: str, tag: int, local_addr: int, outer_addr: int, size: int, now: int
    ) -> DmaRequest:
        self._validate(tag, local_addr, outer_addr, size)
        complete = self._schedule(now, size)
        self._next_serial += 1
        request = DmaRequest(
            kind=kind,
            tag=tag,
            local_addr=local_addr,
            outer_addr=outer_addr,
            size=size,
            issue_time=now,
            complete_time=complete,
            serial=self._next_serial,
        )
        if self.observer is not None:
            self.observer(request, list(self._in_flight))
        trace = self.trace
        if trace.enabled:
            trace.emit(
                now,
                self.name,
                EV_DMA_XFER,
                (kind, tag, local_addr, outer_addr, size, complete,
                 request.serial),
            )
        metrics = self.metrics
        if metrics.enabled:
            metrics.observe("dma.xfer_bytes", self.name, size)
        self._in_flight.append(request)
        if kind == GET:
            data = self.main_memory.read_unchecked(outer_addr, size)
            self.local_store.write_unchecked(local_addr, data)
            self.perf.add("dma.gets")
            self.perf.add("dma.bytes_get", size)
        else:
            data = self.local_store.read_unchecked(local_addr, size)
            self.main_memory.write_unchecked(outer_addr, data)
            self.perf.add("dma.puts")
            self.perf.add("dma.bytes_put", size)
        return request

    def get(
        self, tag: int, local_addr: int, outer_addr: int, size: int, now: int
    ) -> int:
        """Issue a non-blocking main-memory -> local-store transfer.

        Returns the time at which the issuing core may continue (i.e.
        ``now`` plus the setup cost); completion is tracked per tag.
        """
        self._issue(GET, tag, local_addr, outer_addr, size, now)
        return now + self.cost.dma_setup

    def put(
        self, tag: int, local_addr: int, outer_addr: int, size: int, now: int
    ) -> int:
        """Issue a non-blocking local-store -> main-memory transfer."""
        self._issue(PUT, tag, local_addr, outer_addr, size, now)
        return now + self.cost.dma_setup

    # ------------------------------------------------------------ waiting

    def wait(self, tag: int, now: int) -> int:
        """Block until every transfer issued under ``tag`` has completed.

        Returns the time at which execution may resume.
        """
        if not 0 <= tag < NUM_TAGS:
            raise DmaError(f"{self.name}: tag {tag} out of range 0..{NUM_TAGS - 1}")
        done_time = now
        remaining: list[DmaRequest] = []
        for request in self._in_flight:
            if request.tag == tag:
                done_time = max(done_time, request.complete_time)
            else:
                remaining.append(request)
        self._in_flight = remaining
        self.perf.add("dma.waits")
        trace = self.trace
        if trace.enabled:
            trace.emit(now, self.name, EV_DMA_WAIT, (tag, done_time))
        metrics = self.metrics
        if metrics.enabled:
            metrics.observe("dma.wait_cycles", self.name, done_time - now)
        return done_time

    def wait_all(self, now: int) -> int:
        """Block until every outstanding transfer has completed."""
        done_time = now
        for request in self._in_flight:
            done_time = max(done_time, request.complete_time)
        self._in_flight = []
        self.perf.add("dma.waits")
        trace = self.trace
        if trace.enabled:
            trace.emit(now, self.name, EV_DMA_WAIT, (-1, done_time))
        metrics = self.metrics
        if metrics.enabled:
            metrics.observe("dma.wait_cycles", self.name, done_time - now)
        return done_time

    # ---------------------------------------------------------- inspection

    @property
    def in_flight(self) -> list[DmaRequest]:
        """Transfers issued but not yet waited for (copy)."""
        return list(self._in_flight)

    def pending_local_conflict(self, address: int, size: int) -> Optional[DmaRequest]:
        """Return an in-flight *get* whose local range overlaps the access.

        The interpreter consults this on local loads so that reading a DMA
        target buffer before ``dma_wait`` is reported — the classic bug the
        cited race-analysis tools detect.
        """
        lo, hi = address, address + size
        for request in self._in_flight:
            if request.kind != GET:
                continue
            r_lo, r_hi = request.local_range()
            if lo < r_hi and r_lo < hi:
                return request
        return None

    def reset(self) -> None:
        """Drop all in-flight state (used when resetting the machine)."""
        self._in_flight = []
        self._channel_free = 0
        self._next_serial = 0

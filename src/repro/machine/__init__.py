"""Simulated heterogeneous machine substrate.

This package stands in for the hardware the paper targets (the Cell BE in
the PlayStation 3, shared-memory consoles, and word-addressed DSP-style
units).  It provides byte- and word-addressed memory spaces, per-core
cycle clocks, a tagged DMA engine with a bandwidth/latency cost model and
race-detection hooks, and pre-built machine configurations.

The simulation is *deterministic*: cores carry logical clocks, parallel
execution is modelled by running threads to completion and combining
clocks with max() at synchronisation points.  All performance experiments
in ``benchmarks/`` measure these simulated cycles, so results are exactly
reproducible.
"""

from repro.machine.config import (
    APU_UNIFIED,
    CELL_LIKE,
    DSP_WORD,
    MANYCORE_GRID,
    SMP_UNIFORM,
    TARGET_NAMES,
    CostModel,
    MachineConfig,
    default_target,
    register_target,
    resolve_target,
    target_names,
    validate_target,
)
from repro.machine.clock import CoreClock
from repro.machine.dma import DmaEngine, DmaRequest
from repro.machine.memory import MemorySpace
from repro.machine.cores import AcceleratorCore, Core, HostCore
from repro.machine.machine import Machine
from repro.machine.perf import PerfCounters

__all__ = [
    "APU_UNIFIED",
    "AcceleratorCore",
    "CELL_LIKE",
    "Core",
    "CoreClock",
    "CostModel",
    "DSP_WORD",
    "DmaEngine",
    "DmaRequest",
    "HostCore",
    "MANYCORE_GRID",
    "Machine",
    "MachineConfig",
    "MemorySpace",
    "PerfCounters",
    "SMP_UNIFORM",
    "TARGET_NAMES",
    "default_target",
    "register_target",
    "resolve_target",
    "target_names",
    "validate_target",
]

"""Machine configurations and cycle cost models.

Three presets mirror the three architecture families the paper discusses:

* ``CELL_LIKE`` — a host core plus accelerator cores, each accelerator
  owning a private 256 KiB scratch-pad local store, with all traffic to
  main memory going through a tagged DMA engine (Cell BE / PlayStation 3).
* ``SMP_UNIFORM`` — a symmetric shared-memory multicore with a single flat
  address space (Xbox 360-style); offload blocks become ordinary threads
  and accessor classes degrade to direct access.
* ``DSP_WORD`` — a word-addressed unit (PlayStation 2 vector unit /
  TigerSHARC style) where addresses index 4-byte words and sub-word access
  requires explicit extract/insert sequences.

Costs are in simulated cycles.  They are chosen to preserve the *ratios*
the paper's narrative depends on (local access is cheap, an outer access
costs two orders of magnitude more, bulk DMA amortises setup cost), not to
model any specific silicon exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CostModel:
    """Per-operation cycle costs for the simulated machine.

    Attributes:
        alu: Simple register-to-register arithmetic/logic operation.
        branch: Taken or untaken branch.
        call: Direct call (frame setup included).
        ret: Function return.
        local_access: Load or store hitting an accelerator's local store.
        host_mem_access: Load or store issued by the *host* core against
            main memory (the host is assumed cached; this is an averaged
            cost).
        dma_setup: Fixed cost of issuing one DMA request (command queue
            occupancy on the issuing core).
        dma_latency: Latency from issue to first byte delivered.
        dma_bytes_per_cycle: Sustained DMA bandwidth.
        cache_probe: Software-cache lookup executed on the accelerator
            (hash + tag compare), charged on hit and miss alike.
        vtable_load: Loading a vtable slot (one dependent local access on
            top of the object header load).
        domain_probe: One comparison step while scanning the outer domain.
        inner_domain_probe: One (id, address) pair check in the inner
            domain.
        word_extract: Extracting/inserting a sub-word byte on a
            word-addressed machine (shift + mask).
        thread_spawn: Launching an offload thread on an accelerator.
        thread_join: Host-side cost of joining a finished offload thread.
    """

    alu: int = 1
    branch: int = 1
    call: int = 4
    ret: int = 2
    local_access: int = 2
    host_mem_access: int = 40
    dma_setup: int = 40
    dma_latency: int = 200
    dma_bytes_per_cycle: int = 8
    cache_probe: int = 10
    vtable_load: int = 2
    domain_probe: int = 2
    inner_domain_probe: int = 2
    word_extract: int = 2
    thread_spawn: int = 600
    thread_join: int = 100


@dataclass(frozen=True)
class MachineConfig:
    """Static description of one simulated machine.

    Attributes:
        name: Identifier used in reports.
        num_accelerators: Number of accelerator cores.
        local_store_size: Bytes of scratch-pad memory per accelerator
            (0 on shared-memory machines).
        main_memory_size: Bytes of main (host) memory.
        shared_memory: True when accelerators address main memory directly
            (SMP); offload blocks then need no data-movement code.
        shared_interconnect: True to serialise all DMA traffic through
            one machine-wide channel (EIB/SCC-style) instead of giving
            each accelerator a private channel.
        word_addressed: True when memory addresses index words rather than
            bytes (the Section 5 machines).
        word_size: Bytes per addressable word when ``word_addressed``.
        cost: The cycle cost model.
    """

    name: str
    num_accelerators: int = 6
    local_store_size: int = 256 * 1024
    main_memory_size: int = 16 * 1024 * 1024
    shared_memory: bool = False
    shared_interconnect: bool = False
    word_addressed: bool = False
    word_size: int = 4
    cost: CostModel = field(default_factory=CostModel)

    def with_(self, **overrides: object) -> "MachineConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


CELL_LIKE = MachineConfig(
    name="cell-like",
    num_accelerators=6,
    local_store_size=256 * 1024,
    shared_memory=False,
)

SMP_UNIFORM = MachineConfig(
    name="smp-uniform",
    num_accelerators=5,
    local_store_size=0,
    shared_memory=True,
    cost=CostModel(
        host_mem_access=40,
        dma_setup=0,
        dma_latency=0,
        dma_bytes_per_cycle=16,
        thread_spawn=400,
        thread_join=80,
    ),
)

DSP_WORD = MachineConfig(
    name="dsp-word",
    num_accelerators=2,
    local_store_size=64 * 1024,
    word_addressed=True,
    word_size=4,
    cost=CostModel(
        local_access=1,
        word_extract=2,
        # Word-addressed units (PS2 VU, TigerSHARC) couple the cores to
        # fast single-cycle-class SRAM; the cost of sub-word access is
        # the extract/insert ALU work, not memory latency.
        host_mem_access=4,
    ),
)

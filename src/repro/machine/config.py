"""Machine configurations, cycle cost models, and the target registry.

Five presets mirror the architecture families the paper discusses plus
the two contrasting designs ROADMAP item 5 calls for:

* ``CELL_LIKE`` — a host core plus accelerator cores, each accelerator
  owning a private 256 KiB scratch-pad local store, with all traffic to
  main memory going through a tagged DMA engine (Cell BE / PlayStation 3).
* ``SMP_UNIFORM`` — a symmetric shared-memory multicore with a single flat
  address space (Xbox 360-style); offload blocks become ordinary threads
  and accessor classes degrade to direct access.
* ``DSP_WORD`` — a word-addressed unit (PlayStation 2 vector unit /
  TigerSHARC style) where addresses index 4-byte words and sub-word access
  requires explicit extract/insert sequences.
* ``APU_UNIFIED`` — a unified-memory APU (MI300A-style): one coherent
  memory behind a shared last-level cache, so outer access is cheap,
  offload means "run on more cores", accessor strategies collapse to
  direct access (the paper's Section 4.2 fallback) and what used to be
  DMA degenerates to a bulk-memcpy cost.
* ``MANYCORE_GRID`` — 24 small accelerators with 64 KiB local stores on
  a shared grid interconnect; the design point where the scheduler's
  placement, queue backpressure and cold code-upload accounting all
  measurably bind.

Costs are in simulated cycles.  They are chosen to preserve the *ratios*
the paper's narrative depends on (local access is cheap, an outer access
costs two orders of magnitude more, bulk DMA amortises setup cost), not to
model any specific silicon exactly.

The **target registry** makes "which machine am I simulating" a
first-class concept: :func:`resolve_target` maps a short name
(``"cell"``), a config display name (``"cell-like"``, as recorded in
program artifacts) or a :class:`MachineConfig` to the config object;
:func:`validate_target` rejects unknown names at option-parse time with
the list of known names (mirroring ``repro.vm.interpreter.validate_engine``);
:func:`register_target` adds project-specific machines that every CLI
tool and test harness then accepts.  ``REPRO_TARGET`` overrides the
default target for a whole process the way ``REPRO_VM_ENGINE`` does for
engines.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CostModel:
    """Per-operation cycle costs for the simulated machine.

    Attributes:
        alu: Simple register-to-register arithmetic/logic operation.
        branch: Taken or untaken branch.
        call: Direct call (frame setup included).
        ret: Function return.
        local_access: Load or store hitting an accelerator's local store.
        host_mem_access: Load or store issued by the *host* core against
            main memory (the host is assumed cached; this is an averaged
            cost).
        dma_setup: Fixed cost of issuing one DMA request (command queue
            occupancy on the issuing core).
        dma_latency: Latency from issue to first byte delivered.
        dma_bytes_per_cycle: Sustained DMA bandwidth.
        cache_probe: Software-cache lookup executed on the accelerator
            (hash + tag compare), charged on hit and miss alike.
        vtable_load: Loading a vtable slot (one dependent local access on
            top of the object header load).
        domain_probe: One comparison step while scanning the outer domain.
        inner_domain_probe: One (id, address) pair check in the inner
            domain.
        word_extract: Extracting/inserting a sub-word byte on a
            word-addressed machine (shift + mask).
        thread_spawn: Launching an offload thread on an accelerator.
        thread_join: Host-side cost of joining a finished offload thread.
    """

    alu: int = 1
    branch: int = 1
    call: int = 4
    ret: int = 2
    local_access: int = 2
    host_mem_access: int = 40
    dma_setup: int = 40
    dma_latency: int = 200
    dma_bytes_per_cycle: int = 8
    cache_probe: int = 10
    vtable_load: int = 2
    domain_probe: int = 2
    inner_domain_probe: int = 2
    word_extract: int = 2
    thread_spawn: int = 600
    thread_join: int = 100


@dataclass(frozen=True)
class MachineConfig:
    """Static description of one simulated machine.

    Attributes:
        name: Identifier used in reports and program artifacts
            (``IRProgram.target_name``).
        num_accelerators: Number of accelerator cores.
        local_store_size: Bytes of scratch-pad memory per accelerator
            (0 on shared-memory machines).
        main_memory_size: Bytes of main (host) memory.
        shared_memory: True when accelerators address main memory directly
            (SMP); offload blocks then need no data-movement code.
        shared_interconnect: True to serialise all DMA traffic through
            one machine-wide channel (EIB/SCC-style) instead of giving
            each accelerator a private channel.
        word_addressed: True when memory addresses index words rather than
            bytes (the Section 5 machines).
        word_size: Bytes per addressable word when ``word_addressed``.
        dma_align: Alignment (bytes) the DMA engine wants on transfer
            addresses.  Real engines degrade (or fault) on unaligned
            transfers; the static bounds checker (`repro.analysis.bounds`)
            warns when a transfer address is *provably* misaligned for
            this grain.  The default matches the layout engine's word
            grain (4) — every compiler-placed scalar and struct member
            is word-aligned, so only genuinely byte-offset transfers
            warn.  Irrelevant on shared-memory machines.
        code_bytes_per_instr: Simulated bytes per IR instruction in an
            uploaded code image — sizes both the scheduler's cold
            code-upload model and on-demand code loading.  Machines with
            compact encodings keep the default 4; the many-core grid
            ships uncompressed images (8) so uploads genuinely hurt.
        sched_queue_depth: Default per-accelerator ready-queue bound when
            explicit scheduling is on and ``SchedOptions.queue_depth`` is
            left unset (None).  0 means unbounded; small cores with tiny
            job slots (the many-core grid) bound it so host backpressure
            actually engages.
        cost: The cycle cost model.
    """

    name: str
    num_accelerators: int = 6
    local_store_size: int = 256 * 1024
    main_memory_size: int = 16 * 1024 * 1024
    shared_memory: bool = False
    shared_interconnect: bool = False
    word_addressed: bool = False
    word_size: int = 4
    dma_align: int = 4
    code_bytes_per_instr: int = 4
    sched_queue_depth: int = 0
    cost: CostModel = field(default_factory=CostModel)

    def with_(self, **overrides: object) -> "MachineConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


CELL_LIKE = MachineConfig(
    name="cell-like",
    num_accelerators=6,
    local_store_size=256 * 1024,
    shared_memory=False,
)

SMP_UNIFORM = MachineConfig(
    name="smp-uniform",
    num_accelerators=5,
    local_store_size=0,
    shared_memory=True,
    cost=CostModel(
        host_mem_access=40,
        dma_setup=0,
        dma_latency=0,
        dma_bytes_per_cycle=16,
        thread_spawn=400,
        thread_join=80,
    ),
)

DSP_WORD = MachineConfig(
    name="dsp-word",
    num_accelerators=2,
    local_store_size=64 * 1024,
    word_addressed=True,
    word_size=4,
    cost=CostModel(
        local_access=1,
        word_extract=2,
        # Word-addressed units (PS2 VU, TigerSHARC) couple the cores to
        # fast single-cycle-class SRAM; the cost of sub-word access is
        # the extract/insert ALU work, not memory latency.
        host_mem_access=4,
    ),
)

APU_UNIFIED = MachineConfig(
    name="apu-unified",
    num_accelerators=8,
    local_store_size=0,
    shared_memory=True,
    cost=CostModel(
        # One coherent memory behind a shared LLC: the outer/local cost
        # cliff the Cell techniques exist to bridge is simply gone.
        host_mem_access=6,
        # "DMA" on a unified machine is a memcpy: negligible issue cost,
        # no wire latency, wide on-package bandwidth.  Bulk copies
        # (Copy / struct assignment) charge per touched line at the
        # cheap host_mem_access rate, so staging degenerates to the cost
        # of the copy itself.
        dma_setup=2,
        dma_latency=0,
        dma_bytes_per_cycle=32,
        # Launching work is queueing a kernel on another core of the
        # same chip, not booting a remote ISA.
        thread_spawn=200,
        thread_join=40,
    ),
)

MANYCORE_GRID = MachineConfig(
    name="manycore-grid",
    num_accelerators=24,
    local_store_size=64 * 1024,
    shared_interconnect=True,
    # Uncompressed code images + the narrow shared grid below make a
    # cold upload cost real money, so placement locality pays; tiny
    # per-core job slots bound the ready queue at 2, so a launch burst
    # exercises host backpressure by default.
    code_bytes_per_instr=8,
    sched_queue_depth=2,
    cost=CostModel(
        local_access=1,
        # Many small cores far from memory: each hop across the grid is
        # expensive and the per-core slice of bandwidth is narrow.
        host_mem_access=60,
        dma_setup=60,
        dma_latency=300,
        dma_bytes_per_cycle=4,
        # Small in-order cores start work quickly once it is placed.
        thread_spawn=150,
        thread_join=30,
    ),
)


#: Environment variable naming the process-wide default target.
TARGET_ENV_VAR = "REPRO_TARGET"

#: Short name -> config for every registered target, in registration
#: order.  Extend via :func:`register_target`, read via
#: :func:`target_names` / :func:`resolve_target`.
_REGISTRY: dict[str, MachineConfig] = {}

#: Alias (a config's display ``name``, as recorded in artifacts) ->
#: short registry name.
_ALIASES: dict[str, str] = {}

#: Registered short target names, in registration order.  Reassigned by
#: :func:`register_target`; prefer :func:`target_names` from code that
#: imports early.
TARGET_NAMES: tuple[str, ...] = ()


def register_target(
    name: str, config: MachineConfig, *, replace: bool = False
) -> MachineConfig:
    """Register ``config`` under the short name ``name``.

    The config's display ``name`` (what program artifacts record as
    ``target_name``) is indexed as an alias, so artifacts resolve back
    to their target through the same registry.  Re-registering an
    existing name requires ``replace=True``.
    """
    global TARGET_NAMES
    if not replace and name in _REGISTRY:
        raise ValueError(
            f"target {name!r} is already registered; pass replace=True "
            f"to override it"
        )
    _REGISTRY[name] = config
    if config.name != name:
        _ALIASES[config.name] = name
    TARGET_NAMES = tuple(_REGISTRY)
    return config


def target_names() -> tuple[str, ...]:
    """Short names of every registered target, in registration order."""
    return TARGET_NAMES


def validate_target(name: str, source: str = "target") -> str:
    """Reject unknown target names with a list of the known ones.

    Shared by the CLI tools, :class:`repro.vm.interpreter.RunOptions`
    and the ``REPRO_TARGET`` environment override so a typo fails at
    option-parse time instead of deep inside the simulator (the
    ``validate_engine`` contract, applied to machines).
    """
    if name not in _REGISTRY and name not in _ALIASES:
        known = ", ".join(repr(n) for n in _REGISTRY)
        raise ValueError(
            f"unknown target {name!r} (from {source}); "
            f"known targets: {known}"
        )
    return name


def resolve_target(
    target: "str | MachineConfig", source: str = "target"
) -> MachineConfig:
    """The :class:`MachineConfig` for a target name (or config).

    Accepts a short registry name (``"cell"``), a config display name
    as recorded in program artifacts (``"cell-like"``), or an existing
    :class:`MachineConfig` (returned unchanged, registered or not).
    Unknown names raise ``ValueError`` listing the known targets.
    """
    if isinstance(target, MachineConfig):
        return target
    validate_target(target, source)
    return _REGISTRY[_ALIASES.get(target, target)]


def default_target() -> str:
    """The short name tools default to: ``REPRO_TARGET`` or ``"cell"``.

    Validated on every call so a typo in the environment fails with the
    known-name list the moment any tool builds its option parser.
    """
    name = os.environ.get(TARGET_ENV_VAR, "").strip() or "cell"
    return validate_target(name, source=TARGET_ENV_VAR)


register_target("cell", CELL_LIKE)
register_target("smp", SMP_UNIFORM)
register_target("dsp", DSP_WORD)
register_target("apu", APU_UNIFIED)
register_target("manycore", MANYCORE_GRID)

"""Simulated memory spaces.

A :class:`MemorySpace` is a named, bounded, byte-backed region with an
*access granularity*: byte-addressed spaces allow any aligned scalar
access, while word-addressed spaces (the Section 5 machines) only accept
whole-word loads and stores — sub-word traffic must be synthesised by the
compiler with extract/insert sequences, exactly the property the paper's
hybrid ``__word``/``__byte`` pointer scheme is designed around.

Addresses handled here are always *byte offsets* into the backing store;
word-addressed pointer values are scaled by the code generator before they
reach the memory system.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.errors import MemoryFault

#: Pre-built codecs for the scalar shapes the VM actually moves, keyed by
#: ``(size, signed, is_float)``.  Integer stores always go through the
#: unsigned codec of the right width (callers mask first), so two's
#: complement encodings round-trip without range errors.
_SCALAR_CODECS: dict[tuple[int, bool, bool], struct.Struct] = {
    (1, True, False): struct.Struct("<b"),
    (1, False, False): struct.Struct("<B"),
    (2, True, False): struct.Struct("<h"),
    (2, False, False): struct.Struct("<H"),
    (4, True, False): struct.Struct("<i"),
    (4, False, False): struct.Struct("<I"),
    (8, True, False): struct.Struct("<q"),
    (8, False, False): struct.Struct("<Q"),
    (4, True, True): struct.Struct("<f"),
    (4, False, True): struct.Struct("<f"),
    (8, True, True): struct.Struct("<d"),
    (8, False, True): struct.Struct("<d"),
}


def scalar_codec(size: int, signed: bool, is_float: bool) -> Optional[struct.Struct]:
    """The cached :class:`struct.Struct` for a scalar shape, or None.

    Returns None for widths with no native codec (callers fall back to
    ``int.from_bytes``/``int.to_bytes`` paths).
    """
    return _SCALAR_CODECS.get((size, signed, is_float))


class MemorySpace:
    """A bounded, byte-backed simulated memory.

    Attributes:
        name: Space identifier (``"main"``, ``"ls0"``, ...).
        size: Capacity in bytes.
        granularity: Smallest legal access, in bytes.  1 for
            byte-addressed memories; the word size for word-addressed
            memories.
    """

    def __init__(self, name: str, size: int, granularity: int = 1):
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        if granularity < 1:
            raise ValueError(f"granularity must be >= 1, got {granularity}")
        self.name = name
        self.size = size
        self.granularity = granularity
        self._data = bytearray(size)

    # ---------------------------------------------------------------- raw

    def check_bounds(self, address: int, nbytes: int) -> None:
        """Raise :class:`MemoryFault` unless the byte range is in bounds.

        Centralised so hot callers can test ``address < 0 or address +
        nbytes > self.size`` inline with plain integer arithmetic and
        only pay for diagnostic string formatting on the failure path.
        """
        if address < 0 or address + nbytes > self.size:
            raise MemoryFault(
                f"access of {nbytes} bytes out of bounds", self.name, address
            )

    def _check(self, address: int, nbytes: int) -> None:
        self.check_bounds(address, nbytes)
        if self.granularity > 1:
            if address % self.granularity or nbytes % self.granularity:
                raise MemoryFault(
                    f"sub-word access ({nbytes} bytes at misgranular address) "
                    f"on a word-addressed memory (granularity "
                    f"{self.granularity})",
                    self.name,
                    address,
                )

    def read(self, address: int, nbytes: int) -> bytes:
        """Read ``nbytes`` raw bytes starting at ``address``."""
        self._check(address, nbytes)
        return bytes(self._data[address : address + nbytes])

    def write(self, address: int, data: bytes) -> None:
        """Write raw bytes starting at ``address``."""
        self._check(address, len(data))
        self._data[address : address + len(data)] = data

    def read_unchecked(self, address: int, nbytes: int) -> bytes:
        """Read bypassing the granularity rule (bounds still enforced).

        Used only by machine-internal agents (the DMA engine moves
        arbitrary byte ranges regardless of CPU-visible addressing rules).
        """
        if address < 0 or address + nbytes > self.size:
            self.check_bounds(address, nbytes)
        return bytes(self._data[address : address + nbytes])

    def write_unchecked(self, address: int, data: bytes) -> None:
        """Write bypassing the granularity rule (bounds still enforced)."""
        if address < 0 or address + len(data) > self.size:
            self.check_bounds(address, len(data))
        self._data[address : address + len(data)] = data

    # ------------------------------------------------------------- scalars

    def load_uint(self, address: int, nbytes: int) -> int:
        """Load an unsigned little-endian integer of ``nbytes`` bytes."""
        return int.from_bytes(self.read(address, nbytes), "little")

    def load_int(self, address: int, nbytes: int) -> int:
        """Load a signed little-endian integer of ``nbytes`` bytes."""
        return int.from_bytes(self.read(address, nbytes), "little", signed=True)

    def store_uint(self, address: int, value: int, nbytes: int) -> None:
        """Store the low ``nbytes`` bytes of ``value`` (two's complement)."""
        mask = (1 << (8 * nbytes)) - 1
        self.write(address, (value & mask).to_bytes(nbytes, "little"))

    def load_f32(self, address: int) -> float:
        return struct.unpack("<f", self.read(address, 4))[0]

    def store_f32(self, address: int, value: float) -> None:
        self.write(address, struct.pack("<f", value))

    def load_f64(self, address: int) -> float:
        return struct.unpack("<d", self.read(address, 8))[0]

    def store_f64(self, address: int, value: float) -> None:
        self.write(address, struct.pack("<d", value))

    # ------------------------------------------------- scalar fast paths

    def load_scalar(self, address: int, size: int, signed: bool, is_float: bool):
        """Decode one scalar without materialising an intermediate bytes
        object (granularity bypassed; bounds enforced)."""
        if address < 0 or address + size > self.size:
            self.check_bounds(address, size)
        codec = _SCALAR_CODECS.get((size, signed, is_float))
        if codec is not None:
            return codec.unpack_from(self._data, address)[0]
        return int.from_bytes(
            self._data[address : address + size], "little", signed=signed
        )

    def store_scalar(
        self, address: int, value, size: int, is_float: bool
    ) -> None:
        """Encode one scalar in place (granularity bypassed; bounds
        enforced).  Integers are wrapped to ``size`` bytes, matching the
        VM's two's-complement store semantics."""
        if address < 0 or address + size > self.size:
            self.check_bounds(address, size)
        if is_float:
            codec = _SCALAR_CODECS[(size, False, True)]
            codec.pack_into(self._data, address, float(value))
            return
        mask = (1 << (8 * size)) - 1
        codec = _SCALAR_CODECS.get((size, False, False))
        if codec is not None:
            codec.pack_into(self._data, address, int(value) & mask)
            return
        self._data[address : address + size] = (int(value) & mask).to_bytes(
            size, "little"
        )

    # --------------------------------------------------------------- misc

    def fill(self, value: int = 0) -> None:
        """Set every byte of the space to ``value``."""
        if not 0 <= value <= 0xFF:
            raise ValueError(f"fill value must be a byte, got {value}")
        for i in range(self.size):
            self._data[i] = value

    def snapshot(self) -> bytes:
        """Return an immutable copy of the full contents."""
        return bytes(self._data)

    def __repr__(self) -> str:
        return (
            f"MemorySpace(name={self.name!r}, size={self.size}, "
            f"granularity={self.granularity})"
        )


class BumpAllocator:
    """A trivial linear allocator over a region of a memory space.

    The simulated programs use static layout for most data; this allocator
    covers the remaining cases (packing generated worlds into main memory,
    carving stack/heap regions out of a local store).
    """

    def __init__(self, base: int, limit: int, alignment: int = 16):
        if base < 0 or limit < base:
            raise ValueError(f"bad allocator range [{base}, {limit})")
        self.base = base
        self.limit = limit
        self.alignment = alignment
        self._next = base

    def allocate(self, nbytes: int, alignment: int | None = None) -> int:
        """Reserve ``nbytes`` and return the base address of the block."""
        align = alignment or self.alignment
        start = (self._next + align - 1) // align * align
        if start + nbytes > self.limit:
            raise MemoryFault(
                f"allocator exhausted ({nbytes} bytes requested, "
                f"{self.limit - start} available)",
                "<allocator>",
                start,
            )
        self._next = start + nbytes
        return start

    @property
    def used(self) -> int:
        """Bytes consumed so far, from the region base."""
        return self._next - self.base

    def reset(self) -> None:
        """Release everything allocated so far."""
        self._next = self.base

"""Performance counters.

Every layer of the simulator (memory, DMA, interpreter, software caches,
dispatch machinery) increments named counters here.  Benchmarks read them
to report the quantities the paper talks about: virtual calls per frame,
bytes moved between memory spaces, domain search steps, cache hit rates.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator


class PerfCounters:
    """A bag of named monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._counts[name] += amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counts[name]

    def reset(self) -> None:
        """Zero every counter."""
        self._counts.clear()

    def as_dict(self) -> dict[str, int]:
        """A plain-dict snapshot, sorted by counter name."""
        return dict(sorted(self._counts.items()))

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` as a float; 0.0 when undefined."""
        denom = self._counts[denominator]
        if denom == 0:
            return 0.0
        return self._counts[numerator] / denom

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"PerfCounters({inner})"

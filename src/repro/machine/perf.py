"""Performance counters.

Every layer of the simulator (memory, DMA, interpreter, software caches,
dispatch machinery) increments named counters here.  Benchmarks read them
to report the quantities the paper talks about: virtual calls per frame,
bytes moved between memory spaces, domain search steps, cache hit rates.

Two APIs share one set of totals:

* :meth:`PerfCounters.add` — the direct path; one dict update per call.
* :meth:`PerfCounters.slot` — the batched path for hot loops: a
  :class:`CounterSlot` is a named plain-int accumulator that callers
  bump with ``slot.count += 1`` (no method call, no hashing).  Slots are
  drained into the backing :class:`collections.Counter` lazily, on every
  read (:meth:`get`, :meth:`as_dict`, :meth:`snapshot`, :meth:`ratio`,
  iteration), so readers always observe exact totals regardless of which
  path produced them.

The counter bag holds its slots *weakly*: a slot whose owner dies (a
software cache torn down with its offload thread, an execution engine
discarded after a run) drains any pending count into the totals from
its finalizer and disappears from the registry on the next flush, so
long-lived machines do not accumulate — and forever re-flush — dead
accumulators.
"""

from __future__ import annotations

import weakref
from collections import Counter
from typing import Iterator, Optional


class CounterSlot:
    """A batched accumulator for one counter name.

    Hot paths increment :attr:`count` directly; the owning
    :class:`PerfCounters` folds the pending value into its totals at
    read/flush time — or, if the slot dies first, the finalizer folds
    the remainder so no increment is ever lost.
    """

    __slots__ = ("name", "count", "_owner", "__weakref__")

    def __init__(self, name: str, owner: "Optional[PerfCounters]" = None):
        self.name = name
        self.count = 0
        self._owner = owner

    def __del__(self) -> None:
        if self.count and self._owner is not None:
            self._owner._counts[self.name] += self.count
            self.count = 0

    def __repr__(self) -> str:
        return f"CounterSlot(name={self.name!r}, pending={self.count})"


class PerfCounters:
    """A bag of named monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()
        self._slots: list[weakref.ref[CounterSlot]] = []

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (must be >= 0)."""
        assert amount >= 0, f"counter increments must be >= 0, got {amount}"
        self._counts[name] += amount

    def slot(self, name: str) -> CounterSlot:
        """Return a batched accumulator feeding counter ``name``.

        Multiple slots may share a name; their pending counts sum.  The
        registry reference is weak: the caller owns the slot's lifetime,
        and a dead slot stops being flushed (its last pending count is
        folded in by the finalizer).
        """
        slot = CounterSlot(name, self)
        self._slots.append(weakref.ref(slot))
        return slot

    def live_slots(self) -> list[CounterSlot]:
        """The currently registered (live) slots, for inspection."""
        return [slot for ref in self._slots if (slot := ref()) is not None]

    def flush(self) -> None:
        """Fold every live slot's pending count into the totals.

        Registry entries whose slot has died are pruned here.
        """
        dead = False
        for ref in self._slots:
            slot = ref()
            if slot is None:
                dead = True
            elif slot.count:
                self._counts[slot.name] += slot.count
                slot.count = 0
        if dead:
            self._slots = [ref for ref in self._slots if ref() is not None]

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        self.flush()
        return self._counts[name]

    def reset(self) -> None:
        """Zero every counter, including pending slot counts."""
        live = []
        for ref in self._slots:
            slot = ref()
            if slot is not None:
                slot.count = 0
                live.append(ref)
        self._slots = live
        self._counts.clear()

    def as_dict(self) -> dict[str, int]:
        """A plain-dict snapshot, sorted by counter name."""
        self.flush()
        return dict(sorted(self._counts.items()))

    def snapshot(self) -> dict[str, int]:
        """A plain-dict snapshot in insertion order (cheapest full read)."""
        self.flush()
        return dict(self._counts)

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` as a float; 0.0 when undefined."""
        self.flush()
        denom = self._counts[denominator]
        if denom == 0:
            return 0.0
        return self._counts[numerator] / denom

    def __iter__(self) -> Iterator[tuple[str, int]]:
        self.flush()
        return iter(sorted(self._counts.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"PerfCounters({inner})"

"""Shared interconnect modelling.

By default every accelerator's DMA engine owns a private data channel
to main memory, so concurrent transfers from different cores do not
contend (an idealisation).  Real parts share an on-chip interconnect —
the Cell's Element Interconnect Bus, or the mesh of the 48-core SCC the
paper's Section 2 cites — so aggregate DMA bandwidth is bounded.

Setting ``MachineConfig(shared_interconnect=True)`` routes every DMA
engine's transfers through one :class:`Interconnect`: latencies still
overlap, but bytes are serialised machine-wide.  The E12 ablation
benchmark measures what that does to multi-accelerator scaling.
"""

from __future__ import annotations

from repro.machine.perf import PerfCounters


class Interconnect:
    """A single shared data channel with a bandwidth cap.

    ``reserve`` implements the same scheduling rule as a private DMA
    channel — a transfer begins when its latency has elapsed *and* the
    channel is free — but the channel-free time is global.
    """

    def __init__(self, bytes_per_cycle: int, perf: PerfCounters):
        if bytes_per_cycle <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {bytes_per_cycle}"
            )
        self.bytes_per_cycle = bytes_per_cycle
        self.perf = perf
        self._channel_free = 0

    def reserve(self, earliest_start: int, size: int) -> int:
        """Schedule a transfer of ``size`` bytes; returns completion time.

        ``earliest_start`` is when the data could first move (issue time
        plus latency).  Waiting for the shared channel beyond that point
        is recorded as contention.
        """
        start = max(earliest_start, self._channel_free)
        if start > earliest_start:
            self.perf.add("interconnect.contention_cycles", start - earliest_start)
        duration = -(-size // self.bytes_per_cycle)
        complete = start + duration
        self._channel_free = complete
        self.perf.add("interconnect.bytes", size)
        return complete

    def reset(self) -> None:
        self._channel_free = 0

"""Simulated cores.

A :class:`HostCore` plays the Cell PPE: it addresses main memory directly.
An :class:`AcceleratorCore` plays an SPE: it owns a private local store
and a tagged DMA engine, and (on non-shared-memory machines) can only
reach main memory through that engine.  On shared-memory configurations
accelerators address main memory directly, which is how the same compiled
program ports across architectures (the paper's portability claim).
"""

from __future__ import annotations

from typing import Optional

from repro.machine.clock import CoreClock
from repro.machine.config import CostModel, MachineConfig
from repro.machine.dma import DmaEngine
from repro.machine.memory import MemorySpace
from repro.machine.perf import PerfCounters
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import NULL_RECORDER


class Core:
    """Common state of any simulated core."""

    def __init__(self, name: str, cost: CostModel, perf: PerfCounters):
        self.name = name
        self.cost = cost
        self.perf = perf
        self.clock = CoreClock()
        #: Event sink (see :mod:`repro.obs`); the null recorder unless a
        #: tracer is attached via ``Machine.attach_trace``.
        self.trace = NULL_RECORDER
        #: Metrics sink; the null hub unless ``Machine.attach_metrics``
        #: installs a real one.
        self.metrics = NULL_METRICS

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, now={self.clock.now})"


class HostCore(Core):
    """The general-purpose host core with direct main-memory access."""

    def __init__(self, main_memory: MemorySpace, cost: CostModel, perf: PerfCounters):
        super().__init__("host", cost, perf)
        self.main_memory = main_memory


class AcceleratorCore(Core):
    """An accelerator core with (optionally) a private local store.

    Attributes:
        index: Position among the machine's accelerators.
        local_store: Scratch-pad memory, or None on shared-memory machines.
        dma: The core's memory flow controller, or None when there is no
            local store to transfer into.
        shared_memory: Whether this core addresses main memory directly.
    """

    def __init__(
        self,
        index: int,
        config: MachineConfig,
        main_memory: MemorySpace,
        perf: PerfCounters,
        interconnect: object = None,
    ):
        super().__init__(f"acc{index}", config.cost, perf)
        self.index = index
        self.shared_memory = config.shared_memory
        self.main_memory = main_memory
        self.local_store: Optional[MemorySpace] = None
        self.dma: Optional[DmaEngine] = None
        if config.local_store_size > 0:
            granularity = config.word_size if config.word_addressed else 1
            self.local_store = MemorySpace(
                f"ls{index}", config.local_store_size, granularity
            )
            self.dma = DmaEngine(
                local_store=self.local_store,
                main_memory=main_memory,
                cost=config.cost,
                perf=perf,
                name=f"dma{index}",
                interconnect=interconnect,
            )

"""The job graph: declared offload/host work with dependencies.

A :class:`JobGraph` declares a frame's worth of work up front — offload
blocks and host passes, with dependencies, priorities and optional
accelerator affinity — and :func:`run_graph` executes it on a machine
in deterministic simulated time, routing every offload node through the
same :class:`repro.sched.scheduler.OffloadScheduler` that IR-level
``OffloadLaunch`` instructions use.  Existing programs need no changes:
their launches become single-node jobs transparently.

Execution model (one legal interleaving of the real concurrency, like
the VM's eager offload execution):

* The host is the dispatcher.  Ready jobs — all dependencies finished —
  are processed one at a time in policy order
  (:meth:`repro.sched.policy.SchedulingPolicy.order_key` refines the
  priority order; ``critical-path`` runs the longest estimated
  downstream chain first).
* An *offload* job is submitted to the scheduler at
  ``max(host now, ready time)``: placement, admission control
  (backpressure on bounded queues), upload modelling and clock algebra
  all behave exactly as for an IR-level launch.
* A *host* job runs on the host timeline at ``max(host now, ready
  time)``.
* The first job to depend on an offload job joins its handle (charging
  ``thread_join``, emitting ``offload.join``); any still-unjoined
  handles are joined at graph end, so a graph run never leaks handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.ir.module import IRProgram
from repro.machine.machine import Machine
from repro.sched.scheduler import ESTIMATE_CYCLES_PER_INSTR

if TYPE_CHECKING:  # interpreter imports repro.sched; break the cycle
    from repro.vm.interpreter import RunOptions, RunResult

KIND_OFFLOAD = "offload"
KIND_HOST = "host"


@dataclass(frozen=True)
class Job:
    """One node of a job graph.

    ``target`` is an offload id (``kind == "offload"``) or an IR
    function name (``kind == "host"``).  ``args`` are concrete argument
    values — typically global addresses from ``program.globals``.
    """

    name: str
    kind: str
    target: object
    args: tuple[int, ...] = ()
    deps: tuple[str, ...] = ()
    priority: int = 0
    affinity: Optional[int] = None
    seq: int = 0


@dataclass
class JobRecord:
    """Where and when one job ran."""

    name: str
    kind: str
    accel_index: int  # -1 for host jobs
    start: int
    finish: int


@dataclass
class GraphRunResult:
    """Outcome of one :func:`run_graph` execution."""

    records: list[JobRecord] = field(default_factory=list)
    result: Optional[RunResult] = None

    @property
    def cycles(self) -> int:
        return self.result.cycles if self.result else 0

    def record(self, name: str) -> JobRecord:
        for rec in self.records:
            if rec.name == name:
                return rec
        raise KeyError(f"no job named {name!r} in this run")


class JobGraph:
    """A DAG of offload and host jobs.

    Dependencies must name already-added jobs, which guarantees the
    graph is acyclic by construction.  ``add_offload`` / ``add_host``
    return the job's name so graphs chain naturally::

        g = JobGraph()
        seed = g.add_host("seed", "seed")
        ai = g.add_offload("ai", offload_id=0, args=(world,), after=(seed,))
    """

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}

    def __len__(self) -> int:
        return len(self._jobs)

    def jobs(self) -> list[Job]:
        """All jobs, in insertion order."""
        return list(self._jobs.values())

    def job(self, name: str) -> Job:
        return self._jobs[name]

    def _add(self, job: Job) -> str:
        if job.name in self._jobs:
            raise ValueError(f"duplicate job name {job.name!r}")
        for dep in job.deps:
            if dep not in self._jobs:
                raise ValueError(
                    f"job {job.name!r} depends on unknown job {dep!r} "
                    f"(dependencies must be added first)"
                )
        self._jobs[job.name] = job
        return job.name

    def add_offload(
        self,
        name: str,
        offload_id: int,
        args: Sequence[int] = (),
        after: Sequence[str] = (),
        priority: int = 0,
        affinity: Optional[int] = None,
    ) -> str:
        """Declare one offload-block job; returns its name."""
        return self._add(
            Job(
                name=name,
                kind=KIND_OFFLOAD,
                target=int(offload_id),
                args=tuple(args),
                deps=tuple(after),
                priority=priority,
                affinity=affinity,
                seq=len(self._jobs),
            )
        )

    def add_host(
        self,
        name: str,
        function: str,
        args: Sequence[int] = (),
        after: Sequence[str] = (),
        priority: int = 0,
    ) -> str:
        """Declare one host-side job calling an IR function; returns
        its name."""
        return self._add(
            Job(
                name=name,
                kind=KIND_HOST,
                target=str(function),
                args=tuple(args),
                deps=tuple(after),
                priority=priority,
                seq=len(self._jobs),
            )
        )

    def validate(self, program: IRProgram) -> None:
        """Check every job's target against the program."""
        for job in self._jobs.values():
            if job.kind == KIND_OFFLOAD:
                if job.target not in program.offload_meta:
                    raise ValueError(
                        f"job {job.name!r} names unknown offload "
                        f"#{job.target}"
                    )
            elif job.target not in program.functions:
                raise ValueError(
                    f"job {job.name!r} names unknown function "
                    f"{job.target!r}"
                )


def _downstream_estimates(graph: JobGraph, estimates: dict[str, int]) -> dict[str, int]:
    """Longest estimated path from each job to a sink (inclusive)."""
    dependants: dict[str, list[str]] = {name: [] for name in estimates}
    for job in graph.jobs():
        for dep in job.deps:
            dependants[dep].append(job.name)
    downstream: dict[str, int] = {}

    # Jobs are stored in insertion order and deps always point backwards,
    # so a reverse sweep sees every dependant before its dependency.
    for job in reversed(graph.jobs()):
        below = max(
            (downstream[d] for d in dependants[job.name]), default=0
        )
        downstream[job.name] = estimates[job.name] + below
    return downstream


def run_graph(
    program: IRProgram,
    machine: Machine,
    graph: JobGraph,
    options: Optional[RunOptions] = None,
) -> GraphRunResult:
    """Execute a job graph on a machine; returns per-job records plus
    the underlying :class:`RunResult` (cycles, output, scheduler stats).

    ``options.sched`` selects the policy/queue configuration exactly as
    for :func:`repro.vm.interpreter.run_program`; without it the
    scheduler runs in compat (greedy) mode.
    """
    from repro.vm.interpreter import make_interpreter

    graph.validate(program)
    engine = make_interpreter(program, machine, options)
    engine.load_image()
    host_ctx = engine.make_host_context()
    sched = engine._sched
    policy = sched.policy

    estimates: dict[str, int] = {}
    for job in graph.jobs():
        if job.kind == KIND_OFFLOAD:
            estimates[job.name] = sched.estimate_cycles(job.target)
        else:
            function = program.function(job.target)
            estimates[job.name] = ESTIMATE_CYCLES_PER_INSTR * len(
                function.code
            )
    downstream = _downstream_estimates(graph, estimates)

    out = GraphRunResult()
    finished: dict[str, int] = {}
    handles: dict[str, int] = {}
    joined: set[str] = set()
    remaining = graph.jobs()

    def join_offload_dep(name: str) -> None:
        if name in handles and name not in joined:
            engine._join_offload(handles[name], host_ctx)
            joined.add(name)

    while remaining:
        ready = [
            job
            for job in remaining
            if all(dep in finished for dep in job.deps)
        ]
        assert ready, "job graph validated acyclic but nothing is ready"
        ready.sort(
            key=lambda job: (
                -job.priority,
                *policy.order_key(downstream[job.name], job.seq),
            )
        )
        job = ready[0]
        remaining = [j for j in remaining if j.name != job.name]
        # Joining an offload dependency is how the host observes its
        # completion (and what marks the handle joined).
        for dep in job.deps:
            join_offload_dep(dep)
        ready_time = max(
            (finished[dep] for dep in job.deps), default=0
        )
        host_ctx.now = max(host_ctx.now, ready_time)
        if job.kind == KIND_OFFLOAD:
            start_host = host_ctx.now
            handle = engine._run_offload(
                job.target,
                program.offload_meta[job.target].entry,
                list(job.args),
                host_ctx,
                affinity=job.affinity,
            )
            handles[job.name] = handle
            record = engine.handles[handle]
            finished[job.name] = record.finish_time
            out.records.append(
                JobRecord(
                    name=job.name,
                    kind=job.kind,
                    accel_index=record.accel_index,
                    start=start_host,
                    finish=record.finish_time,
                )
            )
        else:
            start = host_ctx.now
            function = program.function(job.target)
            engine._exec_function(function, list(job.args), host_ctx)
            finished[job.name] = host_ctx.now
            out.records.append(
                JobRecord(
                    name=job.name,
                    kind=job.kind,
                    accel_index=-1,
                    start=start,
                    finish=host_ctx.now,
                )
            )

    # Graph end: join anything no job depended on, so no handle leaks.
    for name in handles:
        join_offload_dep(name)
    out.result = engine.finalize(0, host_ctx)
    return out

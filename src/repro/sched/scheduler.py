"""The offload scheduler: placement, bounded queues, accounting.

Both VM engines route every offload launch through one
:class:`OffloadScheduler` owned by the interpreter.  The scheduler has
two operating modes:

* **compat** (``RunOptions.sched is None``) — placement is greedy,
  queues are unbounded, no code-upload cost is modelled and no
  ``sched.*`` trace events are emitted.  Runs are cycle-for-cycle and
  trace-identical to the scheduler-less VM; utilization statistics are
  still collected (they never touch the clocks).
* **explicit** (``RunOptions.sched = SchedOptions(...)``) — the
  configured :class:`repro.sched.policy.SchedulingPolicy` places each
  job, per-accelerator ready queues are bounded by
  :attr:`SchedOptions.queue_depth` with host-side backpressure (or a
  trap) when full, cold code-image uploads are charged before a block's
  first run on a given accelerator, and the run emits ``sched.submit``
  / ``sched.dispatch`` / ``sched.stall`` / ``sched.upload`` trace
  events on a dedicated scheduler lane.

The upload model is what makes locality-aware placement pay off: an
offload block's duplicated code image (sized from the
:mod:`repro.analysis.footprint` call-graph walk) must be DMA'd into an
accelerator's local store before its first run *on that accelerator*,
and stays resident afterwards.  Greedy placement rotates blocks across
cores and re-uploads every frame; ``locality`` reuses the warm core and
pays once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import RuntimeTrap
from repro.ir.module import IRProgram
from repro.machine.machine import Machine
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import (
    EV_SCHED_DISPATCH,
    EV_SCHED_STALL,
    EV_SCHED_SUBMIT,
    EV_SCHED_UPLOAD,
    NULL_RECORDER,
)
from repro.sched.policy import (
    POLICY_NAMES,
    PlacementView,
    SchedulingPolicy,
    make_policy,
)

#: Track name of the scheduler lane in trace exports.
SCHED_TRACK = "sched"

#: Static body-duration estimate: cycles charged per reachable IR
#: instruction when no profile is available.  Deliberately coarse — the
#: estimate only has to *rank* jobs, not predict them.
ESTIMATE_CYCLES_PER_INSTR = 6


@dataclass(frozen=True)
class SchedOptions:
    """Explicit-scheduling knobs (absence means compat mode).

    Attributes:
        policy: One of :data:`repro.sched.policy.POLICY_NAMES`.
        queue_depth: Per-accelerator ready-queue bound; ``0`` means
            unbounded (no admission control).  ``None`` (the default)
            picks the target's own bound
            (:attr:`repro.machine.config.MachineConfig.sched_queue_depth`
            — 0 everywhere except the many-core grid, whose tiny job
            slots bound it at 2).
        admission: What a full queue does to the host: ``"stall"``
            blocks the host clock until a slot frees (backpressure),
            ``"trap"`` raises :class:`repro.errors.RuntimeTrap`.
        model_uploads: Charge cold code-image uploads.  On, this is
            what differentiates locality-aware policies; off, explicit
            greedy placement costs exactly what compat mode does.
        profile: Optional prior-run profile mapping ``offload_id`` to
            observed body cycles, e.g. ``SchedStats.profile`` from an
            earlier run; sharpens ``critical-path`` estimates.
    """

    policy: str = "greedy"
    queue_depth: Optional[int] = None
    admission: str = "stall"
    model_uploads: bool = True
    profile: Optional[Mapping[int, int]] = None

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown scheduling policy {self.policy!r}; choose one "
                f"of {', '.join(POLICY_NAMES)}"
            )
        if self.queue_depth is not None and self.queue_depth < 0:
            raise ValueError(
                f"queue_depth must be >= 0, got {self.queue_depth}"
            )
        if self.admission not in ("stall", "trap"):
            raise ValueError(
                f"admission must be 'stall' or 'trap', "
                f"got {self.admission!r}"
            )


@dataclass
class AccelStats:
    """Utilization accounting for one accelerator."""

    jobs: int = 0
    busy_cycles: int = 0
    queue_wait_cycles: int = 0
    upload_cycles: int = 0
    queue_high_water: int = 0

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "busy_cycles": self.busy_cycles,
            "queue_wait_cycles": self.queue_wait_cycles,
            "upload_cycles": self.upload_cycles,
            "queue_high_water": self.queue_high_water,
        }


@dataclass
class SchedStats:
    """Whole-run scheduler accounting, attached to ``RunResult.sched``.

    Collected in both modes (it never advances a clock); stalls and
    uploads only occur in explicit mode.
    """

    policy: str
    queue_depth: int
    accels: list[AccelStats] = field(default_factory=list)
    jobs: int = 0
    stalls: int = 0
    stall_cycles: int = 0
    uploads: int = 0
    #: Last observed body duration per offload id — feed it back via
    #: :attr:`SchedOptions.profile` to sharpen critical-path estimates.
    profile: dict[int, int] = field(default_factory=dict)

    @property
    def busy_cycles(self) -> int:
        return sum(a.busy_cycles for a in self.accels)

    @property
    def queue_high_water(self) -> int:
        return max((a.queue_high_water for a in self.accels), default=0)

    def utilization(self, total_cycles: int) -> list[float]:
        """Per-accelerator busy share of the run's total cycles."""
        if total_cycles <= 0:
            return [0.0 for _ in self.accels]
        return [a.busy_cycles / total_cycles for a in self.accels]

    def as_dict(self, total_cycles: Optional[int] = None) -> dict:
        out = {
            "policy": self.policy,
            "queue_depth": self.queue_depth,
            "jobs": self.jobs,
            "stalls": self.stalls,
            "stall_cycles": self.stall_cycles,
            "uploads": self.uploads,
            "busy_cycles": self.busy_cycles,
            "queue_high_water": self.queue_high_water,
            "accelerators": [a.as_dict() for a in self.accels],
        }
        if total_cycles is not None:
            out["total_cycles"] = total_cycles
            out["utilization"] = [
                round(u, 4) for u in self.utilization(total_cycles)
            ]
        return out


class OffloadScheduler:
    """Places offload jobs on accelerators for one program run.

    The interpreter owns one instance and consults it in launch order:
    :meth:`submit` → :meth:`admit` → :meth:`begin` → (the engine runs
    the block body) → :meth:`complete` → :meth:`dispatched`.  All state
    the policies see derives from the deterministic simulation, so both
    VM engines make identical decisions.
    """

    def __init__(
        self,
        program: IRProgram,
        machine: Machine,
        options: Optional[SchedOptions],
        trace=NULL_RECORDER,
    ):
        self.program = program
        self.machine = machine
        self.options = options
        self.enabled = options is not None
        self.policy: SchedulingPolicy = make_policy(
            options.policy if options else "greedy"
        )
        count = len(machine.accelerators)
        #: Resolved ready-queue bound: an explicit
        #: ``SchedOptions.queue_depth`` wins, else the target's own
        #: ``sched_queue_depth``; always 0 (unbounded) in compat mode.
        self.queue_depth = 0
        if options is not None:
            self.queue_depth = (
                options.queue_depth
                if options.queue_depth is not None
                else machine.config.sched_queue_depth
            )
        #: Cycle at which each accelerator frees up.  The interpreter
        #: aliases this list as ``_accel_available``.
        self.available: list[int] = [0] * count
        self.stats = SchedStats(
            policy=self.policy.name,
            queue_depth=self.queue_depth,
            accels=[AccelStats() for _ in range(count)],
        )
        self._trace = trace
        #: Pre-bound metrics sink (the machine's hub; attach before
        #: building an engine, like the trace recorder).
        self._metrics = machine.metrics if machine is not None else NULL_METRICS
        #: (accel index, offload id) pairs whose code image is resident.
        self._resident: set[tuple[int, int]] = set()
        #: Per-accelerator start cycles of assigned-but-not-yet-started
        #: jobs (the simulated ready queues), pruned lazily.
        self._queued_starts: list[list[int]] = [[] for _ in range(count)]
        self._image_cycles_cache: dict[int, int] = {}
        self._estimate_cache: dict[int, int] = {}

    # ------------------------------------------------------------- modelling

    def code_bytes(self, offload_id: int) -> int:
        """Size of the offload's duplicated code image in bytes."""
        # Imported here: repro.analysis pulls in the vm package, whose
        # interpreter imports this module (a top-level import cycles).
        from repro.analysis.footprint import reachable_functions

        meta = self.program.offload_meta[offload_id]
        names = reachable_functions(self.program, meta)
        return self.machine.config.code_bytes_per_instr * sum(
            len(self.program.functions[name].code)
            for name in names
            if name in self.program.functions
        )

    def _image_cycles(self, offload_id: int) -> int:
        cached = self._image_cycles_cache.get(offload_id)
        if cached is None:
            cost = self.machine.config.cost
            transfer = -(
                -self.code_bytes(offload_id) // cost.dma_bytes_per_cycle
            )
            cached = cost.dma_setup + cost.dma_latency + transfer
            self._image_cycles_cache[offload_id] = cached
        return cached

    def upload_cycles(self, offload_id: int, accel_index: int) -> int:
        """Cold-upload cost of the offload on one accelerator (0 when
        resident, when uploads aren't modelled, or on shared-memory
        cores that execute code straight from main memory)."""
        if not self.enabled or not self.options.model_uploads:
            return 0
        if self.machine.accelerators[accel_index].local_store is None:
            return 0
        if (accel_index, offload_id) in self._resident:
            return 0
        return self._image_cycles(offload_id)

    def estimate_cycles(self, offload_id: int) -> int:
        """Estimated body duration: this run's observations first, then
        the supplied prior-run profile, then a static instruction count."""
        observed = self.stats.profile.get(offload_id)
        if observed is not None:
            return observed
        if self.options is not None and self.options.profile is not None:
            prior = self.options.profile.get(offload_id)
            if prior is not None:
                return prior
        cached = self._estimate_cache.get(offload_id)
        if cached is None:
            from repro.analysis.footprint import reachable_functions

            meta = self.program.offload_meta[offload_id]
            names = reachable_functions(self.program, meta)
            instructions = sum(
                len(self.program.functions[name].code)
                for name in names
                if name in self.program.functions
            )
            cached = ESTIMATE_CYCLES_PER_INSTR * instructions
            self._estimate_cache[offload_id] = cached
        return cached

    # ------------------------------------------------------------ lifecycle

    def submit(self, offload_id: int, job: int, now: int) -> None:
        """Record one job entering the scheduler (host side)."""
        self.stats.jobs += 1
        if self.enabled and self._trace.enabled:
            self._trace.emit(
                now,
                SCHED_TRACK,
                EV_SCHED_SUBMIT,
                (job, offload_id, self.policy.name),
            )

    def admit(
        self,
        offload_id: int,
        ctx,
        affinity: Optional[int] = None,
    ) -> int:
        """Choose the accelerator and apply admission control.

        May advance ``ctx.now`` (host backpressure stall) or raise
        :class:`RuntimeTrap` under ``admission="trap"``.
        """
        count = len(self.available)
        if affinity is not None:
            if not 0 <= affinity < count:
                raise RuntimeTrap(
                    f"job affinity names accelerator {affinity} but the "
                    f"machine has {count}"
                )
            index = affinity
        else:
            view = PlacementView(
                now=ctx.now,
                available=self.available,
                busy=[a.busy_cycles for a in self.stats.accels],
                resident=lambda i: (i, offload_id) in self._resident,
                upload_cycles=lambda i: self.upload_cycles(offload_id, i),
                estimate=self.estimate_cycles(offload_id),
                spawn_cost=self.machine.config.cost.thread_spawn,
            )
            index = self.policy.choose(view)
        depth = self.queue_depth
        if depth > 0:
            queued = self._queued(index, ctx.now)
            if len(queued) >= depth:
                if self.options.admission == "trap":
                    raise RuntimeTrap(
                        f"accelerator {index} ready queue full "
                        f"(depth {depth}) at cycle {ctx.now}"
                    )
                # Backpressure: the host blocks until enough queued
                # jobs have started that one slot is free again.
                resume = sorted(queued)[len(queued) - depth]
                stall_start = ctx.now
                ctx.now = resume
                self.stats.stalls += 1
                self.stats.stall_cycles += resume - stall_start
                ctx.core.perf.add("sched.stalls")
                ctx.core.perf.add("sched.stall_cycles", resume - stall_start)
                metrics = self._metrics
                if metrics.enabled:
                    metrics.observe(
                        "sched.stall_cycles", None, resume - stall_start
                    )
                if self._trace.enabled:
                    self._trace.emit(
                        stall_start,
                        SCHED_TRACK,
                        EV_SCHED_STALL,
                        (index, resume),
                    )
        return index

    def begin(self, offload_id: int, accel_index: int, now: int) -> tuple[int, int]:
        """Start one job on its accelerator.

        Returns ``(start, body_start)``: ``start`` is when the core is
        seized (spawn complete), ``body_start`` is when the block body
        begins — later than ``start`` by the upload cost when the code
        image is cold.
        """
        accelerator = self.machine.accelerators[accel_index]
        accel_stats = self.stats.accels[accel_index]
        available = self.available[accel_index]
        accel_stats.queue_wait_cycles += max(0, available - now)
        start = max(now, available) + accelerator.cost.thread_spawn
        upload = self.upload_cycles(offload_id, accel_index)
        body_start = start + upload
        if upload:
            self.stats.uploads += 1
            accel_stats.upload_cycles += upload
            accelerator.perf.add("sched.uploads")
            accelerator.perf.add(
                "sched.upload_bytes", self.code_bytes(offload_id)
            )
            if self._trace.enabled:
                self._trace.emit(
                    start,
                    accelerator.name,
                    EV_SCHED_UPLOAD,
                    (offload_id, self.code_bytes(offload_id), body_start),
                )
        self._resident.add((accel_index, offload_id))
        # The job sits in the ready queue until `start`; record it for
        # occupancy accounting and the high-water mark.
        queue = self._queued_starts[accel_index]
        queue.append(start)
        occupancy = len([s for s in queue if s > now])
        if occupancy > accel_stats.queue_high_water:
            accel_stats.queue_high_water = occupancy
        metrics = self._metrics
        if metrics.enabled:
            metrics.observe("sched.queue_occupancy", None, occupancy)
        return start, body_start

    def complete(
        self, offload_id: int, accel_index: int,
        start: int, body_start: int, finish: int,
    ) -> None:
        """Record one job's completion and free the accelerator slot."""
        self.available[accel_index] = finish
        accel_stats = self.stats.accels[accel_index]
        accel_stats.jobs += 1
        accel_stats.busy_cycles += finish - start
        self.stats.profile[offload_id] = finish - body_start

    def dispatched(self, job: int, accel_index: int, now: int) -> None:
        """Emit the host-side placement record for one launched job."""
        if self.enabled and self._trace.enabled:
            queued = len(self._queued(accel_index, now))
            self._trace.emit(
                now,
                SCHED_TRACK,
                EV_SCHED_DISPATCH,
                (job, accel_index, queued),
            )

    # ------------------------------------------------------------ internals

    def _queued(self, accel_index: int, now: int) -> list[int]:
        """Start cycles of jobs still queued on an accelerator at
        ``now`` (prunes entries that have already started)."""
        queue = [s for s in self._queued_starts[accel_index] if s > now]
        self._queued_starts[accel_index] = queue
        return queue

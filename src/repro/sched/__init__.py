"""repro.sched — the job-graph offload scheduler.

Every offload launch in both VM engines routes through
:class:`OffloadScheduler`.  Without :class:`SchedOptions` the scheduler
runs in *compat* mode and reproduces the legacy greedy placement
cycle-for-cycle; with them it adds pluggable placement policies,
bounded per-accelerator ready queues with host backpressure, cold
code-upload modelling and full utilization accounting.

See ``docs/scheduler.md`` for the model and
:mod:`repro.sched.graph` for the explicit job-graph API.
"""

from repro.sched.graph import (
    GraphRunResult,
    Job,
    JobGraph,
    JobRecord,
    run_graph,
)
from repro.sched.policy import (
    POLICY_NAMES,
    CriticalPathPolicy,
    GreedyPolicy,
    LeastLoadedPolicy,
    LocalityPolicy,
    PlacementView,
    SchedulingPolicy,
    make_policy,
)
from repro.sched.scheduler import (
    AccelStats,
    OffloadScheduler,
    SchedOptions,
    SchedStats,
)

__all__ = [
    "AccelStats",
    "CriticalPathPolicy",
    "GraphRunResult",
    "GreedyPolicy",
    "Job",
    "JobGraph",
    "JobRecord",
    "LeastLoadedPolicy",
    "LocalityPolicy",
    "OffloadScheduler",
    "PlacementView",
    "POLICY_NAMES",
    "SchedOptions",
    "SchedStats",
    "SchedulingPolicy",
    "make_policy",
    "run_graph",
]

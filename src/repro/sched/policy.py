"""Pluggable accelerator-placement policies.

A :class:`SchedulingPolicy` answers two questions for the scheduler:

* *placement* — given one ready job, which accelerator should run it
  (:meth:`SchedulingPolicy.choose`)?  The policy sees a
  :class:`PlacementView`: per-accelerator availability and accumulated
  load, whether the job's code image is already resident on each core,
  what an upload would cost, and an estimated body duration.
* *ordering* — given several ready jobs of a job graph, which runs
  first (:meth:`SchedulingPolicy.order_key`)?  Higher-priority jobs
  always go first; policies refine the tie-break.

Every policy is deterministic: identical inputs produce identical
decisions, which is what keeps the two VM engines cycle- and
trace-identical under every policy (``tests/test_vm_equivalence.py``).

The four shipped policies:

``greedy``
    Earliest-available accelerator, lowest index breaking ties — the
    VM's historical behaviour and the compat default.
``least-loaded``
    Fewest accumulated busy cycles; balances total work rather than
    instantaneous availability.
``locality``
    Prefers an accelerator that already holds the job's uploaded code
    image (and therefore its warmed state); falls back to greedy when
    no accelerator does.
``critical-path``
    Minimises the *estimated completion time* — availability plus
    spawn, upload (if the image is cold there) and the estimated body
    duration — and orders graph-ready jobs longest-downstream-first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

#: The policy registry order is also the canonical reporting order.
POLICY_NAMES: tuple[str, ...] = (
    "greedy",
    "least-loaded",
    "locality",
    "critical-path",
)


@dataclass(frozen=True)
class PlacementView:
    """Everything a policy may consult when placing one job.

    Attributes:
        now: The host's current simulated cycle.
        available: Per-accelerator cycle at which the core frees up.
        busy: Per-accelerator accumulated busy cycles so far.
        resident: ``resident(i)`` — is this job's code image already
            uploaded on accelerator ``i``?
        upload_cycles: ``upload_cycles(i)`` — cycles an upload would
            cost on accelerator ``i`` (0 when resident or not modelled).
        estimate: Estimated body duration of the job, in cycles.
        spawn_cost: The target's ``thread_spawn`` cost.
    """

    now: int
    available: Sequence[int]
    busy: Sequence[int]
    resident: Callable[[int], bool]
    upload_cycles: Callable[[int], int]
    estimate: int
    spawn_cost: int


class SchedulingPolicy(Protocol):
    """The protocol every placement policy implements."""

    name: str

    def choose(self, view: PlacementView) -> int:
        """Index of the accelerator that should run the job."""
        ...

    def order_key(self, downstream: int, seq: int) -> tuple:
        """Sort key for one graph-ready job (ascending; smaller runs
        first).  ``downstream`` is the job's longest estimated path to a
        graph sink; ``seq`` its insertion order."""
        ...


class _OrderBySubmission:
    """Default ready-job ordering: stable insertion order."""

    def order_key(self, downstream: int, seq: int) -> tuple:
        return (seq,)


class GreedyPolicy(_OrderBySubmission):
    """Earliest-available accelerator (the historical behaviour)."""

    name = "greedy"

    def choose(self, view: PlacementView) -> int:
        return min(
            range(len(view.available)),
            key=lambda i: (view.available[i], i),
        )


class LeastLoadedPolicy(_OrderBySubmission):
    """Fewest accumulated busy cycles, availability breaking ties."""

    name = "least-loaded"

    def choose(self, view: PlacementView) -> int:
        return min(
            range(len(view.available)),
            key=lambda i: (view.busy[i], view.available[i], i),
        )


class LocalityPolicy(_OrderBySubmission):
    """Prefer an accelerator already holding the job's code image."""

    name = "locality"

    def choose(self, view: PlacementView) -> int:
        warm = [i for i in range(len(view.available)) if view.resident(i)]
        if warm:
            return min(warm, key=lambda i: (view.available[i], i))
        return min(
            range(len(view.available)),
            key=lambda i: (view.available[i], i),
        )


class CriticalPathPolicy:
    """Minimise estimated completion; longest-downstream-first ordering."""

    name = "critical-path"

    def choose(self, view: PlacementView) -> int:
        def completion(i: int) -> int:
            start = max(view.now, view.available[i]) + view.spawn_cost
            return start + view.upload_cycles(i) + view.estimate

        return min(
            range(len(view.available)),
            key=lambda i: (completion(i), i),
        )

    def order_key(self, downstream: int, seq: int) -> tuple:
        return (-downstream, seq)


_POLICY_CLASSES = {
    "greedy": GreedyPolicy,
    "least-loaded": LeastLoadedPolicy,
    "locality": LocalityPolicy,
    "critical-path": CriticalPathPolicy,
}

assert tuple(_POLICY_CLASSES) == POLICY_NAMES


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a registered policy by name."""
    try:
        cls = _POLICY_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {name!r}; choose one of "
            f"{', '.join(POLICY_NAMES)}"
        ) from None
    return cls()

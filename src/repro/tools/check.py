"""Static checks for OffloadMini sources.

Usage::

    python -m repro.tools.check program.om [more.om ...]
        [--target cell|smp|dsp|apu|manycore | --all-targets]
        [--format text|json|sarif] [--fail-on error|warning]
        [--baseline FILE | --write-baseline FILE]
        [--corpus game] [--out FILE] [--time-passes] [--trace FILE]

Runs the full front end and lowering, then every whole-program static
analysis (:func:`repro.analysis.run_analyses`): flow-sensitive DMA
discipline checking, local-store footprint estimation, outer-traffic
analysis and domain-annotation coverage.  Findings are rendered as
human-readable text (default), canonical JSON, or SARIF 2.1.0 for CI
annotation services.

``--all-targets`` is the portability lint: the same sources are
compiled and analyzed once per registry target (each target's
local-store capacity, cost model and DMA alignment change what the
analyses can prove), a per-target verdict table goes to stderr, and
the SARIF output carries one run per target.

Exit status contract:

* ``0`` — clean: no findings at or above the ``--fail-on`` severity
  (suppressed-by-baseline findings don't count).
* ``1`` — the tool could not do its job: unreadable input, compile
  error, bad baseline file.
* ``3`` — findings at or above the ``--fail-on`` severity were
  reported.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.diagnostics import (
    SEV_ERROR,
    SEV_WARNING,
    apply_baseline,
    format_json,
    format_sarif,
    format_text,
    load_baseline,
    meets_threshold,
    sarif_report,
    sort_findings,
    write_baseline,
)
from repro.analysis.runner import format_analysis_timings
from repro.compiler.driver import CompileOptions
from repro.compiler.passes import PassManager, format_timings
from repro.errors import CompileError
from repro.machine.config import default_target, resolve_target, target_names
from repro.obs.trace import NULL_RECORDER, TraceRecorder

_EXIT_CONTRACT = """\
exit status:
  0   clean - no findings at or above the --fail-on severity
  1   compile error / unreadable input / bad baseline
  3   findings at or above the --fail-on severity
"""


def _game_corpus() -> list[tuple[str, str]]:
    """(pseudo-filename, source) pairs for every game-substrate source."""
    from repro.game import sources as game

    return [
        ("game:figure1", game.figure1_source()),
        ("game:figure2", game.figure2_source()),
        ("game:components-abstract", game.component_system_source()),
        (
            "game:components-specialized",
            game.component_system_source(specialized=True),
        ),
        ("game:ai-kernel", game.ai_kernel_source()),
        ("game:move-loop", game.move_loop_source()),
        (
            "game:move-loop-accessor",
            game.move_loop_source(use_accessor=True, cache="direct"),
        ),
        ("game:word-struct", game.word_struct_source()),
        ("game:game-demo", game.game_demo_source()),
    ]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description=__doc__.splitlines()[0],
        epilog=_EXIT_CONTRACT,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "sources", nargs="*", help="OffloadMini source file(s)"
    )
    parser.add_argument(
        "--target", choices=list(target_names()), default=default_target(),
        help="registered machine target (default: cell, or REPRO_TARGET)",
    )
    parser.add_argument(
        "--all-targets", action="store_true",
        help="portability lint: check under every registered target and "
             "print a per-target verdict table",
    )
    parser.add_argument(
        "--corpus", choices=("game",),
        help="also check every generated game-substrate source",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        dest="format_", metavar="{text,json,sarif}",
        help="findings output format (default: text)",
    )
    parser.add_argument(
        "--fail-on", choices=(SEV_ERROR, SEV_WARNING), default=SEV_WARNING,
        help="lowest severity that causes exit status 3 "
             "(default: warning - any finding fails)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings whose fingerprints appear in this "
             "baseline file",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="write a baseline suppressing every current finding, "
             "then exit 0",
    )
    parser.add_argument(
        "--out", metavar="FILE",
        help="write findings to FILE instead of stdout",
    )
    parser.add_argument(
        "--time-passes", action="store_true",
        help="print per-pass compile timings and per-analysis timings "
             "to stderr",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write a Chrome/Perfetto trace of compile passes and "
             "analysis spans to FILE",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    inputs: list[tuple[str, str]] = []
    for path in args.sources:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                inputs.append((path, handle.read()))
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    if args.corpus == "game":
        inputs.extend(_game_corpus())
    if not inputs:
        parser.error("no sources given (pass files or --corpus game)")
    suppressed: set[str] = set()
    if args.baseline:
        try:
            suppressed = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1

    targets = (
        list(target_names()) if args.all_targets else [args.target]
    )
    recorder = TraceRecorder() if args.trace else NULL_RECORDER
    options = CompileOptions(analyze=True)
    per_target: dict[str, list] = {}
    for tname in targets:
        config = resolve_target(tname)
        findings = []
        for filename, source in inputs:
            try:
                # The pass pipeline is run directly (not through the
                # compile cache): static checking wants every stage to
                # actually execute, and --time-passes wants its timings.
                ctx = PassManager.default().run(
                    source, config, options, filename=filename,
                    trace=recorder,
                )
            except CompileError as error:
                for diagnostic in error.diagnostics:
                    print(diagnostic.render(), file=sys.stderr)
                return 1
            findings.extend(ctx.findings)
            if args.time_passes:
                print(f"== {tname}: {filename}", file=sys.stderr)
                print(format_timings(ctx.timings), file=sys.stderr)
                print(
                    format_analysis_timings(ctx.analysis_timings),
                    file=sys.stderr,
                )
        per_target[tname] = sort_findings(findings)
    findings = sort_findings(
        {f for fs in per_target.values() for f in fs}
    )

    if args.trace:
        from repro.obs.export import chrome_trace_json

        with open(args.trace, "w", encoding="utf-8") as handle:
            handle.write(chrome_trace_json(recorder))
        print(f"trace written to {args.trace}", file=sys.stderr)

    if args.write_baseline:
        count = write_baseline(args.write_baseline, findings)
        print(
            f"baseline written to {args.write_baseline} "
            f"({count} fingerprint(s))",
            file=sys.stderr,
        )
        return 0

    findings, hidden = apply_baseline(findings, suppressed)
    kept_per_target = {
        tname: apply_baseline(fs, suppressed)[0]
        for tname, fs in per_target.items()
    }
    if args.format_ == "text":
        output = format_text(findings)
        if output:
            output += "\n"
    elif args.format_ == "json":
        output = format_json(findings)
    elif args.all_targets:
        # Portability lint: one SARIF run per target, each stamped with
        # the target it was produced under.
        log = sarif_report(kept_per_target[targets[0]])
        runs = []
        for tname in targets:
            target_log = sarif_report(kept_per_target[tname])
            run = target_log["runs"][0]
            run["automationDetails"] = {"id": f"repro-check/{tname}"}
            run["properties"] = {"target": tname}
            runs.append(run)
        log["runs"] = runs
        output = json.dumps(log, sort_keys=True, indent=2) + "\n"
    else:
        output = format_sarif(findings)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(output)
    elif output:
        sys.stdout.write(output)

    if args.all_targets:
        print(_verdict_table(kept_per_target, args.fail_on), file=sys.stderr)

    failing = sum(1 for f in findings if meets_threshold(f, args.fail_on))
    summary = f"-- {len(findings)} finding(s), {failing} at or above " \
              f"--fail-on={args.fail_on}"
    if hidden:
        summary += f", {hidden} suppressed by baseline"
    if failing:
        print(summary, file=sys.stderr)
        return 3
    print(summary if findings or hidden else "-- clean", file=sys.stderr)
    return 0


def _verdict_table(
    kept_per_target: dict[str, list], fail_on: str
) -> str:
    """The ``--all-targets`` per-target verdict table (stderr)."""
    lines = [f"{'target':12s} {'errors':>6s} {'warnings':>8s}  verdict"]
    for tname, fs in kept_per_target.items():
        errors = sum(1 for f in fs if f.severity == SEV_ERROR)
        warnings = sum(1 for f in fs if f.severity == SEV_WARNING)
        failing = sum(1 for f in fs if meets_threshold(f, fail_on))
        verdict = "FAIL" if failing else "ok"
        lines.append(f"{tname:12s} {errors:6d} {warnings:8d}  {verdict}")
    return "\n".join(lines)


if __name__ == "__main__":
    sys.exit(main())

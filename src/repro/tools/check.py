"""Static checks for an OffloadMini source file.

Usage::

    python -m repro.tools.check program.om [--target cell|smp|dsp]

Runs the full front end and lowering (so all type/space/addressing
errors are reported), then:

* the static DMA race analysis over every accelerator function, and
* the annotation-requirement report per offload block (which virtual
  methods each offload's ``domain(...)`` must list, and which are
  missing).

Exit status: 0 clean, 1 compile error, 3 findings reported.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.annotations import report_for_program
from repro.analysis.static_races import find_races_in_program
from repro.compiler.driver import CompileOptions, analyze_source
from repro.compiler.passes import PassManager, format_timings
from repro.errors import CompileError
from repro.machine.config import CELL_LIKE, DSP_WORD, SMP_UNIFORM

TARGETS = {"cell": CELL_LIKE, "smp": SMP_UNIFORM, "dsp": DSP_WORD}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check", description=__doc__.splitlines()[0]
    )
    parser.add_argument("source", help="OffloadMini source file")
    parser.add_argument(
        "--target", choices=sorted(TARGETS), default="cell",
        help="machine configuration (default: cell)",
    )
    parser.add_argument(
        "--time-passes", action="store_true",
        help="print per-pass compile timings to stderr",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with open(args.source, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    config = TARGETS[args.target]
    try:
        # The pass pipeline is run directly (not through the compile
        # cache): static checking wants every stage to actually execute,
        # and --time-passes wants its timings.
        ctx = PassManager.default().run(
            source, config, CompileOptions(), filename=args.source
        )
        program = ctx.program
        if args.time_passes:
            print(format_timings(ctx.timings), file=sys.stderr)
        info = analyze_source(source, filename=args.source)
    except CompileError as error:
        for diagnostic in error.diagnostics:
            print(diagnostic.render(), file=sys.stderr)
        return 1
    findings = 0
    races = find_races_in_program(program.accel_functions())
    for race in races:
        print(f"race: {race.describe()}")
        findings += 1
    for annotation_report in report_for_program(info):
        print(
            f"offload #{annotation_report.offload_id}: "
            f"{annotation_report.virtual_call_sites} virtual call site(s), "
            f"{annotation_report.count} required annotation(s)"
        )
        for name in annotation_report.required:
            print(f"    requires {name}")
        for name in annotation_report.missing:
            print(f"    MISSING from domain(...): {name}")
            findings += 1
    if findings:
        print(f"-- {findings} finding(s)", file=sys.stderr)
        return 3
    print("-- clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line tools.

* ``python -m repro.tools.run program.om`` — compile and execute an
  OffloadMini source file on a chosen target.
* ``python -m repro.tools.check program.om`` — compile-only, run the
  static DMA race analysis and the annotation-requirement report.
"""

"""Trace an OffloadMini program and export the event timeline.

Usage::

    python -m repro.tools.trace program.om [--target cell|smp|dsp|apu|manycore]
        [--optimize] [--demand-load] [--cache none|direct|setassoc|victim]
        [--wordaddr hybrid|emulate] [--engine compiled|reference]
        [--format chrome|timeline|profile] [--out FILE]
        [--capacity N] [--frame-marker SUFFIX] [--compile-spans]

    python -m repro.tools.trace --validate TRACE.json

The first form compiles the program, runs it with a
:class:`~repro.obs.trace.TraceRecorder` attached, and writes the export
to ``--out`` (stdout by default).  ``--compile-spans`` additionally runs
the compilation through the pass manager with per-pass span events on
the ``compile`` track — note those spans carry *wall-clock*
microseconds, so the export is no longer run-to-run byte-identical.

The second form loads an exported Chrome trace JSON file and checks it
against the structural trace-event rules Perfetto relies on, printing
any problems; exit status 0 means the file validates.

Exit status: 0 on success, 1 on compile/validation errors, 2 on runtime
traps.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.compiler.driver import CompileOptions
from repro.compiler.passes import PassManager
from repro.errors import CompileError, ReproError
from repro.machine.config import default_target, resolve_target, target_names
from repro.machine.machine import Machine
from repro.obs import (
    NULL_RECORDER,
    TraceRecorder,
    chrome_trace_json,
    format_profile,
    format_timeline,
    offload_profile,
    validate_chrome_trace,
)
from repro.vm.interpreter import RunOptions, run_program


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "source", nargs="?", default=None,
        help="OffloadMini source file to trace",
    )
    parser.add_argument(
        "--validate", default=None, metavar="FILE",
        help="validate an exported Chrome trace JSON file and exit",
    )
    parser.add_argument(
        "--target", choices=list(target_names()), default=default_target(),
        help="registered machine target (default: cell, or REPRO_TARGET)",
    )
    parser.add_argument("--optimize", action="store_true",
                        help="run the IR optimiser")
    parser.add_argument("--demand-load", action="store_true",
                        help="enable on-demand code loading")
    parser.add_argument(
        "--cache", default="none",
        help="default software cache for un-annotated offloads",
    )
    parser.add_argument(
        "--wordaddr", choices=["hybrid", "emulate"], default="hybrid",
        help="addressing mode on word-addressed targets",
    )
    parser.add_argument(
        "--engine", choices=["compiled", "reference"], default=None,
        help="execution engine (default: the compiled closure engine)",
    )
    parser.add_argument(
        "--format", choices=["chrome", "timeline", "profile"],
        default="chrome", dest="fmt",
        help="export format (default: chrome trace_event JSON)",
    )
    parser.add_argument(
        "--out", default="-", metavar="FILE",
        help="output path (default: stdout)",
    )
    parser.add_argument(
        "--capacity", type=int, default=1 << 20,
        help="recorder ring capacity in events (default: 1048576)",
    )
    parser.add_argument(
        "--frame-marker", default="doFrame", metavar="SUFFIX",
        help="function-name suffix that marks frame boundaries "
             "(default: doFrame; empty string disables)",
    )
    parser.add_argument(
        "--compile-spans", action="store_true",
        help="include wall-clock compile-pass spans in the trace "
             "(breaks run-to-run byte-identity)",
    )
    return parser


def _validate_file(path: str) -> int:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(trace)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"-- {path}: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    count = len(trace.get("traceEvents", []))
    print(f"-- {path}: valid Chrome trace ({count} events)", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.validate is not None:
        return _validate_file(args.validate)
    if args.source is None:
        print("error: a source file (or --validate) is required",
              file=sys.stderr)
        return 1
    try:
        with open(args.source, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    recorder = TraceRecorder(
        capacity=args.capacity,
        frame_marker=args.frame_marker or None,
    )
    config = resolve_target(args.target)
    options = CompileOptions(
        wordaddr_mode=args.wordaddr,
        default_cache=args.cache,
        optimize=args.optimize,
        demand_load=args.demand_load,
    )
    try:
        ctx = PassManager.default().run(
            source,
            config,
            options,
            filename=args.source,
            trace=recorder if args.compile_spans else NULL_RECORDER,
        )
    except CompileError as error:
        for diagnostic in error.diagnostics:
            print(diagnostic.render(), file=sys.stderr)
        return 1
    program = ctx.program

    machine = Machine(config)
    machine.attach_trace(recorder)
    try:
        result = run_program(program, machine, RunOptions(engine=args.engine))
    except ReproError as error:
        print(f"runtime error: {error}", file=sys.stderr)
        return 2

    if args.fmt == "chrome":
        text = chrome_trace_json(recorder)
    elif args.fmt == "timeline":
        text = format_timeline(recorder)
    else:
        text = format_profile(offload_profile(recorder))
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"-- {len(recorder)} events "
            f"({recorder.dropped} dropped) -> {args.out}",
            file=sys.stderr,
        )
    if recorder.dropped:
        print(
            f"warning: trace truncated, {recorder.dropped} oldest events "
            f"dropped — raise --capacity (currently {args.capacity})",
            file=sys.stderr,
        )
    print(
        f"-- {result.cycles} simulated cycles on {config.name}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

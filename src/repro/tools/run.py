"""Compile and run an OffloadMini source file (or a compiled artifact).

Usage::

    python -m repro.tools.run program.om [--target cell|smp|dsp|apu|manycore]
        [--optimize] [--demand-load] [--cache none|direct|setassoc|victim]
        [--wordaddr hybrid|emulate] [--dump-ir] [--perf] [--record-races]
        [--engine compiled|codegen|reference] [--dump-codegen]
        [--dump-after PASS] [--time-passes] [--cache-dir DIR]
        [--emit-artifact PATH] [--trace FILE]
        [--trace-format chrome|timeline|profile] [--report FILE]
        [--policy greedy|least-loaded|locality|critical-path]
        [--queue-depth N]

A ``.json`` input is loaded as a serialized program artifact (see
``--emit-artifact`` and :mod:`repro.ir.serialize`) instead of being
compiled; compilation flags are then ignored.

Exit status: 0 on success, 1 on compile errors, 2 on runtime traps.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.compiler.cache import cache_at
from repro.compiler.driver import CompileOptions, compile_program
from repro.compiler.passes import DEFAULT_PASS_NAMES, PassManager, format_timings
from repro.errors import CompileError, ReproError
from repro.ir.printer import format_program
from repro.ir.serialize import ArtifactError, load_program, save_program
from repro.machine.config import default_target, resolve_target, target_names
from repro.machine.machine import Machine
from repro.obs import (
    MetricsHub,
    TraceRecorder,
    chrome_trace_json,
    collect_report,
    format_profile,
    format_timeline,
    offload_profile,
    report_json,
    save_report,
)
from repro.runtime.cachekinds import CACHE_KIND_CHOICES
from repro.sched import POLICY_NAMES, SchedOptions
from repro.vm.interpreter import (
    DEFAULT_ENGINE,
    ENGINE_NAMES,
    RunOptions,
    run_program,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "source", help="OffloadMini source file (or .json program artifact)"
    )
    parser.add_argument(
        "--target", choices=list(target_names()), default=default_target(),
        help="registered machine target (default: cell, or REPRO_TARGET)",
    )
    parser.add_argument("--optimize", action="store_true",
                        help="run the IR optimiser")
    parser.add_argument("--demand-load", action="store_true",
                        help="enable on-demand code loading")
    parser.add_argument(
        "--cache", choices=list(CACHE_KIND_CHOICES),
        default="none",
        help="default software cache for un-annotated offloads",
    )
    parser.add_argument(
        "--wordaddr", choices=["hybrid", "emulate"], default="hybrid",
        help="Section 5 addressing mode on word-addressed targets",
    )
    parser.add_argument("--dump-ir", action="store_true",
                        help="print the compiled IR instead of running")
    parser.add_argument(
        "--dump-after", choices=list(DEFAULT_PASS_NAMES), default=None,
        metavar="PASS",
        help="run the pipeline through PASS, print its dump, and exit "
             f"(one of: {', '.join(DEFAULT_PASS_NAMES)})",
    )
    parser.add_argument(
        "--time-passes", action="store_true",
        help="print per-pass compile timings to stderr",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed compile cache directory "
             "(also via REPRO_COMPILE_CACHE)",
    )
    parser.add_argument(
        "--emit-artifact", default=None, metavar="PATH",
        help="write the compiled program as a JSON artifact and exit",
    )
    parser.add_argument("--perf", action="store_true",
                        help="print performance counters after the run")
    parser.add_argument(
        "--record-races", action="store_true",
        help="record DMA races instead of aborting on the first one",
    )
    parser.add_argument(
        "--engine", choices=list(ENGINE_NAMES), default=None,
        help="execution engine (default: the compiled closure engine; "
             "'codegen' runs generated Python source)",
    )
    parser.add_argument(
        "--dump-codegen", action="store_true",
        help="print the codegen engine's generated Python module for "
             "the compiled program instead of running it",
    )
    parser.add_argument(
        "--policy", choices=list(POLICY_NAMES), default=None,
        help="offload scheduling policy (enables explicit scheduling: "
             "upload modelling, sched.* trace events, utilization summary)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=None, metavar="N",
        help="bound each accelerator's ready queue at N jobs (0 = "
             "unbounded; default: the target's sched_queue_depth); a "
             "full queue stalls the host (backpressure). Implies "
             "--policy greedy when no policy is given",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a cycle-accurate event trace of the run to FILE "
             "('-' for stdout)",
    )
    parser.add_argument(
        "--trace-format", choices=["chrome", "timeline", "profile"],
        default="chrome",
        help="trace export format: Chrome/Perfetto trace_event JSON "
             "(default), a flat text timeline, or a per-offload profile",
    )
    parser.add_argument(
        "--report", default=None, metavar="FILE",
        help="write a canonical JSON run report (counters, histograms, "
             "derived metrics) to FILE ('-' for stdout); render/compare "
             "with repro.tools.report",
    )
    return parser


def export_trace(recorder, fmt: str) -> str:
    """Render a recorder in one of the ``--trace-format`` flavours."""
    if fmt == "chrome":
        return chrome_trace_json(recorder)
    if fmt == "timeline":
        return format_timeline(recorder)
    return format_profile(offload_profile(recorder))


def write_trace(recorder, path: str, fmt: str) -> None:
    text = export_trace(recorder, fmt)
    dropped = recorder.dropped
    if path == "-":
        sys.stdout.write(text)
        if dropped:
            print(
                f"warning: trace truncated, {dropped} oldest events "
                f"dropped (raise TraceRecorder capacity)",
                file=sys.stderr,
            )
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    note = f" ({dropped} oldest events dropped)" if dropped else ""
    print(
        f"-- trace: {len(recorder)} events -> {path}{note}", file=sys.stderr
    )


def _compile(args, source: str):
    """Compile per the parsed flags; returns the program (or None when a
    --dump-after / --time-passes-only pipeline run already finished)."""
    options = CompileOptions(
        wordaddr_mode=args.wordaddr,
        default_cache=args.cache,
        optimize=args.optimize,
        demand_load=args.demand_load,
    )
    config = resolve_target(args.target)
    if args.dump_after is not None or args.time_passes:
        # Debugging hooks need the pass pipeline itself; bypass the
        # compile cache so every pass actually runs and is timed.
        manager = PassManager.default()
        dump_after = (args.dump_after,) if args.dump_after else ()
        ctx = manager.run(
            source,
            config,
            options,
            filename=args.source,
            stop_after=args.dump_after,
            dump_after=dump_after,
        )
        if args.time_passes:
            print(format_timings(ctx.timings), file=sys.stderr)
        if args.dump_after is not None:
            print(ctx.dumps[args.dump_after])
            return None
        return ctx.program
    cache = cache_at(args.cache_dir) if args.cache_dir else None
    return compile_program(
        source, config, options, filename=args.source, cache=cache
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = resolve_target(args.target)
    if args.source.endswith(".json"):
        try:
            program = load_program(args.source)
        except (OSError, ArtifactError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if program.target_name != config.name:
            try:
                config = resolve_target(
                    program.target_name, source="artifact target_name"
                )
            except ValueError:
                print(
                    f"error: artifact targets unknown machine "
                    f"{program.target_name!r}",
                    file=sys.stderr,
                )
                return 1
    else:
        try:
            with open(args.source, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        try:
            program = _compile(args, source)
        except CompileError as error:
            for diagnostic in error.diagnostics:
                print(diagnostic.render(), file=sys.stderr)
            return 1
        if program is None:
            return 0
    if args.emit_artifact is not None:
        try:
            save_program(program, args.emit_artifact)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(f"-- artifact written to {args.emit_artifact}", file=sys.stderr)
        return 0
    if args.dump_ir:
        print(format_program(program))
        return 0
    if args.dump_codegen:
        from repro.vm.codegen import generate_module_source

        source_text, _, fallbacks = generate_module_source(
            program, config.cost
        )
        print(source_text)
        if fallbacks:
            print(
                f"-- {fallbacks} function(s) fall back to the "
                f"closure-compiled engine",
                file=sys.stderr,
            )
        return 0
    sched = None
    if args.policy is not None or args.queue_depth:
        sched = SchedOptions(
            policy=args.policy or "greedy",
            queue_depth=args.queue_depth,
        )
    run_options = RunOptions(
        racecheck="record" if args.record_races else "raise",
        engine=args.engine,
        sched=sched,
    )
    machine = Machine(config)
    recorder = None
    if args.trace is not None:
        recorder = TraceRecorder()
        machine.attach_trace(recorder)
    hub = None
    if args.report is not None:
        hub = MetricsHub()
        machine.attach_metrics(hub)
    started = time.perf_counter()
    try:
        result = run_program(program, machine, run_options)
    except ValueError as error:
        # e.g. an unknown engine name in REPRO_VM_ENGINE
        print(f"error: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"runtime error: {error}", file=sys.stderr)
        return 2
    for core, value in result.output:
        print(f"[{core}] {value}")
    if recorder is not None:
        write_trace(recorder, args.trace, args.trace_format)
    if args.report is not None:
        report = collect_report(
            result,
            workload=os.path.splitext(os.path.basename(args.source))[0],
            hub=hub,
            wall_seconds=time.perf_counter() - started,
            engine=args.engine or DEFAULT_ENGINE,
            target=args.target,
        )
        if args.report == "-":
            sys.stdout.write(report_json(report))
        else:
            save_report(report, args.report)
            print(f"-- report written to {args.report}", file=sys.stderr)
    print(f"-- {result.cycles} simulated cycles on {config.name}", file=sys.stderr)
    if sched is not None and result.sched is not None:
        st = result.sched
        util = ", ".join(
            f"acc{i}={u:.0%}"
            for i, u in enumerate(st.utilization(result.cycles))
        )
        print(
            f"-- sched: policy={st.policy} jobs={st.jobs} "
            f"uploads={st.uploads} stalls={st.stalls} "
            f"(+{st.stall_cycles} cycles) "
            f"queue-high-water={st.queue_high_water}",
            file=sys.stderr,
        )
        print(f"-- sched utilization: {util}", file=sys.stderr)
    for finding in result.diagnostics:
        print(finding.render(), file=sys.stderr)
    if result.races:
        print(f"-- {len(result.races)} DMA race(s) recorded:", file=sys.stderr)
        for race in result.races:
            print(f"   {race.describe()}", file=sys.stderr)
    if args.perf:
        for name, value in sorted(result.perf().items()):
            print(f"   {name:32s} {value}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Compile and run an OffloadMini source file.

Usage::

    python -m repro.tools.run program.om [--target cell|smp|dsp]
        [--optimize] [--demand-load] [--cache none|direct|setassoc|victim]
        [--wordaddr hybrid|emulate] [--dump-ir] [--perf] [--record-races]

Exit status: 0 on success, 1 on compile errors, 2 on runtime traps.
"""

from __future__ import annotations

import argparse
import sys

from repro.compiler.driver import CompileOptions, compile_program
from repro.errors import CompileError, ReproError
from repro.ir.printer import format_program
from repro.machine.config import CELL_LIKE, DSP_WORD, SMP_UNIFORM
from repro.machine.machine import Machine
from repro.vm.interpreter import RunOptions, run_program

TARGETS = {"cell": CELL_LIKE, "smp": SMP_UNIFORM, "dsp": DSP_WORD}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run", description=__doc__.splitlines()[0]
    )
    parser.add_argument("source", help="OffloadMini source file")
    parser.add_argument(
        "--target", choices=sorted(TARGETS), default="cell",
        help="machine configuration (default: cell)",
    )
    parser.add_argument("--optimize", action="store_true",
                        help="run the IR optimiser")
    parser.add_argument("--demand-load", action="store_true",
                        help="enable on-demand code loading")
    parser.add_argument(
        "--cache", choices=["none", "direct", "setassoc", "victim"],
        default="none",
        help="default software cache for un-annotated offloads",
    )
    parser.add_argument(
        "--wordaddr", choices=["hybrid", "emulate"], default="hybrid",
        help="Section 5 addressing mode on word-addressed targets",
    )
    parser.add_argument("--dump-ir", action="store_true",
                        help="print the compiled IR instead of running")
    parser.add_argument("--perf", action="store_true",
                        help="print performance counters after the run")
    parser.add_argument(
        "--record-races", action="store_true",
        help="record DMA races instead of aborting on the first one",
    )
    parser.add_argument(
        "--engine", choices=["compiled", "reference"], default=None,
        help="execution engine (default: the compiled closure engine)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with open(args.source, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    options = CompileOptions(
        wordaddr_mode=args.wordaddr,
        default_cache=args.cache,
        optimize=args.optimize,
        demand_load=args.demand_load,
    )
    config = TARGETS[args.target]
    try:
        program = compile_program(source, config, options, filename=args.source)
    except CompileError as error:
        for diagnostic in error.diagnostics:
            print(diagnostic.render(), file=sys.stderr)
        return 1
    if args.dump_ir:
        print(format_program(program))
        return 0
    run_options = RunOptions(
        racecheck="record" if args.record_races else "raise",
        engine=args.engine,
    )
    try:
        result = run_program(program, Machine(config), run_options)
    except ValueError as error:
        # e.g. an unknown engine name in REPRO_VM_ENGINE
        print(f"error: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"runtime error: {error}", file=sys.stderr)
        return 2
    for core, value in result.output:
        print(f"[{core}] {value}")
    print(f"-- {result.cycles} simulated cycles on {config.name}", file=sys.stderr)
    if result.races:
        print(f"-- {len(result.races)} DMA race(s) recorded:", file=sys.stderr)
        for race in result.races:
            print(f"   {race.describe()}", file=sys.stderr)
    if args.perf:
        for name, value in sorted(result.perf().items()):
            print(f"   {name:32s} {value}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Render, diff and trend canonical run reports.

Usage::

    python -m repro.tools.report show REPORT [--format text|json|markdown]
    python -m repro.tools.report diff BASELINE NEW
        [--tolerance PATH=PCT ...] [--default-tolerance PCT]
        [--include-wall] [--format text|json]
    python -m repro.tools.report trend DIR [--metric PATH]
        [--format text|json]

``show`` pretty-prints one report (produced by ``repro.tools.run
--report`` or ``repro.tools.bench --reports``).  ``diff`` compares two
reports metric-by-metric: every flattened path (``simulated_cycles``,
``counters.dma.gets``, ``histograms.dma.wait_cycles[dma0].p90``, …)
must match within its tolerance, which defaults to exact for simulated
quantities and *ignored* for ``wall_seconds``.  ``trend`` walks a
directory of historical reports (sorted by filename) and tabulates one
metric over time.

Exit status follows the checker convention (:mod:`repro.tools.check`):

* 0 — clean: reports load and match within tolerances.
* 1 — the tool could not do its job (missing/malformed file, unknown
  metric path, bad tolerance spec).
* 3 — differences beyond tolerance (``diff`` only).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.report import (
    DEFAULT_IGNORE,
    ReportError,
    diff_reports,
    flatten_report,
    load_report,
    load_report_dir,
    trend_rows,
)

EXIT_CLEAN = 0
EXIT_ERROR = 1
EXIT_DIFFERENCES = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-report", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="render one report")
    show.add_argument("report", help="report JSON file")
    show.add_argument(
        "--format", choices=("text", "json", "markdown"), default="text"
    )

    diff = sub.add_parser("diff", help="compare two reports")
    diff.add_argument("baseline", help="baseline report JSON file")
    diff.add_argument("new", help="new report JSON file")
    diff.add_argument(
        "--tolerance", action="append", default=[], metavar="PATH=PCT",
        help="per-metric tolerance in percent; longest prefix wins; "
        "PCT may be 'ignore' (e.g. --tolerance derived=1.5 "
        "--tolerance counters.softcache=ignore)",
    )
    diff.add_argument(
        "--default-tolerance", type=float, default=0.0, metavar="PCT",
        help="tolerance for paths without a --tolerance entry "
        "(default: 0, exact match)",
    )
    diff.add_argument(
        "--include-wall", action="store_true",
        help="also compare wall_seconds (ignored by default)",
    )
    diff.add_argument("--format", choices=("text", "json"), default="text")

    trend = sub.add_parser("trend", help="tabulate a metric across reports")
    trend.add_argument("directory", help="directory of report JSON files")
    trend.add_argument(
        "--metric", default="simulated_cycles", metavar="PATH",
        help="flattened metric path (default: simulated_cycles)",
    )
    trend.add_argument("--format", choices=("text", "json"), default="text")
    return parser


# ------------------------------------------------------------------ show


_SUMMARY_FIELDS = (
    "workload", "target", "engine", "policy", "queue_depth",
    "simulated_cycles", "host_cycles", "instructions", "wall_seconds",
)


def format_report_text(obj: dict) -> str:
    lines = ["run report"]
    for key in _SUMMARY_FIELDS:
        lines.append(f"  {key:<18} {obj.get(key)}")
    for section in ("derived", "gauges", "counters"):
        values = obj.get(section) or {}
        if values:
            lines.append(f"{section}:")
            for key in sorted(values):
                lines.append(f"  {key:<34} {values[key]}")
    histograms = obj.get("histograms") or {}
    if histograms:
        lines.append("histograms:")
        lines.append(
            f"  {'metric':<34} {'count':>8} {'min':>8} {'p50':>8} "
            f"{'p90':>8} {'max':>8}"
        )
        for key in sorted(histograms):
            h = histograms[key]
            lines.append(
                f"  {key:<34} {h['count']:>8} {h['min']:>8} {h['p50']:>8} "
                f"{h['p90']:>8} {h['max']:>8}"
            )
    sched = obj.get("sched") or {}
    if sched:
        lines.append("sched:")
        for key in (
            "policy", "queue_depth", "jobs", "stalls", "stall_cycles",
            "uploads", "busy_cycles", "queue_high_water", "utilization",
        ):
            if key in sched:
                lines.append(f"  {key:<34} {sched[key]}")
    diagnostics = obj.get("diagnostics") or []
    if diagnostics:
        lines.append("diagnostics:")
        for item in diagnostics:
            lines.append(f"  {item}")
    return "\n".join(lines)


def format_report_markdown(obj: dict) -> str:
    lines = [
        f"## Run report: {obj.get('workload')} on {obj.get('target')}",
        "",
        "| field | value |",
        "| --- | --- |",
    ]
    for key in _SUMMARY_FIELDS:
        lines.append(f"| {key} | {obj.get(key)} |")
    for section in ("derived", "gauges", "counters"):
        values = obj.get(section) or {}
        if values:
            lines += ["", f"### {section}", "", "| metric | value |",
                      "| --- | --- |"]
            for key in sorted(values):
                lines.append(f"| {key} | {values[key]} |")
    histograms = obj.get("histograms") or {}
    if histograms:
        lines += ["", "### histograms", "",
                  "| metric | count | min | p50 | p90 | max |",
                  "| --- | --- | --- | --- | --- | --- |"]
        for key in sorted(histograms):
            h = histograms[key]
            lines.append(
                f"| {key} | {h['count']} | {h['min']} | {h['p50']} "
                f"| {h['p90']} | {h['max']} |"
            )
    return "\n".join(lines)


def cmd_show(args) -> int:
    obj = load_report(args.report)
    if args.format == "json":
        print(json.dumps(obj, sort_keys=True, indent=2))
    elif args.format == "markdown":
        print(format_report_markdown(obj))
    else:
        print(format_report_text(obj))
    return EXIT_CLEAN


# ------------------------------------------------------------------ diff


def parse_tolerances(specs: list[str]) -> dict:
    """``PATH=PCT`` pairs -> thresholds dict; PCT may be ``ignore``."""
    thresholds: dict = {}
    for spec in specs:
        path, sep, value = spec.partition("=")
        if not sep or not path:
            raise ValueError(
                f"bad --tolerance {spec!r}, expected PATH=PCT"
            )
        if value == "ignore":
            thresholds[path] = "ignore"
        else:
            try:
                thresholds[path] = float(value)
            except ValueError:
                raise ValueError(
                    f"bad --tolerance {spec!r}: {value!r} is not a "
                    f"number or 'ignore'"
                ) from None
    return thresholds


def cmd_diff(args) -> int:
    thresholds = parse_tolerances(args.tolerance)
    base = load_report(args.baseline)
    new = load_report(args.new)
    ignore = () if args.include_wall else DEFAULT_IGNORE
    entries = diff_reports(
        base, new,
        thresholds=thresholds,
        default_tolerance=args.default_tolerance,
        ignore=ignore,
    )
    if args.format == "json":
        print(json.dumps(
            [
                {
                    "metric": e.metric, "base": e.base, "new": e.new,
                    "pct": None if e.pct is None else round(e.pct, 4),
                    "tolerance": e.tolerance,
                }
                for e in entries
            ],
            sort_keys=True,
        ))
    else:
        if not entries:
            print(
                f"reports match: {args.new} vs baseline {args.baseline}"
            )
        else:
            print(
                f"{len(entries)} difference(s): {args.new} vs baseline "
                f"{args.baseline}"
            )
            for entry in entries:
                print(f"  {entry.describe()}")
    return EXIT_DIFFERENCES if entries else EXIT_CLEAN


# ------------------------------------------------------------------ trend


def cmd_trend(args) -> int:
    reports = load_report_dir(args.directory)
    if not reports:
        print(f"no report files in {args.directory}", file=sys.stderr)
        return EXIT_ERROR
    known = set(flatten_report(reports[0][1]))
    if args.metric not in known:
        print(
            f"metric {args.metric!r} not present in {reports[0][0]}; "
            f"try e.g. {', '.join(sorted(known)[:6])}",
            file=sys.stderr,
        )
        return EXIT_ERROR
    rows = trend_rows(reports, args.metric)
    if args.format == "json":
        print(json.dumps(rows, sort_keys=True))
        return EXIT_CLEAN
    print(f"{args.metric}:")
    width = max(len(row["name"]) for row in rows)
    for row in rows:
        delta = row.get("delta_pct")
        suffix = "" if delta is None else f"  ({delta:+.2f}%)"
        print(f"  {row['name']:<{width}}  {row['value']}{suffix}")
    return EXIT_CLEAN


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "show":
            return cmd_show(args)
        if args.command == "diff":
            return cmd_diff(args)
        return cmd_trend(args)
    except (ReportError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())

"""Scheduling-policy explorer: run a workload under each policy.

Usage::

    python -m repro.tools.sched [program.om | --corpus figure2|game-demo]
        [--target cell|smp|dsp|apu|manycore] [--policy NAME] [--queue-depth N]
        [--admission stall|trap] [--engine compiled|reference]
        [--frames N] [--trace FILE] [--trace-format chrome|timeline]
        [--json] [--require locality<greedy]

Without ``--policy`` every policy runs and a comparison table is
printed (simulated cycles, uploads, stalls, queue high-water,
utilization).  With ``--policy`` only that policy runs and the full
scheduler accounting is shown.

``--require locality<greedy`` exits 4 unless the locality policy's
simulated cycles are strictly below greedy's — the gate the CI sched
job applies to the Figure 2 frame loop.

Exit status: 0 on success, 1 on compile/usage errors, 2 on runtime
traps, 4 on a failed ``--require`` gate.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.compiler.driver import CompileOptions, compile_program
from repro.errors import CompileError, ReproError
from repro.game.sources import figure2_source, game_demo_source
from repro.machine.config import default_target, resolve_target, target_names
from repro.machine.machine import Machine
from repro.obs import TraceRecorder
from repro.sched import POLICY_NAMES, SchedOptions
from repro.vm.interpreter import RunOptions, run_program

CORPUS = {
    "figure2": lambda frames: figure2_source(
        entity_count=48, pair_count=32, frames=frames
    ),
    "game-demo": lambda frames: game_demo_source(
        entity_count=16, pair_count=12, particles=8, frames=frames
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "source", nargs="?", default=None,
        help="OffloadMini source file (or use --corpus)",
    )
    parser.add_argument(
        "--corpus", choices=sorted(CORPUS), default=None,
        help="use a built-in workload instead of a source file",
    )
    parser.add_argument(
        "--frames", type=int, default=8,
        help="frame count for --corpus workloads (default: 8)",
    )
    parser.add_argument(
        "--target", choices=list(target_names()), default=default_target(),
        help="registered machine target (default: cell, or REPRO_TARGET)",
    )
    parser.add_argument(
        "--policy", choices=list(POLICY_NAMES), default=None,
        help="run one policy (default: compare all)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=None, metavar="N",
        help="per-accelerator ready-queue bound (0 = unbounded; "
             "default: the target's sched_queue_depth)",
    )
    parser.add_argument(
        "--admission", choices=["stall", "trap"], default="stall",
        help="full-queue behaviour (default: stall = host backpressure)",
    )
    parser.add_argument(
        "--engine", choices=["compiled", "reference"], default=None,
        help="execution engine (default: the compiled closure engine)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="export a trace of the last policy run to FILE "
             "('-' for stdout); includes the sched lane",
    )
    parser.add_argument(
        "--trace-format", choices=["chrome", "timeline"],
        default="chrome",
        help="trace export format (default: chrome)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the comparison as canonical JSON instead of a table",
    )
    parser.add_argument(
        "--require", default=None, metavar="A<B",
        help="exit 4 unless policy A's cycles are strictly below "
             "policy B's (e.g. 'locality<greedy')",
    )
    return parser


def _load_source(args) -> str | None:
    if args.corpus is not None:
        return CORPUS[args.corpus](args.frames)
    if args.source is None:
        print(
            "error: give a source file or --corpus figure2|game-demo",
            file=sys.stderr,
        )
        return None
    try:
        with open(args.source, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return None


def run_policy(
    program, config, policy: str, args, recorder=None
) -> dict:
    """One policy run; returns its row of the comparison table."""
    machine = Machine(config)
    if recorder is not None:
        machine.attach_trace(recorder)
    sched = SchedOptions(
        policy=policy,
        queue_depth=args.queue_depth,
        admission=args.admission,
    )
    result = run_program(
        program, machine, RunOptions(engine=args.engine, sched=sched)
    )
    stats = result.sched
    return {
        "policy": policy,
        "simulated_cycles": result.cycles,
        **stats.as_dict(result.cycles),
    }


def format_table(rows: list[dict]) -> str:
    header = (
        f"{'policy':15s} {'cycles':>12} {'uploads':>8} {'stalls':>7} "
        f"{'stall-cyc':>10} {'q-hwm':>6} {'busy%':>7}"
    )
    lines = [header, "-" * len(header)]
    baseline = rows[0]["simulated_cycles"]
    for row in rows:
        busy = (
            sum(row["utilization"]) / len(row["utilization"])
            if row.get("utilization")
            else 0.0
        )
        rel = row["simulated_cycles"] / baseline if baseline else 1.0
        lines.append(
            f"{row['policy']:15s} {row['simulated_cycles']:>12} "
            f"{row['uploads']:>8} {row['stalls']:>7} "
            f"{row['stall_cycles']:>10} {row['queue_high_water']:>6} "
            f"{busy:>6.1%}  ({rel:.4f}x vs {rows[0]['policy']})"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    source = _load_source(args)
    if source is None:
        return 1
    config = resolve_target(args.target)
    try:
        program = compile_program(source, config, CompileOptions())
    except CompileError as error:
        for diagnostic in error.diagnostics:
            print(diagnostic.render(), file=sys.stderr)
        return 1

    policies = [args.policy] if args.policy else list(POLICY_NAMES)
    rows = []
    recorder = None
    try:
        for index, policy in enumerate(policies):
            # Only the last policy run is traced (one file, one lane set).
            if args.trace is not None and index == len(policies) - 1:
                recorder = TraceRecorder()
            rows.append(
                run_policy(program, config, policy, args, recorder)
            )
    except ReproError as error:
        print(f"runtime error: {error}", file=sys.stderr)
        return 2

    if args.json:
        payload = {"target": config.name, "policies": rows}
        print(json.dumps(payload, sort_keys=True, separators=(",", ":")))
    else:
        print(format_table(rows))

    if recorder is not None:
        from repro.tools.run import write_trace

        write_trace(recorder, args.trace, args.trace_format)

    if args.require is not None:
        left, _, right = args.require.partition("<")
        cycles = {row["policy"]: row["simulated_cycles"] for row in rows}
        if left not in cycles or right not in cycles:
            print(
                f"error: --require names policies not run "
                f"({args.require!r}; ran {', '.join(cycles)})",
                file=sys.stderr,
            )
            return 1
        if not cycles[left] < cycles[right]:
            print(
                f"requirement failed: {left} ({cycles[left]} cycles) is "
                f"not below {right} ({cycles[right]} cycles)",
                file=sys.stderr,
            )
            return 4
        print(
            f"-- requirement holds: {left} {cycles[left]} < "
            f"{right} {cycles[right]} cycles",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

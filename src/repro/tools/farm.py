"""Run a batch of simulation jobs across a worker-process farm.

Usage::

    python -m repro.tools.farm [batch.json] [--corpus mixed|figure2|determinism]
        [--workers N] [--serial] [--cache-dir DIR] [--repeat K]
        [--count N] [--seed N] [--engine ENGINE] [--target TARGET]
        [--timeout S] [--retries N] [--start-method fork|spawn|forkserver]
        [--out FILE] [--reports DIR] [--jsonl FILE] [--include-reports]
        [--emit-batch FILE] [--quiet]

The batch comes from a JSON batch file (see :mod:`repro.farm.batch`) or
one of the named corpora via ``--corpus``.  ``--repeat`` runs the same
batch K times on one persistent pool: the first pass is cold, every
later pass is warm (zero compiles, zero codegen translations) — the
summary records both, which is what the CI farm job asserts on.
``--serial`` runs the identical execution path inline in this process,
producing byte-identical per-job reports: the baseline that
``--reports`` directories are diffed against.

Exit status: 0 when every job succeeded, 1 on usage errors, 2 when any
job failed (the batch still drains; failures are in the summary).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.farm import (
    CORPORA,
    Farm,
    jobs_to_json,
    load_jobs,
    run_jobs_serial,
    summary_json,
)
from repro.machine.config import target_names
from repro.sched import POLICY_NAMES
from repro.vm.interpreter import ENGINE_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-farm", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "batch", nargs="?", default=None,
        help="JSON batch file (a job list, or {kind, jobs}); omit when "
             "using --corpus",
    )
    parser.add_argument(
        "--corpus", choices=sorted(CORPORA), default=None,
        help="generate a named batch instead of reading a file",
    )
    parser.add_argument(
        "--count", type=int, default=16, metavar="N",
        help="job count for --corpus figure2 (default: 16)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="corpus seed for --corpus mixed (default: 0)",
    )
    parser.add_argument(
        "--engine", choices=list(ENGINE_NAMES), default=None,
        help="execution engine for generated corpora (default: each "
             "corpus's own choice)",
    )
    parser.add_argument(
        "--target", choices=list(target_names()), default=None,
        help="target for --corpus figure2 (default: cell)",
    )
    parser.add_argument(
        "--policy", choices=list(POLICY_NAMES), default=None,
        help="scheduling policy for --corpus figure2 (default: locality)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker-process pool size (default: 2)",
    )
    parser.add_argument(
        "--serial", action="store_true",
        help="run the batch inline in this process (the byte-identical "
             "baseline; ignores --workers)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared content-addressed compile-cache directory "
             "(also via REPRO_COMPILE_CACHE)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="K",
        help="run the batch K times on the same pool (cold then warm; "
             "default: 1)",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0, metavar="S",
        help="default per-job wall-clock budget in seconds; 0 disables "
             "(default: 300)",
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="attempts per job for crash/timeout failures (default: 2)",
    )
    parser.add_argument(
        "--start-method", choices=["fork", "spawn", "forkserver"],
        default=None,
        help="multiprocessing start method (default: fork where "
             "available)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the run summary JSON to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--reports", default=None, metavar="DIR",
        help="write each job's canonical RunReport JSON into DIR "
             "(later batches overwrite; diffable against a --serial run)",
    )
    parser.add_argument(
        "--jsonl", default=None, metavar="FILE",
        help="stream per-job result records to FILE as JSON lines, in "
             "completion order ('-' for stdout)",
    )
    parser.add_argument(
        "--include-reports", action="store_true",
        help="embed full per-job reports in the --out summary",
    )
    parser.add_argument(
        "--emit-batch", default=None, metavar="FILE",
        help="write the resolved batch as a batch file and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-batch stderr summary lines",
    )
    return parser


def resolve_jobs(args) -> list:
    """Build the job list from the parsed flags (ValueError on misuse)."""
    if (args.batch is None) == (args.corpus is None):
        raise ValueError("provide a batch file or --corpus (not both)")
    if args.batch is not None:
        return load_jobs(args.batch)
    if args.corpus == "mixed":
        return CORPORA["mixed"](seed=args.seed, engine=args.engine)
    if args.corpus == "figure2":
        if args.count < 1:
            raise ValueError(f"--count must be >= 1, got {args.count}")
        kwargs = {"count": args.count}
        if args.target is not None:
            kwargs["target"] = args.target
        if args.engine is not None:
            kwargs["engine"] = args.engine
        if args.policy is not None:
            kwargs["policy"] = args.policy
        return CORPORA["figure2"](**kwargs)
    return CORPORA["determinism"]()


def report_path(directory: str, result) -> str:
    """Where a job's canonical report file lives under ``--reports``."""
    name = (
        f"job{result.index:03d}__{result.job.workload}"
        f"__{result.job.target}.json"
    )
    return os.path.join(directory, name)


def _writers(args):
    """Build the streaming ``on_result`` callback from the output flags."""
    jsonl_handle = None
    if args.jsonl is not None:
        jsonl_handle = (
            sys.stdout if args.jsonl == "-"
            else open(args.jsonl, "w", encoding="utf-8")
        )
    if args.reports is not None:
        os.makedirs(args.reports, exist_ok=True)

    def on_result(result) -> None:
        if jsonl_handle is not None:
            line = json.dumps(
                result.as_dict(include_report=True),
                sort_keys=True, separators=(",", ":"),
            )
            jsonl_handle.write(line + "\n")
            jsonl_handle.flush()
        if args.reports is not None and result.status == "ok":
            text = json.dumps(
                result.report, sort_keys=True, separators=(",", ":")
            )
            with open(
                report_path(args.reports, result), "w", encoding="utf-8"
            ) as handle:
                handle.write(text + "\n")

    def close() -> None:
        if jsonl_handle is not None and jsonl_handle is not sys.stdout:
            jsonl_handle.close()

    return on_result, close


def _describe(summary, label: str) -> str:
    parts = [
        f"-- {label}: {summary.ok}/{summary.jobs} ok",
        f"{summary.wall_seconds:.2f}s",
        f"{summary.jobs_per_sec:.1f} jobs/s",
        f"compiles={summary.compiles}",
        f"translations={summary.translations}",
        f"warm={summary.warm_jobs}",
    ]
    if summary.failed:
        parts.insert(1, f"{summary.failed} FAILED")
    if summary.retried:
        parts.append(f"retried={summary.retried}")
    return " ".join(parts)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        jobs = resolve_jobs(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.repeat < 1:
        print(f"error: --repeat must be >= 1, got {args.repeat}",
              file=sys.stderr)
        return 1
    if args.emit_batch is not None:
        text = jobs_to_json(jobs)
        if args.emit_batch == "-":
            sys.stdout.write(text)
        else:
            with open(args.emit_batch, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"-- batch written to {args.emit_batch}", file=sys.stderr)
        return 0
    on_result, close_writers = _writers(args)
    summaries = []
    try:
        if args.serial:
            for _ in range(args.repeat):
                summaries.append(
                    run_jobs_serial(
                        jobs, cache_dir=args.cache_dir, on_result=on_result
                    )
                )
        else:
            try:
                farm = Farm(
                    workers=args.workers,
                    cache_dir=args.cache_dir,
                    timeout=args.timeout,
                    max_attempts=args.retries,
                    start_method=args.start_method,
                )
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 1
            with farm:
                for _ in range(args.repeat):
                    summaries.append(farm.run_batch(jobs, on_result=on_result))
    finally:
        close_writers()
    workers = 0 if args.serial else args.workers
    if not args.quiet:
        for number, summary in enumerate(summaries):
            label = "serial" if args.serial else f"batch {number}"
            print(_describe(summary, label), file=sys.stderr)
        for summary in summaries:
            for failure in summary.failures:
                print(
                    f"-- FAILED job {failure.index} "
                    f"({failure.job.workload}/{failure.job.target}): "
                    f"{failure.reason} after {failure.attempts} attempt(s): "
                    f"{failure.detail}",
                    file=sys.stderr,
                )
    if args.out is not None:
        text = summary_json(
            summaries, workers=workers,
            include_reports=args.include_reports,
        )
        if args.out == "-":
            sys.stdout.write(text)
        else:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"-- summary written to {args.out}", file=sys.stderr)
    return 2 if any(s.failed for s in summaries) else 0


if __name__ == "__main__":
    sys.exit(main())

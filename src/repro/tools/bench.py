"""Wall-clock benchmark: all three execution engines head to head.

Measures *host* execution time (Python wall clock, not simulated cycles)
of the reference decode loop, the closure-compiled engine and the
source-codegen engine over the paper's workloads, verifies along the way
that all engines observe identical simulated results, and writes a
machine-readable report to ``BENCH_vm.json``.

One-time translation cost (IR -> closures for the compiled engine,
IR -> generated Python source for the codegen engine) is timed
separately via :func:`repro.vm.warm_translations` and reported as
``*_translate_seconds``, so the per-engine ``*_seconds`` columns and
every ``speedup`` ratio measure steady-state simulation only.

Usage::

    PYTHONPATH=src python -m repro.tools.bench [--out BENCH_vm.json]
        [--repeats 3] [--quick] [--trace FILE]
        [--trace-format chrome|timeline|profile] [--policy NAME]
        [--target NAME ...] [--reports DIR]

The headline numbers are on the Figure 2 game-frame workload: the
acceptance target is >= 3x for the compiled engine and >= 7x (aim 10x)
for the codegen engine over the reference.  The report also carries a
``scheduler`` section: simulated game-frame cycles under every
scheduling policy, with the locality-vs-greedy ratio the CI sched job
gates on — and a ``targets`` section: the same game frame on each
``--target`` (default cell, apu, manycore), with simulated cycles, DMA
bytes moved, scheduler stall cycles and cold code uploads per target.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import tempfile
import time

from repro.compiler.cache import CACHE_ENV_VAR, CompileCache, compile_cache_key
from repro.compiler.driver import CompileOptions, compile_program
from repro.ir.serialize import program_to_json
from repro.machine.config import resolve_target, target_names
from repro.machine.machine import Machine
from repro.game.sources import (
    ai_kernel_source,
    figure2_source,
    game_demo_source,
    move_loop_source,
    word_struct_source,
)
from repro.sched import POLICY_NAMES, SchedOptions
from repro.vm.compiled import warm_translations
from repro.vm.interpreter import RunOptions, run_program

#: The engines the workload matrix times, reference first.
BENCH_ENGINES = ("reference", "compiled", "codegen")

#: Layout version of ``BENCH_vm.json``; bump when fields are renamed
#: or removed (``benchmarks/wallclock.py --validate`` checks it).
BENCH_SCHEMA_VERSION = 3

#: Default targets for the per-target game-frame portability section:
#: the paper's distributed-memory machine plus the two registry presets
#: whose cost structures bracket it (unified memory / many accelerators).
BENCH_TARGETS = ("cell", "apu", "manycore")

#: Default pool sizes for the farm throughput-scaling section.
BENCH_FARM_WORKERS = (1, 2, 4)


def workloads(quick: bool) -> list[dict]:
    """The benchmark matrix.  ``game-frame`` is the headline workload."""
    scale = 1 if quick else 2
    return [
        {
            "name": "game-frame",
            "description": "Figure 2 frame loop, offloaded (headline)",
            "source": figure2_source(
                entity_count=48 * scale,
                pair_count=32 * scale,
                frames=2 * scale,
            ),
            "config": "cell",
            "options": CompileOptions(),
        },
        {
            "name": "game-frame-sequential",
            "description": "Figure 2 frame loop, host only",
            "source": figure2_source(
                entity_count=48 * scale,
                pair_count=32 * scale,
                frames=2 * scale,
                offloaded=False,
            ),
            "config": "cell",
            "options": CompileOptions(),
        },
        {
            "name": "ai-kernel-cached",
            "description": "Section 4.1 AI pass through a direct cache",
            "source": ai_kernel_source(entity_count=32 * scale),
            "config": "cell",
            "options": CompileOptions(),
        },
        {
            "name": "move-loop-accessor",
            "description": "Section 4.2 locality loop, accessor-staged",
            "source": move_loop_source(
                object_count=32 * scale, use_accessor=True, cache="direct"
            ),
            "config": "cell",
            "options": CompileOptions(),
        },
        {
            "name": "word-struct",
            "description": "Section 5 word-addressed packet loop",
            "source": word_struct_source(packet_count=32 * scale),
            "config": "dsp",
            "options": CompileOptions(),
        },
        {
            "name": "game-demo",
            "description": "Whole-frame pipeline, three offloads per frame",
            "source": game_demo_source(
                entity_count=16 * scale,
                pair_count=12 * scale,
                particles=8 * scale,
                frames=scale,
            ),
            "config": "cell",
            "options": CompileOptions(),
        },
    ]


def _time_run(program, config, engine: str, sched=None) -> tuple[float, object]:
    """One timed execution on a fresh machine (machine build excluded)."""
    machine = Machine(config)
    options = RunOptions(engine=engine, sched=sched)
    start = time.perf_counter()
    result = run_program(program, machine, options)
    elapsed = time.perf_counter() - start
    return elapsed, result


def bench_workload(spec: dict, repeats: int, sched=None) -> dict:
    config = resolve_target(spec["config"])
    program = compile_program(spec["source"], config, spec["options"])

    # Pay each engine's one-time translation cost up front, timed
    # separately, so the per-run columns (and every speedup ratio)
    # measure steady-state simulation only.
    translate = {}
    for engine in ("compiled", "codegen"):
        start = time.perf_counter()
        warm_translations(program, Machine(config), engine=engine)
        translate[engine] = time.perf_counter() - start

    # Warm-up runs double as the three-way equivalence check.
    results = {}
    for engine in BENCH_ENGINES:
        _, results[engine] = _time_run(program, config, engine, sched)
    ref_result = results["reference"]
    identical = all(
        results[engine].output == ref_result.output
        and results[engine].cycles == ref_result.cycles
        and results[engine].machine.perf.as_dict()
        == ref_result.machine.perf.as_dict()
        for engine in BENCH_ENGINES[1:]
    )

    times = {engine: [] for engine in BENCH_ENGINES}
    for _ in range(repeats):
        for engine in BENCH_ENGINES:
            elapsed, _ = _time_run(program, config, engine, sched)
            times[engine].append(elapsed)

    ref_s = min(times["reference"])
    compiled_s = min(times["compiled"])
    codegen_s = min(times["codegen"])
    return {
        "name": spec["name"],
        "description": spec["description"],
        "config": spec["config"],
        "simulated_cycles": ref_result.cycles,
        "reference_seconds": round(ref_s, 6),
        "compiled_seconds": round(compiled_s, 6),
        "codegen_seconds": round(codegen_s, 6),
        "compiled_translate_seconds": round(translate["compiled"], 6),
        "codegen_translate_seconds": round(translate["codegen"], 6),
        "speedup": round(ref_s / compiled_s, 3),
        "codegen_speedup": round(ref_s / codegen_s, 3),
        "codegen_vs_compiled": round(compiled_s / codegen_s, 3),
        "engines_identical": identical,
        # Full counter snapshot of the (engine-identical) run, so the
        # report carries the paper's per-experiment quantities — cache
        # hit rates, DMA bytes, dispatch probes — alongside the timings.
        "perf_counters": ref_result.machine.perf.as_dict(),
    }


def bench_scheduler(quick: bool) -> dict:
    """Per-policy simulated cycles on the Figure 2 game-frame workload.

    Runs the headline frame loop under every scheduling policy (with
    cold code-upload modelling on) and reports simulated cycles,
    uploads and stalls per policy, plus the locality-vs-greedy ratio —
    the quantity the CI sched job gates on (< 1.0 means the warm-core
    policy beat rotation).
    """
    scale = 1 if quick else 2
    source = figure2_source(
        entity_count=48 * scale, pair_count=32 * scale, frames=8
    )
    config = resolve_target("cell")
    program = compile_program(source, config, CompileOptions())
    policies = {}
    for policy in POLICY_NAMES:
        _, result = _time_run(
            program, config, "compiled", SchedOptions(policy=policy)
        )
        policies[policy] = {
            "simulated_cycles": result.cycles,
            **result.sched.as_dict(result.cycles),
        }
    greedy = policies["greedy"]["simulated_cycles"]
    locality = policies["locality"]["simulated_cycles"]
    return {
        "workload": "game-frame",
        "frames": 8,
        "policies": policies,
        "locality_vs_greedy": round(locality / greedy, 6),
    }


def bench_targets(quick: bool, targets) -> dict:
    """The same game frame on every requested target, one row each.

    This is the portability-matrix view of the benchmark: one source,
    compiled per target through the registry, run on the compiled
    engine under the locality policy (per-target queue depths and
    upload costs bind).  Rows report the quantities the presets differ
    on — simulated cycles, DMA bytes moved, scheduler stall cycles and
    cold code uploads — so the cost-structure story (apu moves no DMA,
    manycore pays uploads and backpressure) is visible in the report.
    """
    scale = 1 if quick else 2
    source = figure2_source(
        entity_count=48 * scale, pair_count=32 * scale, frames=4
    )
    rows = {}
    for name in targets:
        config = resolve_target(name)
        program = compile_program(source, config, CompileOptions())
        _, result = _time_run(
            program, config, "compiled", SchedOptions(policy="locality")
        )
        perf = result.machine.perf.as_dict()
        rows[name] = {
            "config": config.name,
            "accelerators": config.num_accelerators,
            "simulated_cycles": result.cycles,
            "dma_bytes": perf.get("dma.bytes_get", 0)
            + perf.get("dma.bytes_put", 0),
            "stall_cycles": perf.get("sched.stall_cycles", 0),
            "uploads": perf.get("sched.uploads", 0),
            "upload_bytes": perf.get("sched.upload_bytes", 0),
        }
    return {
        "workload": "game-frame",
        "frames": 4,
        "policy": "locality",
        "targets": rows,
    }


def bench_compile_cache(repeats: int) -> dict:
    """Cold vs warm ``compile_program`` on the Figure 2 game-frame program.

    Cold runs the full pass pipeline; warm hits the content-addressed
    compile cache and deserializes the stored artifact.  The acceptance
    bar for the cache is a >= 5x warm speedup with a byte-identical
    artifact.
    """
    source = figure2_source()
    config = resolve_target("cell")
    options = CompileOptions()
    # Single compiles are milliseconds; take the min over a few extra
    # reps so one scheduler hiccup doesn't skew the reported ratio.
    reps = max(7, repeats)
    # A process-wide REPRO_COMPILE_CACHE would make the "cold" runs
    # secretly warm; shadow it for the duration of this benchmark.
    saved_env = os.environ.pop(CACHE_ENV_VAR, None)
    try:
        return _bench_compile_cache(source, config, options, reps)
    finally:
        if saved_env is not None:
            os.environ[CACHE_ENV_VAR] = saved_env


def _bench_compile_cache(source, config, options, reps: int) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        cache = CompileCache(tmp)
        key = compile_cache_key(source, config, options)
        cold_program = compile_program(source, config, options)
        cache.store(key, cold_program)

        # Single compiles are milliseconds; a generational GC pass
        # triggered by the residue of earlier workloads would dwarf
        # them, so collect before each timing loop.
        gc.collect()
        cold_times = []
        for _ in range(reps):
            start = time.perf_counter()
            compile_program(source, config, options)
            cold_times.append(time.perf_counter() - start)

        gc.collect()
        warm_times = []
        warm_program = None
        for _ in range(reps):
            start = time.perf_counter()
            warm_program = compile_program(source, config, options, cache=cache)
            warm_times.append(time.perf_counter() - start)

        identical = program_to_json(warm_program) == program_to_json(
            cold_program
        )
    cold_s = min(cold_times)
    warm_s = min(warm_times)
    return {
        "workload": "game-frame",
        "cold_compile_seconds": round(cold_s, 6),
        "warm_compile_seconds": round(warm_s, 6),
        "compile_speedup": round(cold_s / warm_s, 3),
        "artifact_identical": identical,
    }


def bench_farm(quick: bool, worker_counts=BENCH_FARM_WORKERS) -> dict:
    """Warm-batch throughput of the simulation farm at each pool size.

    Runs the ``figure2`` corpus (16 jobs, 8 in quick mode) through
    :class:`repro.farm.Farm` at each requested worker count, sharing
    one compile-cache directory.  Each pool first runs the batch once
    to warm its workers (compile cache + in-process program memos),
    then the timed batches measure steady-state simulation throughput
    only — best of three, since a warm batch is milliseconds.  Rows
    carry jobs/sec, the speedup over the smallest pool, and scaling
    efficiency (speedup over worker count).  The ratios only mean
    anything when the host has the cores: ``host_cpus`` is recorded so
    a 1-core container's flat curve reads as a host limit, not a farm
    regression — the CI farm job gates the >= 2.5x-at-4-workers bar on
    hosts with >= 4 CPUs.
    """
    from repro.farm import Farm, figure2_batch

    count = 8 if quick else 16
    jobs = figure2_batch(count=count)
    rows = {}
    with tempfile.TemporaryDirectory() as tmp:
        for workers in worker_counts:
            with Farm(workers=workers, cache_dir=tmp) as farm:
                farm.run_batch(jobs)  # warm-up: fills cache + worker memos
                best = None
                for _ in range(3):
                    summary = farm.run_batch(jobs)
                    if best is None or summary.wall_seconds < best.wall_seconds:
                        best = summary
            rows[str(workers)] = {
                "seconds": round(best.wall_seconds, 6),
                "jobs_per_sec": round(best.jobs_per_sec, 3),
                "ok": best.ok,
                "compiles": best.compiles,
                "warm_jobs": best.warm_jobs,
            }
    base = rows[str(worker_counts[0])]["jobs_per_sec"]
    for workers in worker_counts:
        row = rows[str(workers)]
        speedup = row["jobs_per_sec"] / base if base else 0.0
        row["speedup"] = round(speedup, 3)
        row["scaling_efficiency"] = round(speedup / workers, 3)
    return {
        "workload": "figure2-batch",
        "jobs": count,
        "engine": "compiled",
        "policy": "locality",
        "host_cpus": os.cpu_count() or 1,
        "workers": rows,
    }


def emit_run_reports(quick: bool, targets, directory: str, sched=None) -> list[str]:
    """One canonical :class:`~repro.obs.report.RunReport` per bench cell.

    Each workload of the matrix gets a fresh, *untimed* run with a
    metrics hub attached (so the timed columns stay unpolluted by
    instrumentation), reported as ``{workload}__{target}.json``; the
    game-frame portability section adds
    ``game-frame-portability__{target}.json`` per target.  Reports
    carry no wall-clock, so the files are byte-reproducible and can be
    committed as CI baselines.
    """
    from repro.obs import MetricsHub, collect_report, save_report

    os.makedirs(directory, exist_ok=True)
    written = []

    def emit(name, source, target, options, run_sched):
        config = resolve_target(target)
        program = compile_program(source, config, options)
        machine = Machine(config)
        hub = MetricsHub()
        machine.attach_metrics(hub)
        result = run_program(
            program, machine, RunOptions(engine="compiled", sched=run_sched)
        )
        report = collect_report(
            result, workload=name, hub=hub, engine="compiled", target=target
        )
        path = os.path.join(directory, f"{name}__{target}.json")
        save_report(report, path)
        written.append(path)

    for spec in workloads(quick):
        emit(spec["name"], spec["source"], spec["config"], spec["options"],
             sched)
    scale = 1 if quick else 2
    portability_source = figure2_source(
        entity_count=48 * scale, pair_count=32 * scale, frames=4
    )
    for target in targets:
        emit(
            "game-frame-portability", portability_source, target,
            CompileOptions(), SchedOptions(policy="locality"),
        )
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--out", default="BENCH_vm.json",
        help="report path (default: BENCH_vm.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed repetitions per engine (minimum is reported)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller workloads, one repetition (CI smoke mode)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="also trace one compiled run of the headline game-frame "
             "workload and export it to FILE",
    )
    parser.add_argument(
        "--trace-format", choices=["chrome", "timeline", "profile"],
        default="chrome",
        help="export format for --trace (default: chrome)",
    )
    parser.add_argument(
        "--policy", choices=list(POLICY_NAMES), default=None,
        help="run the whole workload matrix under this scheduling "
             "policy (default: compat mode, no explicit scheduling)",
    )
    parser.add_argument(
        "--target", action="append", choices=list(target_names()),
        default=None, dest="targets", metavar="NAME",
        help="target(s) for the per-target game-frame section; repeat "
             f"to add more (default: {', '.join(BENCH_TARGETS)})",
    )
    parser.add_argument(
        "--reports", default=None, metavar="DIR",
        help="also write one canonical run report per workload/target "
             "cell to DIR (diff them with repro.tools.report)",
    )
    parser.add_argument(
        "--farm", action="append", type=int, default=None,
        dest="farm_workers", metavar="N",
        help="pool size(s) for the farm throughput-scaling section; "
             "repeat to add more (default: "
             f"{', '.join(str(n) for n in BENCH_FARM_WORKERS)})",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.quick else max(1, args.repeats)
    matrix_sched = (
        SchedOptions(policy=args.policy) if args.policy is not None else None
    )

    results = []
    for spec in workloads(args.quick):
        entry = bench_workload(spec, repeats, matrix_sched)
        results.append(entry)
        status = "ok" if entry["engines_identical"] else "MISMATCH"
        print(
            f"{entry['name']:24s} ref {entry['reference_seconds']:8.4f}s  "
            f"compiled {entry['compiled_seconds']:8.4f}s "
            f"({entry['speedup']:5.2f}x)  "
            f"codegen {entry['codegen_seconds']:8.4f}s "
            f"({entry['codegen_speedup']:5.2f}x)  [{status}]"
        )

    if args.trace is not None:
        from repro.obs import TraceRecorder
        from repro.tools.run import write_trace

        headline_spec = next(
            s for s in workloads(args.quick) if s["name"] == "game-frame"
        )
        config = resolve_target(headline_spec["config"])
        program = compile_program(
            headline_spec["source"], config, headline_spec["options"]
        )
        machine = Machine(config)
        recorder = TraceRecorder()
        machine.attach_trace(recorder)
        run_program(program, machine, RunOptions(engine="compiled"))
        write_trace(recorder, args.trace, args.trace_format)

    scheduler = bench_scheduler(args.quick)
    for policy in POLICY_NAMES:
        entry = scheduler["policies"][policy]
        print(
            f"{'sched/' + policy:24s} {entry['simulated_cycles']:>12} "
            f"simulated cycles  uploads {entry['uploads']:3d}  "
            f"stalls {entry['stalls']:3d}"
        )
    print(
        f"{'sched locality/greedy':24s} "
        f"{scheduler['locality_vs_greedy']:.6f}"
    )

    target_matrix = bench_targets(args.quick, args.targets or BENCH_TARGETS)
    for name, row in target_matrix["targets"].items():
        print(
            f"{'target/' + name:24s} {row['simulated_cycles']:>12} "
            f"simulated cycles  dma-bytes {row['dma_bytes']:>8}  "
            f"stall-cyc {row['stall_cycles']:>8}  "
            f"uploads {row['uploads']:3d}"
        )

    compile_cache = bench_compile_cache(repeats)
    cache_status = "ok" if compile_cache["artifact_identical"] else "MISMATCH"
    print(
        f"{'compile-cache':24s} cold {compile_cache['cold_compile_seconds']:8.4f}s  "
        f"warm     {compile_cache['warm_compile_seconds']:8.4f}s  "
        f"speedup {compile_cache['compile_speedup']:5.2f}x  [{cache_status}]"
    )

    farm_counts = tuple(args.farm_workers or BENCH_FARM_WORKERS)
    farm = bench_farm(args.quick, farm_counts)
    for workers in farm_counts:
        row = farm["workers"][str(workers)]
        print(
            f"{'farm/' + str(workers) + 'w':24s} "
            f"{row['jobs_per_sec']:8.1f} jobs/s  "
            f"speedup {row['speedup']:5.2f}x  "
            f"efficiency {row['scaling_efficiency']:.2f}  "
            f"({row['ok']}/{farm['jobs']} ok, warm)"
        )

    product = 1.0
    codegen_product = 1.0
    for entry in results:
        product *= entry["speedup"]
        codegen_product *= entry["codegen_speedup"]
    geomean = product ** (1.0 / len(results))
    codegen_geomean = codegen_product ** (1.0 / len(results))
    headline = next(e for e in results if e["name"] == "game-frame")
    if args.reports is not None:
        written = emit_run_reports(
            args.quick, args.targets or BENCH_TARGETS, args.reports,
            matrix_sched,
        )
        print(f"-- {len(written)} run reports -> {args.reports}")

    report = {
        "benchmark": "vm-engine-wallclock",
        "schema_version": BENCH_SCHEMA_VERSION,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "repeats": repeats,
        "quick": args.quick,
        "policy": args.policy or "compat",
        "workloads": results,
        "scheduler": scheduler,
        "targets": target_matrix,
        "compile_cache": compile_cache,
        "farm": farm,
        "summary": {
            "geomean_speedup": round(geomean, 3),
            "geomean_codegen_speedup": round(codegen_geomean, 3),
            "game_frame_speedup": headline["speedup"],
            "game_frame_codegen_speedup": headline["codegen_speedup"],
            "game_frame_codegen_vs_compiled": headline["codegen_vs_compiled"],
            "locality_vs_greedy": scheduler["locality_vs_greedy"],
            "compile_cache_speedup": compile_cache["compile_speedup"],
            "farm_speedup": farm["workers"][str(farm_counts[-1])]["speedup"],
            "farm_jobs_per_sec": farm["workers"][str(farm_counts[-1])][
                "jobs_per_sec"
            ],
            "all_identical": all(e["engines_identical"] for e in results)
            and compile_cache["artifact_identical"],
        },
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"-- geomean compiled {geomean:.2f}x / codegen "
        f"{codegen_geomean:.2f}x, game-frame {headline['speedup']:.2f}x / "
        f"{headline['codegen_speedup']:.2f}x -> {args.out}"
    )
    if not report["summary"]["all_identical"]:
        print("error: engines diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Linear register-based intermediate representation.

Lowered OffloadMini executes as a sequence of simple instructions over an
unbounded virtual register file per function invocation.  Memory-space
distinctions are explicit at this level: every load/store names the space
it touches (``MAIN`` or ``LOCAL``), and accesses that cross the
accelerator/main-memory boundary are tagged ``outer`` so the interpreter
can route them through the offload's transfer strategy (raw DMA or a
software cache) — the compiled form of the paper's automatically
generated data-movement code.
"""

from repro.ir.instructions import (
    AccSpace,
    BinOp,
    Call,
    CJump,
    Const,
    Copy,
    DomainCall,
    Extract,
    FrameAddr,
    GlobalAddr,
    ICall,
    Insert,
    Instr,
    Intrinsic,
    Jump,
    Load,
    Move,
    OffloadJoin,
    OffloadLaunch,
    Ret,
    Store,
    Trap,
    UnOp,
)
from repro.ir.module import IRFunction, IRProgram, OffloadMeta
from repro.ir.printer import format_function, format_program
from repro.ir.serialize import (
    ARTIFACT_VERSION,
    ArtifactError,
    load_program,
    program_from_dict,
    program_from_json,
    program_to_dict,
    program_to_json,
    save_program,
)

__all__ = [
    "ARTIFACT_VERSION",
    "AccSpace",
    "ArtifactError",
    "BinOp",
    "CJump",
    "Call",
    "Const",
    "Copy",
    "DomainCall",
    "Extract",
    "FrameAddr",
    "GlobalAddr",
    "ICall",
    "IRFunction",
    "IRProgram",
    "Insert",
    "Instr",
    "Intrinsic",
    "Jump",
    "Load",
    "Move",
    "OffloadJoin",
    "OffloadLaunch",
    "OffloadMeta",
    "Ret",
    "Store",
    "Trap",
    "UnOp",
    "format_function",
    "format_program",
    "load_program",
    "program_from_dict",
    "program_from_json",
    "program_to_dict",
    "program_to_json",
    "save_program",
]

"""IR containers: functions, global layout, the compiled program."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.instructions import Instr, Jump, CJump
from repro.runtime.dispatch import DomainTable


@dataclass
class IRFunction:
    """One compiled function instance.

    ``space`` is ``"host"`` or ``"accel"``: the same source function may
    exist in both forms (automatic call-graph duplication), and an accel
    instance exists once per memory-space signature, suffixed
    ``$<signature>`` in the mangled name.

    Calling convention: arguments arrive in registers ``0..len(params)-1``;
    ``frame_size`` bytes of the executing core's fast memory are reserved
    per invocation for address-taken locals, arrays, class values and
    accessor staging buffers.
    """

    name: str
    params: list[str]
    space: str = "host"
    source_name: str = ""
    duplicate_id: str = ""
    num_regs: int = 0
    frame_size: int = 0
    code: list[Instr] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)

    def resolve_labels(self) -> None:
        """Validate that every jump target exists."""
        for instr in self.code:
            if isinstance(instr, Jump):
                if instr.label not in self.labels:
                    raise ValueError(
                        f"{self.name}: jump to unknown label {instr.label!r}"
                    )
            elif isinstance(instr, CJump):
                for label in (instr.then_label, instr.else_label):
                    if label not in self.labels:
                        raise ValueError(
                            f"{self.name}: jump to unknown label {label!r}"
                        )


@dataclass
class GlobalSlot:
    """One global variable's placement in main memory."""

    name: str
    address: int
    size: int


@dataclass
class OffloadMeta:
    """Per-offload-block compile-time products.

    ``domain`` is the runtime Figure 3 table (targets are accel IR
    function names); ``annotation_count`` is the number of domain
    entries the programmer wrote — the quantity that exploded in the
    Section 4.1 case study.
    """

    offload_id: int
    entry: str
    cache_kind: Optional[str]
    domain: DomainTable
    annotation_count: int
    capture_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        from repro.runtime.cachekinds import SOFT_CACHE_KINDS

        if self.cache_kind is not None and self.cache_kind not in SOFT_CACHE_KINDS:
            raise ValueError(
                f"OffloadMeta cache_kind must be None or one of "
                f"{SOFT_CACHE_KINDS}, got {self.cache_kind!r}"
            )


@dataclass
class IRProgram:
    """A fully compiled OffloadMini program, ready to run on a Machine."""

    functions: dict[str, IRFunction] = field(default_factory=dict)
    globals: dict[str, GlobalSlot] = field(default_factory=dict)
    #: Bytes to write into main memory at load time (address, data).
    init_image: list[tuple[int, bytes]] = field(default_factory=list)
    #: Host function id -> host IR function name (vtable slot values).
    function_ids: dict[int, str] = field(default_factory=dict)
    #: Class name -> vtable base address in main memory.
    vtables: dict[str, int] = field(default_factory=dict)
    offload_meta: dict[int, OffloadMeta] = field(default_factory=dict)
    entry: str = "main"
    #: First free main-memory byte after globals/vtables.
    data_end: int = 0
    target_name: str = ""

    def function(self, name: str) -> IRFunction:
        if name not in self.functions:
            raise KeyError(f"no IR function named {name!r}")
        return self.functions[name]

    def fid_of(self, function_name: str) -> int:
        for fid, name in self.function_ids.items():
            if name == function_name:
                return fid
        raise KeyError(f"no function id for {function_name!r}")

    def validate(self) -> None:
        """Structural sanity checks (jump targets, entry presence)."""
        if self.entry not in self.functions:
            raise ValueError(f"entry function {self.entry!r} missing")
        for function in self.functions.values():
            function.resolve_labels()

    # ------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """JSON-safe artifact dict (see :mod:`repro.ir.serialize`)."""
        from repro.ir.serialize import program_to_dict

        return program_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "IRProgram":
        """Reconstruct a program from :meth:`to_dict` output."""
        from repro.ir.serialize import program_from_dict

        return program_from_dict(data)

    # ------------------------------------------------------------ metrics

    def total_instructions(self) -> int:
        return sum(len(f.code) for f in self.functions.values())

    def accel_functions(self) -> list[IRFunction]:
        return [f for f in self.functions.values() if f.space == "accel"]

    def host_functions(self) -> list[IRFunction]:
        return [f for f in self.functions.values() if f.space == "host"]

"""Human-readable IR dumps (debugging aid)."""

from __future__ import annotations

from repro.ir.module import IRFunction, IRProgram


def format_function(function: IRFunction) -> str:
    """Render one function as indented text with label markers."""
    index_to_labels: dict[int, list[str]] = {}
    for label, index in function.labels.items():
        index_to_labels.setdefault(index, []).append(label)
    header = (
        f"func {function.name}({', '.join(function.params)}) "
        f"[space={function.space}, frame={function.frame_size}, "
        f"regs={function.num_regs}]"
    )
    lines = [header]
    for index, instr in enumerate(function.code):
        for label in sorted(index_to_labels.get(index, [])):
            lines.append(f"{label}:")
        text = f"  {index:4d}  {instr.describe()}"
        if instr.comment:
            text += f"    ; {instr.comment}"
        lines.append(text)
    for label in sorted(index_to_labels.get(len(function.code), [])):
        lines.append(f"{label}:")
    return "\n".join(lines)


def format_program(program: IRProgram) -> str:
    """Render the whole program: globals, vtables, functions."""
    lines = [f"; target: {program.target_name}"]
    for name, slot in sorted(program.globals.items()):
        lines.append(f"global {name} @ {slot.address:#x} ({slot.size} bytes)")
    for class_name, address in sorted(program.vtables.items()):
        lines.append(f"vtable {class_name} @ {address:#x}")
    for meta in program.offload_meta.values():
        lines.append(
            f"offload #{meta.offload_id} entry={meta.entry} "
            f"cache={meta.cache_kind} domain={len(meta.domain)} entries"
        )
    for name in sorted(program.functions):
        lines.append("")
        lines.append(format_function(program.functions[name]))
    return "\n".join(lines)

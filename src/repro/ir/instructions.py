"""IR instruction set.

Registers are small integers, dense per function.  Labels are symbolic
names resolved to instruction indices by :class:`repro.ir.module.IRFunction`.

Space semantics of :class:`Load`/:class:`Store`/:class:`Copy`:

* ``AccSpace.MAIN`` — main memory accessed *directly* (host code, or
  accelerator code on a shared-memory machine).
* ``AccSpace.LOCAL`` — the executing accelerator's local store.
* ``AccSpace.OUTER`` — main memory accessed *from an accelerator across
  the memory-space boundary*; the interpreter routes these through the
  offload's transfer strategy (bounce-buffer DMA or a software cache).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class AccSpace(enum.Enum):
    MAIN = "main"
    LOCAL = "local"
    OUTER = "outer"


#: Comparison spellings of :class:`BinOp`; they produce 0/1 and ignore
#: the signed/float flags.
COMPARE_OPS = frozenset(("==", "!=", "<", "<=", ">", ">="))


@dataclass
class Instr:
    """Base instruction; ``comment`` aids IR dumps only."""

    comment: str = field(default="", kw_only=True)

    def describe(self) -> str:
        return type(self).__name__.lower()


@dataclass
class Const(Instr):
    dst: int = 0
    value: object = 0  # int or float

    def describe(self) -> str:
        return f"r{self.dst} = const {self.value!r}"


@dataclass
class Move(Instr):
    dst: int = 0
    src: int = 0

    def describe(self) -> str:
        return f"r{self.dst} = r{self.src}"


@dataclass
class BinOp(Instr):
    """Arithmetic/logical op.  ``op`` is the source-level spelling.

    ``float_op`` selects float semantics; integer results are wrapped to
    32 bits (signed or unsigned per ``signed``) by the interpreter.
    """

    op: str = "+"
    dst: int = 0
    a: int = 0
    b: int = 0
    float_op: bool = False
    signed: bool = True
    #: Derived (translator fast path): True for the 0/1-valued
    #: comparison spellings, which ignore ``float_op``/``signed``.
    is_compare: bool = field(init=False, repr=False, compare=False, default=False)

    def __post_init__(self) -> None:
        self.is_compare = self.op in COMPARE_OPS

    def describe(self) -> str:
        suffix = "f" if self.float_op else ("s" if self.signed else "u")
        return f"r{self.dst} = r{self.a} {self.op}.{suffix} r{self.b}"


@dataclass
class UnOp(Instr):
    op: str = "-"
    dst: int = 0
    a: int = 0
    float_op: bool = False

    def describe(self) -> str:
        return f"r{self.dst} = {self.op} r{self.a}"


@dataclass
class Load(Instr):
    dst: int = 0
    addr: int = 0  # register holding a byte address
    size: int = 4
    space: AccSpace = AccSpace.MAIN
    signed: bool = True
    is_float: bool = False
    #: Derived: ``(size, signed, is_float)`` — the scalar-codec key the
    #: execution engines use to pick a cached ``struct.Struct``.
    scalar_key: tuple = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        self.scalar_key = (self.size, self.signed, self.is_float)

    def describe(self) -> str:
        kind = "f" if self.is_float else ("s" if self.signed else "u")
        return (
            f"r{self.dst} = load.{self.space.value}.{kind}{self.size} [r{self.addr}]"
        )


@dataclass
class Store(Instr):
    addr: int = 0
    src: int = 0
    size: int = 4
    space: AccSpace = AccSpace.MAIN
    is_float: bool = False
    #: Derived: the wrap-to-width mask applied to integer stores.
    mask: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        self.mask = (1 << (8 * self.size)) - 1

    def describe(self) -> str:
        kind = "f" if self.is_float else "i"
        return f"store.{self.space.value}.{kind}{self.size} [r{self.addr}] = r{self.src}"


@dataclass
class Copy(Instr):
    """Bulk byte copy between (possibly different) spaces.

    ``size_reg``, when set, names a register holding the length at run
    time (used by shared-memory lowering of ``dma_get``/``dma_put``);
    otherwise the static ``size`` applies.
    """

    dst_addr: int = 0
    src_addr: int = 0
    size: int = 0
    dst_space: AccSpace = AccSpace.MAIN
    src_space: AccSpace = AccSpace.MAIN
    size_reg: Optional[int] = None

    def describe(self) -> str:
        return (
            f"copy.{self.dst_space.value}<-{self.src_space.value} "
            f"[r{self.dst_addr}] = [r{self.src_addr}] ({self.size} bytes)"
        )


@dataclass
class Extract(Instr):
    """Extract a sub-word scalar from a loaded word (Section 5 lowering).

    ``offset`` is a register holding the byte offset within the word
    when ``const_offset`` is None, else the known constant offset.
    Charged at the ``word_extract`` cost (constant offsets) or twice
    that (variable offsets — extra shift computation).
    """

    dst: int = 0
    word: int = 0
    size: int = 1
    const_offset: Optional[int] = None
    offset: int = 0
    signed: bool = True
    #: Derived: value mask, sign bit and modulus for sign extension.
    mask: int = field(init=False, repr=False, compare=False, default=0)
    sign_bit: int = field(init=False, repr=False, compare=False, default=0)
    modulus: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        self.mask = (1 << (8 * self.size)) - 1
        self.sign_bit = 1 << (8 * self.size - 1)
        self.modulus = 1 << (8 * self.size)

    def describe(self) -> str:
        where = (
            f"+{self.const_offset}" if self.const_offset is not None
            else f"+r{self.offset}"
        )
        return f"r{self.dst} = extract{self.size} r{self.word}{where}"


@dataclass
class Insert(Instr):
    """Insert a sub-word scalar into a word (read-modify-write half)."""

    dst: int = 0
    word: int = 0
    value: int = 0
    size: int = 1
    const_offset: Optional[int] = None
    offset: int = 0
    #: Derived: value mask for the inserted field.
    mask: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        self.mask = (1 << (8 * self.size)) - 1

    def describe(self) -> str:
        where = (
            f"+{self.const_offset}" if self.const_offset is not None
            else f"+r{self.offset}"
        )
        return f"r{self.dst} = insert{self.size} r{self.word}{where} <- r{self.value}"


@dataclass
class FrameAddr(Instr):
    """dst = frame base + offset (the frame lives in the core's fast
    memory: LOCAL on an accelerator, MAIN on the host)."""

    dst: int = 0
    offset: int = 0

    def describe(self) -> str:
        return f"r{self.dst} = frame+{self.offset}"


@dataclass
class GlobalAddr(Instr):
    dst: int = 0
    name: str = ""

    def describe(self) -> str:
        return f"r{self.dst} = &{self.name}"


@dataclass
class Call(Instr):
    """Direct call to an IR function by mangled name."""

    dst: Optional[int] = None
    callee: str = ""
    args: list[int] = field(default_factory=list)

    def describe(self) -> str:
        args = ", ".join(f"r{a}" for a in self.args)
        dst = f"r{self.dst} = " if self.dst is not None else ""
        return f"{dst}call {self.callee}({args})"


@dataclass
class ICall(Instr):
    """Host-side indirect call through a host function id (vtable slot)."""

    dst: Optional[int] = None
    func_id: int = 0  # register holding the id
    args: list[int] = field(default_factory=list)

    def describe(self) -> str:
        args = ", ".join(f"r{a}" for a in self.args)
        dst = f"r{self.dst} = " if self.dst is not None else ""
        return f"{dst}icall [r{self.func_id}]({args})"


@dataclass
class DomainCall(Instr):
    """Accelerator-side dynamic dispatch through the offload's domain
    (Figure 3): outer-domain search on the host function id, inner-domain
    search on the duplicate signature."""

    dst: Optional[int] = None
    func_id: int = 0  # register holding the host function id
    duplicate_id: str = ""
    offload_id: int = 0
    args: list[int] = field(default_factory=list)

    def describe(self) -> str:
        args = ", ".join(f"r{a}" for a in self.args)
        dst = f"r{self.dst} = " if self.dst is not None else ""
        return (
            f"{dst}domain_call#{self.offload_id} [r{self.func_id}]"
            f"${self.duplicate_id}({args})"
        )


@dataclass
class Intrinsic(Instr):
    """Runtime intrinsic: print_*, math, dma_get/dma_put/dma_wait."""

    dst: Optional[int] = None
    name: str = ""
    args: list[int] = field(default_factory=list)

    def describe(self) -> str:
        args = ", ".join(f"r{a}" for a in self.args)
        dst = f"r{self.dst} = " if self.dst is not None else ""
        return f"{dst}intrinsic {self.name}({args})"


@dataclass
class Jump(Instr):
    label: str = ""

    def describe(self) -> str:
        return f"jump {self.label}"


@dataclass
class CJump(Instr):
    cond: int = 0
    then_label: str = ""
    else_label: str = ""

    def describe(self) -> str:
        return f"cjump r{self.cond} ? {self.then_label} : {self.else_label}"


@dataclass
class Ret(Instr):
    src: Optional[int] = None

    def describe(self) -> str:
        return f"ret r{self.src}" if self.src is not None else "ret"


@dataclass
class OffloadLaunch(Instr):
    """Launch an offload thread; args are capture addresses/values."""

    dst: int = 0  # handle register
    entry: str = ""
    offload_id: int = 0
    args: list[int] = field(default_factory=list)

    def describe(self) -> str:
        args = ", ".join(f"r{a}" for a in self.args)
        return f"r{self.dst} = offload_launch#{self.offload_id} {self.entry}({args})"


@dataclass
class OffloadJoin(Instr):
    handle: int = 0

    def describe(self) -> str:
        return f"offload_join r{self.handle}"


@dataclass
class Trap(Instr):
    message: str = ""

    def describe(self) -> str:
        return f"trap {self.message!r}"

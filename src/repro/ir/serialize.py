"""Serializable program artifacts.

Round-trips a fully compiled :class:`repro.ir.module.IRProgram` through
a JSON-safe dict — no pickle, no code objects — so compiled programs can
be persisted, content-addressed and reloaded by the compile cache
(:mod:`repro.compiler.cache`) or shipped between processes.

Design constraints:

* **Deterministic**: the same program always produces byte-identical
  canonical JSON (:func:`to_canonical_json` sorts keys and fixes
  separators; all compiler output is already insertion-ordered
  deterministically).  This is what makes content addressing sound.
* **Complete**: functions, instructions, labels, layout products
  (globals, vtables, function ids, init image) and per-offload metadata
  (domain tables, cache kinds, captures) all round-trip, so a
  ``from_dict`` program runs cycle-for-cycle identically to the fresh
  compile on every execution engine.
* **Self-describing**: artifacts carry a format tag and version; version
  mismatches are rejected rather than misread (the cache treats them as
  misses).

Derived dataclass fields (``init=False`` — scalar-codec keys, masks,
compare flags) are *not* stored; they are recomputed by each
instruction's ``__post_init__`` on reconstruction.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.ir import instructions as instr_mod
from repro.ir.instructions import AccSpace, Instr
from repro.ir.module import GlobalSlot, IRFunction, IRProgram, OffloadMeta
from repro.runtime.dispatch import DomainTable, InnerEntry

#: Bump when the artifact layout changes incompatibly; old artifacts are
#: then treated as cache misses, never misread.
ARTIFACT_VERSION = 1

#: Format tag stored in every artifact header.
ARTIFACT_FORMAT = "repro-ir-artifact"

#: Instruction class registry: class name -> class.  Built from the
#: instruction module so new instructions serialize without edits here.
INSTR_CLASSES: dict[str, type] = {
    cls.__name__: cls
    for cls in vars(instr_mod).values()
    if isinstance(cls, type) and issubclass(cls, Instr)
}

#: Per-class stored fields (init-able only; derived fields recompute).
_INSTR_FIELDS: dict[str, tuple[dataclasses.Field, ...]] = {
    name: tuple(f for f in dataclasses.fields(cls) if f.init)
    for name, cls in INSTR_CLASSES.items()
}

#: Decode spec per class, precomputed once: (class, stored field names,
#: the subset holding AccSpace values, whether an ``args`` list exists).
#: ``instr_from_dict`` is the compile cache's warm-path hot loop.
_INSTR_SPEC: dict[str, tuple[type, tuple[str, ...], tuple[str, ...], bool]] = {
    name: (
        INSTR_CLASSES[name],
        tuple(f.name for f in fields),
        tuple(
            f.name
            for f in fields
            if f.name == "space" or f.name.endswith("_space")
        ),
        any(f.name == "args" for f in fields),
    )
    for name, fields in _INSTR_FIELDS.items()
}

_SPACE_BY_VALUE: dict[str, AccSpace] = {
    member.value: member for member in AccSpace
}


class ArtifactError(ValueError):
    """A malformed or incompatible artifact dict."""


# ----------------------------------------------------------- instructions


def instr_to_dict(instr: Instr) -> dict[str, Any]:
    """One instruction -> a JSON-safe dict tagged with its class name."""
    name = type(instr).__name__
    fields = _INSTR_FIELDS.get(name)
    if fields is None:
        raise ArtifactError(f"unregistered instruction class {name!r}")
    out: dict[str, Any] = {"k": name}
    for f in fields:
        value = getattr(instr, f.name)
        if f.name == "comment" and not value:
            continue
        if isinstance(value, AccSpace):
            value = value.value
        out[f.name] = value
    return out


def instr_from_dict(data: dict[str, Any]) -> Instr:
    """Inverse of :func:`instr_to_dict`."""
    spec = _INSTR_SPEC.get(data.get("k"))  # type: ignore[arg-type]
    if spec is None:
        raise ArtifactError(f"unknown instruction kind {data.get('k')!r}")
    cls, field_names, space_fields, has_args = spec
    kwargs = {name: data[name] for name in field_names if name in data}
    for name in space_fields:
        if name in kwargs:
            try:
                kwargs[name] = _SPACE_BY_VALUE[kwargs[name]]
            except KeyError:
                raise ArtifactError(
                    f"unknown access space {kwargs[name]!r}"
                ) from None
    if has_args and "args" in kwargs:
        kwargs["args"] = list(kwargs["args"])
    return cls(**kwargs)


# -------------------------------------------------------------- functions


def function_to_dict(function: IRFunction) -> dict[str, Any]:
    return {
        "name": function.name,
        "params": list(function.params),
        "space": function.space,
        "source_name": function.source_name,
        "duplicate_id": function.duplicate_id,
        "num_regs": function.num_regs,
        "frame_size": function.frame_size,
        "code": [instr_to_dict(i) for i in function.code],
        "labels": dict(function.labels),
    }


def function_from_dict(data: dict[str, Any]) -> IRFunction:
    return IRFunction(
        name=data["name"],
        params=list(data["params"]),
        space=data["space"],
        source_name=data.get("source_name", ""),
        duplicate_id=data.get("duplicate_id", ""),
        num_regs=data["num_regs"],
        frame_size=data["frame_size"],
        code=[instr_from_dict(i) for i in data["code"]],
        labels={str(k): int(v) for k, v in data["labels"].items()},
    )


# ----------------------------------------------------------- offload meta


def _domain_to_dict(table: DomainTable) -> dict[str, Any]:
    return {
        "outer": list(table.outer),
        "method_names": list(table.method_names),
        "inner": [
            [
                {"id": e.duplicate_id, "target": e.target, "demand": e.demand}
                for e in row
            ]
            for row in table.inner
        ],
    }


def _domain_from_dict(data: dict[str, Any]) -> DomainTable:
    table = DomainTable()
    table.outer = [int(a) for a in data["outer"]]
    table.method_names = list(data["method_names"])
    table.inner = [
        [
            InnerEntry(
                duplicate_id=e["id"],
                target=e["target"],
                demand=bool(e.get("demand", False)),
            )
            for e in row
        ]
        for row in data["inner"]
    ]
    return table


def _meta_to_dict(meta: OffloadMeta) -> dict[str, Any]:
    return {
        "offload_id": meta.offload_id,
        "entry": meta.entry,
        "cache_kind": meta.cache_kind,
        "domain": _domain_to_dict(meta.domain),
        "annotation_count": meta.annotation_count,
        "capture_names": list(meta.capture_names),
    }


def _meta_from_dict(data: dict[str, Any]) -> OffloadMeta:
    return OffloadMeta(
        offload_id=int(data["offload_id"]),
        entry=data["entry"],
        cache_kind=data["cache_kind"],
        domain=_domain_from_dict(data["domain"]),
        annotation_count=int(data["annotation_count"]),
        capture_names=list(data["capture_names"]),
    )


# ---------------------------------------------------------------- program


def program_to_dict(program: IRProgram) -> dict[str, Any]:
    """The whole program as a JSON-safe dict (see module docstring)."""
    return {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "target_name": program.target_name,
        "entry": program.entry,
        "data_end": program.data_end,
        "functions": {
            name: function_to_dict(fn)
            for name, fn in program.functions.items()
        },
        "globals": {
            name: {"address": slot.address, "size": slot.size}
            for name, slot in program.globals.items()
        },
        "init_image": [
            [address, data.hex()] for address, data in program.init_image
        ],
        "function_ids": {
            str(fid): name for fid, name in program.function_ids.items()
        },
        "vtables": dict(program.vtables),
        "offload_meta": {
            str(oid): _meta_to_dict(meta)
            for oid, meta in program.offload_meta.items()
        },
    }


def program_from_dict(data: dict[str, Any]) -> IRProgram:
    """Reconstruct a runnable :class:`IRProgram` from an artifact dict."""
    if data.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"not a {ARTIFACT_FORMAT} artifact: format="
            f"{data.get('format')!r}"
        )
    if data.get("version") != ARTIFACT_VERSION:
        raise ArtifactError(
            f"artifact version {data.get('version')!r} is not the "
            f"supported version {ARTIFACT_VERSION}"
        )
    program = IRProgram(
        entry=data["entry"],
        data_end=int(data["data_end"]),
        target_name=data["target_name"],
    )
    program.functions = {
        name: function_from_dict(fn)
        for name, fn in data["functions"].items()
    }
    program.globals = {
        name: GlobalSlot(name, int(g["address"]), int(g["size"]))
        for name, g in data["globals"].items()
    }
    program.init_image = [
        (int(address), bytes.fromhex(blob))
        for address, blob in data["init_image"]
    ]
    program.function_ids = {
        int(fid): name for fid, name in data["function_ids"].items()
    }
    program.vtables = {
        name: int(address) for name, address in data["vtables"].items()
    }
    program.offload_meta = {
        int(oid): _meta_from_dict(meta)
        for oid, meta in data["offload_meta"].items()
    }
    return program


# ------------------------------------------------------------------- JSON


def to_canonical_json(data: dict[str, Any]) -> str:
    """Deterministic JSON: sorted keys, fixed separators, no whitespace.

    The canonical form is what gets hashed for content addressing and
    written to disk, so equal programs are equal *bytes*.
    """
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def program_to_json(program: IRProgram) -> str:
    return to_canonical_json(program_to_dict(program))


def program_from_json(text: str) -> IRProgram:
    return program_from_dict(json.loads(text))


def save_program(program: IRProgram, path: str) -> None:
    """Write ``program`` to ``path`` as a canonical-JSON artifact."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(program_to_json(program))
        handle.write("\n")


def load_program(path: str) -> IRProgram:
    """Load an artifact written by :func:`save_program` and validate it."""
    with open(path, "r", encoding="utf-8") as handle:
        program = program_from_json(handle.read())
    program.validate()
    return program

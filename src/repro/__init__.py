"""repro — an Offload C++ reproduction in Python.

A compiler and runtime for *OffloadMini*, a C++-like language with
offload blocks, memory-space-qualified pointers, domain-based virtual
dispatch and word-addressing attributes, executing on a deterministic
simulated heterogeneous machine.  Reproduces the systems described in
Codeplay's MSPC/PLDI 2011 paper "The Impact of Diverse Memory
Architectures on Multicore Consumer Software".

Quickstart::

    from repro import CELL_LIKE, Machine, compile_program, run_program

    program = compile_program(source_text, CELL_LIKE)
    result = run_program(program, Machine(CELL_LIKE))
    print(result.printed, result.cycles)
"""

__version__ = "1.0.0"

from repro.errors import (
    CompileError,
    Diagnostic,
    DmaRaceError,
    MachineError,
    MissingDuplicateError,
    ReproError,
    RuntimeTrap,
    TypeCheckError,
)
from repro.machine import CELL_LIKE, DSP_WORD, SMP_UNIFORM, Machine, MachineConfig
from repro.compiler.driver import CompileOptions, compile_program
from repro.sched import (
    POLICY_NAMES,
    JobGraph,
    SchedOptions,
    SchedStats,
    run_graph,
)
from repro.vm.interpreter import RunOptions, RunResult, run_program

__all__ = [
    "CELL_LIKE",
    "CompileError",
    "CompileOptions",
    "DSP_WORD",
    "Diagnostic",
    "DmaRaceError",
    "JobGraph",
    "Machine",
    "MachineConfig",
    "MachineError",
    "MissingDuplicateError",
    "POLICY_NAMES",
    "ReproError",
    "RunOptions",
    "RunResult",
    "RuntimeTrap",
    "SMP_UNIFORM",
    "SchedOptions",
    "SchedStats",
    "TypeCheckError",
    "__version__",
    "compile_program",
    "run_graph",
    "run_program",
]

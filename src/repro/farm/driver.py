"""The farm driver: a persistent worker pool behind per-worker channels.

Structure follows the FastFlow exemplar (PAPERS.md) rather than a naive
``multiprocessing.Pool``: the driver and each worker share a dedicated
duplex pipe (single-producer/single-consumer in each direction — no
shared lock-protected queue, no feeder threads), jobs are dispatched to
idle workers, and results stream back as they complete.  Compile,
dispatch and simulate are decoupled stages: the compile stage is
absorbed by the shared on-disk cache plus each worker's warm-program
memo, so on a long-lived pool the steady state is pure simulation.

Dispatch is **sharded by program**: the first worker to run a program
(:func:`~repro.farm.job.program_key`) owns that key for the life of
the pool, and later jobs with the same key only ever dispatch to the
owner.  That makes warm mode a guarantee rather than a scheduling
accident — on a repeat batch every job lands on the worker whose memo
already holds its program, so zero compiles and zero translations is
deterministic, not dependent on which worker happened to be idle.
Ownership spreads across the pool as distinct programs arrive (an
unowned key is claimed by whichever idle worker reaches it first) and
migrates to the replacement worker when an owner crashes.  The
corollary — jobs sharing one program serialize on their shard owner —
is exactly the cache-affinity trade the paper's locality scheduling
makes, and the corpus builders seed-vary their workloads to keep
batches spread.

Robustness is structural, not bolted on:

* **crash detection** — a dead worker's pipe raises EOF (and
  ``Process.is_alive`` goes false even when the worker dies while
  idle); the driver records the attempt, respawns the worker and
  retries the job up to ``max_attempts`` times before emitting a
  :class:`~repro.farm.job.JobFailure` with reason ``"crash"``;
* **per-job timeout** — a wedged worker is terminated when the job's
  wall-clock budget expires (reason ``"timeout"``, same bounded
  retry);
* **deterministic errors** — a job that raises (compile error, runtime
  trap) is reported once with reason ``"error"`` and never retried.

The driver can therefore always drain a batch: every job ends as a
:class:`~repro.farm.job.JobResult` or a structured failure, never as a
hung ``run_batch``.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Optional

from repro.farm.job import FarmJob, JobFailure, JobResult, program_key
from repro.farm.worker import worker_main
from repro.obs.metrics import MetricsHub

#: Bump when the batch-summary JSON layout changes shape.
SUMMARY_SCHEMA_VERSION = 1

#: The ``kind`` discriminator in farm summary files.
SUMMARY_KIND = "repro-farm-summary"


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass
class BatchSummary:
    """One ``run_batch`` (or serial run), aggregated.

    ``results`` holds a :class:`~repro.farm.job.JobResult` or
    :class:`~repro.farm.job.JobFailure` per job, in job order.  The
    aggregate warmth counters (``compiles``/``translations``/
    ``warm_jobs``) are what the CI farm job asserts on: a warm batch on
    a persistent pool must report ``compiles == 0`` and
    ``translations == 0``.
    """

    jobs: int
    ok: int
    failed: int
    retried: int
    workers: int
    wall_seconds: float
    jobs_per_sec: float
    compiles: int
    cache_hits: int
    translations: int
    warm_jobs: int
    results: list = field(default_factory=list)
    worker_stats: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    @property
    def failures(self) -> list[JobFailure]:
        return [r for r in self.results if isinstance(r, JobFailure)]

    def as_dict(self, include_reports: bool = True) -> dict:
        return {
            "jobs": self.jobs,
            "ok": self.ok,
            "failed": self.failed,
            "retried": self.retried,
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 6),
            "jobs_per_sec": round(self.jobs_per_sec, 3),
            "compiles": self.compiles,
            "cache_hits": self.cache_hits,
            "translations": self.translations,
            "warm_jobs": self.warm_jobs,
            "worker_stats": self.worker_stats,
            "results": [
                r.as_dict(include_reports) for r in self.results
            ],
            "metrics": self.metrics,
        }


def summarize_batch(
    results: list,
    workers: int,
    wall_seconds: float,
    retried: int,
    hub: Optional[MetricsHub] = None,
    worker_busy: Optional[dict] = None,
) -> BatchSummary:
    """Fold per-job outcomes into a :class:`BatchSummary`.

    Shared by the pooled driver and the serial runner so both produce
    the same summary shape.  Worker utilization is busy wall over batch
    wall; the warmth gauges land in ``hub`` (the farm metrics lane) as
    well as in the summary fields.
    """
    ok = [r for r in results if isinstance(r, JobResult)]
    failed = [r for r in results if isinstance(r, JobFailure)]
    compiles = sum(r.compiles for r in ok)
    cache_hits = sum(r.cache_hits for r in ok)
    translations = sum(r.translations for r in ok)
    warm_jobs = sum(1 for r in ok if r.warm)
    worker_busy = worker_busy or {}
    worker_stats = {}
    for worker_id in sorted(worker_busy):
        busy = worker_busy[worker_id]
        jobs_done = sum(1 for r in ok if r.worker == worker_id)
        worker_stats[worker_id] = {
            "jobs": jobs_done,
            "busy_seconds": round(busy, 6),
            "utilization": round(busy / wall_seconds, 4)
            if wall_seconds > 0 else 0.0,
        }
        if hub is not None:
            hub.gauge_set("farm.worker_jobs", jobs_done, worker_id)
            hub.gauge_set(
                "farm.worker_busy_ms", int(busy * 1000), worker_id
            )
    if hub is not None:
        hub.gauge_set("farm.compiles", compiles)
        hub.gauge_set("farm.warm_jobs", warm_jobs)
    return BatchSummary(
        jobs=len(results),
        ok=len(ok),
        failed=len(failed),
        retried=retried,
        workers=workers,
        wall_seconds=wall_seconds,
        jobs_per_sec=len(results) / wall_seconds if wall_seconds > 0 else 0.0,
        compiles=compiles,
        cache_hits=cache_hits,
        translations=translations,
        warm_jobs=warm_jobs,
        results=list(results),
        worker_stats=worker_stats,
        metrics=hub.as_dict() if hub is not None else {},
    )


def summary_json(summaries: list[BatchSummary], workers: int,
                 include_reports: bool = False) -> str:
    """Canonical JSON for one farm run (one or more batches)."""
    obj = {
        "kind": SUMMARY_KIND,
        "schema_version": SUMMARY_SCHEMA_VERSION,
        "workers": workers,
        "batches": [s.as_dict(include_reports) for s in summaries],
    }
    return json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"


class _Assignment:
    """What one busy worker is doing right now."""

    __slots__ = ("index", "attempt", "started", "deadline")

    def __init__(self, index: int, attempt: int, started: float,
                 deadline: Optional[float]):
        self.index = index
        self.attempt = attempt
        self.started = started
        self.deadline = deadline


class _Worker:
    """One pooled process plus its driver-side pipe end."""

    __slots__ = ("worker_id", "process", "conn", "busy_seconds")

    def __init__(self, worker_id: str, process, conn):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.busy_seconds = 0.0


class Farm:
    """A persistent pool of simulation workers.

    Args:
        workers: Pool size.
        cache_dir: Shared content-addressed compile-cache directory
            (:mod:`repro.compiler.cache`); workers also keep in-process
            warm-program memos, so a long-lived farm stops compiling
            after its first pass over a job mix.
        timeout: Default per-job wall-clock budget in seconds
            (:attr:`FarmJob.timeout` overrides; 0 disables).
        max_attempts: Tries per job for crash/timeout failures
            (deterministic job errors are never retried).
        start_method: ``multiprocessing`` start method; default
            ``"fork"`` where available (fast worker spawn), else
            ``"spawn"``.

    Use as a context manager, or call :meth:`close` explicitly; workers
    persist across :meth:`run_batch` calls — that persistence *is* warm
    mode.
    """

    def __init__(
        self,
        workers: int = 2,
        cache_dir: Optional[str] = None,
        timeout: Optional[float] = 300.0,
        max_attempts: int = 2,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.workers = workers
        self.cache_dir = cache_dir
        self.timeout = timeout
        self.max_attempts = max_attempts
        self._ctx = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self._pool: list[_Worker] = []
        self._busy: dict[str, _Assignment] = {}
        # Program-key shard map: program_key -> owning worker_id.  The
        # pool's warm state lives in worker memos, so ownership persists
        # exactly as long as the pool does.
        self._owner: dict[str, str] = {}
        self._spawned = 0
        self._started = False

    # ------------------------------------------------------------ lifecycle

    def __enter__(self) -> "Farm":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def start(self) -> None:
        """Spawn the pool (idempotent; ``run_batch`` calls it lazily)."""
        if self._started:
            return
        for _ in range(self.workers):
            self._pool.append(self._spawn())
        self._started = True

    def _spawn(self) -> _Worker:
        worker_id = f"w{self._spawned}"
        self._spawned += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, self.cache_dir, child_conn),
            name=f"repro-farm-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the child holds its own copy
        return _Worker(worker_id, process, parent_conn)

    def close(self) -> None:
        """Shut the pool down (graceful sentinel, then terminate)."""
        for worker in self._pool:
            if worker.process.is_alive():
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for worker in self._pool:
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._pool.clear()
        self._busy.clear()
        self._owner.clear()
        self._started = False

    # ------------------------------------------------------------ batches

    def run_batch(
        self,
        jobs: list[FarmJob],
        on_result: Optional[Callable] = None,
    ) -> BatchSummary:
        """Execute ``jobs`` across the pool; always drains.

        ``on_result`` is called with each :class:`JobResult` /
        :class:`JobFailure` as it lands (streaming consumers — the CLI's
        JSONL writer — hook in here).  Results in the returned summary
        are in job order regardless of completion order.
        """
        self.start()
        hub = MetricsHub()
        for worker in self._pool:
            worker.busy_seconds = 0.0
        started = time.perf_counter()
        keys = [program_key(job) for job in jobs]
        pending: deque[tuple[int, int]] = deque(
            (index, 1) for index in range(len(jobs))
        )
        outcomes: list = [None] * len(jobs)
        remaining = len(jobs)
        retried = 0

        def settle(index: int, outcome) -> None:
            nonlocal remaining
            outcomes[index] = outcome
            remaining -= 1
            if on_result is not None:
                on_result(outcome)

        def handle_message(worker: _Worker, message) -> None:
            kind, worker_id, index, payload = message
            assignment = self._busy.get(worker.worker_id)
            if assignment is None or assignment.index != index:
                return  # stale reply from a recycled assignment
            del self._busy[worker.worker_id]
            elapsed = time.perf_counter() - assignment.started
            worker.busy_seconds += elapsed
            if kind == "ok":
                hub.observe(
                    "farm.job_wall_ms", None,
                    int(payload["wall_seconds"] * 1000),
                )
                settle(
                    index,
                    JobResult(
                        index=index,
                        job=jobs[index],
                        report=payload["report"],
                        output=payload["output"],
                        worker=worker_id,
                        attempts=assignment.attempt,
                        wall_seconds=payload["wall_seconds"],
                        compiles=payload["compiles"],
                        cache_hits=payload["cache_hits"],
                        translations=payload["translations"],
                        warm=payload["warm"],
                    ),
                )
            else:  # deterministic job error: no retry
                settle(
                    index,
                    JobFailure(
                        index=index,
                        job=jobs[index],
                        reason="error",
                        detail=payload,
                        worker=worker_id,
                        attempts=assignment.attempt,
                    ),
                )

        def handle_death(worker: _Worker, reason: str, detail: str) -> None:
            nonlocal retried
            # A worker can die *after* sending its result; drain the
            # pipe first so a completed job is never re-run or failed.
            try:
                while worker.conn.poll(0):
                    handle_message(worker, worker.conn.recv())
            except (EOFError, OSError):
                pass
            assignment = self._busy.pop(worker.worker_id, None)
            if assignment is not None:
                worker.busy_seconds += (
                    time.perf_counter() - assignment.started
                )
                if assignment.attempt < self.max_attempts:
                    retried += 1
                    pending.appendleft(
                        (assignment.index, assignment.attempt + 1)
                    )
                else:
                    settle(
                        assignment.index,
                        JobFailure(
                            index=assignment.index,
                            job=jobs[assignment.index],
                            reason=reason,
                            detail=detail,
                            worker=worker.worker_id,
                            attempts=assignment.attempt,
                        ),
                    )
            try:
                worker.conn.close()
            except OSError:
                pass
            if worker.process.is_alive():
                worker.process.terminate()
            worker.process.join(timeout=5)
            replacement = self._spawn()
            # The replacement inherits the dead worker's shard (it will
            # recompile each owned program once, through the shared
            # cache, on first contact).
            for key, owner in self._owner.items():
                if owner == worker.worker_id:
                    self._owner[key] = replacement.worker_id
            self._pool[self._pool.index(worker)] = replacement

        while remaining:
            # Reap workers that died while idle or whose death the pipe
            # has not surfaced yet.
            for worker in list(self._pool):
                if not worker.process.is_alive():
                    exitcode = worker.process.exitcode
                    handle_death(
                        worker, "crash",
                        f"worker exited with code {exitcode}",
                    )
            # Dispatch to every idle worker, sharded by program key: an
            # idle worker takes the oldest pending job whose program it
            # owns or that nobody owns yet (claiming it).  Jobs whose
            # owner is busy wait for it — that wait is what buys the
            # zero-compile warm guarantee.
            busy_ids = set(self._busy)
            pool_ids = {worker.worker_id for worker in self._pool}
            for worker in self._pool:
                if not pending:
                    break
                if worker.worker_id in busy_ids:
                    continue
                picked = None
                for slot, (index, _attempt) in enumerate(pending):
                    owner = self._owner.get(keys[index])
                    if (
                        owner is None
                        or owner == worker.worker_id
                        or owner not in pool_ids
                    ):
                        picked = slot
                        break
                if picked is None:
                    continue  # everything pending belongs to busy shards
                index, attempt = pending[picked]
                del pending[picked]
                job = jobs[index]
                hub.observe("farm.queue_occupancy", None, len(pending))
                budget = (
                    job.timeout if job.timeout is not None else self.timeout
                )
                now = time.perf_counter()
                deadline = now + budget if budget else None
                try:
                    worker.conn.send((index, attempt, job))
                except (BrokenPipeError, OSError):
                    pending.appendleft((index, attempt))
                    continue  # death reaped on the next loop turn
                self._owner[keys[index]] = worker.worker_id
                self._busy[worker.worker_id] = _Assignment(
                    index, attempt, now, deadline
                )
            # Wait for any worker pipe to become readable (a result, or
            # EOF from a dying worker).
            conns = {
                worker.conn: worker
                for worker in self._pool
                if not worker.conn.closed
            }
            for conn in connection_wait(list(conns), timeout=0.05):
                worker = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    handle_death(worker, "crash", "worker pipe closed")
                    continue
                handle_message(worker, message)
            # Enforce per-job deadlines on whoever is still busy.
            now = time.perf_counter()
            for worker in list(self._pool):
                assignment = self._busy.get(worker.worker_id)
                if (
                    assignment is not None
                    and assignment.deadline is not None
                    and now > assignment.deadline
                ):
                    handle_death(
                        worker, "timeout",
                        f"job exceeded its "
                        f"{assignment.deadline - assignment.started:.3g}s "
                        f"budget and the worker was killed",
                    )

        wall = time.perf_counter() - started
        return summarize_batch(
            outcomes,
            workers=self.workers,
            wall_seconds=wall,
            retried=retried,
            hub=hub,
            worker_busy={
                worker.worker_id: worker.busy_seconds
                for worker in self._pool
            },
        )

"""Farm job specifications and per-job outcome records.

A :class:`FarmJob` names everything one simulation needs — program
(source text or a serialized artifact path), registry target, execution
engine, scheduling policy, queue depth and a seed — and nothing about
*where* it runs.  The same job list produces byte-identical
:class:`~repro.obs.report.RunReport` JSON whether it executes serially
in-process (:func:`repro.farm.worker.run_jobs_serial`) or fanned across
a :class:`repro.farm.driver.Farm` worker pool; only the envelope fields
(worker id, attempts, wall clock) differ.

Jobs are frozen dataclasses: hashable (the determinism tests key result
maps on them), picklable (they cross the driver/worker pipes) and
validated at construction time — an unknown engine, target or policy
fails when the batch is *built*, not minutes later inside a worker.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.compiler.driver import CompileOptions
from repro.ir.serialize import to_canonical_json
from repro.machine.config import resolve_target
from repro.sched.policy import POLICY_NAMES
from repro.vm.interpreter import DEFAULT_ENGINE, validate_engine

#: Fault-injection directives accepted by :attr:`FarmJob.fault` (chaos
#: hooks for the robustness tests and for operational drills):
#:
#: * ``"crash"`` — the worker process exits hard (``os._exit``) without
#:   reporting, exercising crash detection + bounded retry;
#: * ``"crash-once:<path>"`` — crash only if ``<path>`` does not exist
#:   yet (the first attempt creates it), exercising retry-then-succeed;
#: * ``"sleep:<seconds>"`` — wedge the worker before executing,
#:   exercising the per-job timeout.
FAULT_KINDS = ("crash", "crash-once", "sleep")


def _validate_fault(fault: str) -> None:
    kind = fault.split(":", 1)[0]
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault directive {fault!r}; known kinds: "
            + ", ".join(FAULT_KINDS)
        )
    if kind == "sleep":
        try:
            seconds = float(fault.split(":", 1)[1])
        except (IndexError, ValueError):
            raise ValueError(
                f"fault {fault!r} must be 'sleep:<seconds>'"
            ) from None
        if seconds < 0:
            raise ValueError(f"fault sleep seconds must be >= 0, got {fault!r}")
    if kind == "crash-once" and ":" not in fault:
        raise ValueError("fault 'crash-once' needs a marker path: "
                         "'crash-once:<path>'")


@dataclass(frozen=True)
class FarmJob:
    """One simulation request.

    Attributes:
        workload: Human-readable name, recorded as the
            :class:`~repro.obs.report.RunReport` workload.
        source: OffloadMini source text.  Exactly one of ``source`` /
            ``artifact`` must be set.
        artifact: Path to a serialized program artifact
            (:mod:`repro.ir.serialize`); loaded instead of compiling.
        target: Registered machine target name
            (:func:`repro.machine.config.resolve_target`).
        engine: Execution engine, or None for the process default
            (:data:`repro.vm.interpreter.DEFAULT_ENGINE`).
        policy: Scheduling policy
            (:data:`repro.sched.policy.POLICY_NAMES`); None runs compat
            mode unless ``queue_depth`` forces explicit scheduling.
        queue_depth: Per-accelerator ready-queue bound (None: target
            default).
        seed: Batch-builder seed, recorded for job identity.  The
            simulator itself is deterministic; seeds vary *which*
            workload a corpus generator emits, never how it executes.
        options: Compiler options for ``source`` jobs.
        timeout: Per-job wall-clock budget in seconds, overriding the
            farm's default; 0 disables the timeout for this job.
        fault: Fault-injection directive (see :data:`FAULT_KINDS`), or
            None for a normal job.
    """

    workload: str
    source: Optional[str] = None
    artifact: Optional[str] = None
    target: str = "cell"
    engine: Optional[str] = None
    policy: Optional[str] = None
    queue_depth: Optional[int] = None
    seed: int = 0
    options: CompileOptions = field(default_factory=CompileOptions)
    timeout: Optional[float] = None
    fault: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.source is None) == (self.artifact is None):
            raise ValueError(
                f"job {self.workload!r}: exactly one of source/artifact "
                f"must be set"
            )
        resolve_target(self.target, source=f"FarmJob({self.workload!r}).target")
        if self.engine is not None:
            validate_engine(self.engine, source="FarmJob.engine")
        if self.policy is not None and self.policy not in POLICY_NAMES:
            raise ValueError(
                f"job {self.workload!r}: unknown policy {self.policy!r}; "
                f"choose one of {', '.join(POLICY_NAMES)}"
            )
        if self.queue_depth is not None and self.queue_depth < 0:
            raise ValueError(
                f"job {self.workload!r}: queue_depth must be >= 0"
            )
        if self.timeout is not None and self.timeout < 0:
            raise ValueError(f"job {self.workload!r}: timeout must be >= 0")
        if self.fault is not None:
            _validate_fault(self.fault)

    # ------------------------------------------------------------ identity

    def resolved_engine(self) -> str:
        """The concrete engine this job runs on (None -> env default)."""
        if self.engine is not None:
            return self.engine
        return validate_engine(DEFAULT_ENGINE, source="REPRO_VM_ENGINE")

    def identity(self) -> dict:
        """The job's JSON-able identity fields (no program text)."""
        return {
            "workload": self.workload,
            "target": self.target,
            "engine": self.resolved_engine(),
            "policy": self.policy or "",
            "queue_depth": self.queue_depth if self.queue_depth is not None
            else -1,
            "seed": self.seed,
        }

    def as_dict(self) -> dict:
        """The full job spec as a JSON-able dict (batch-file format)."""
        out: dict = {
            "workload": self.workload,
            "target": self.target,
            "seed": self.seed,
        }
        if self.source is not None:
            out["source"] = self.source
        if self.artifact is not None:
            out["artifact"] = self.artifact
        if self.engine is not None:
            out["engine"] = self.engine
        if self.policy is not None:
            out["policy"] = self.policy
        if self.queue_depth is not None:
            out["queue_depth"] = self.queue_depth
        if self.timeout is not None:
            out["timeout"] = self.timeout
        if self.fault is not None:
            out["fault"] = self.fault
        options = dataclasses.asdict(self.options)
        if options != dataclasses.asdict(CompileOptions()):
            out["options"] = options
        return out

    @classmethod
    def from_dict(cls, obj: dict) -> "FarmJob":
        """Inverse of :meth:`as_dict` (rejects unknown fields loudly)."""
        if not isinstance(obj, dict):
            raise ValueError(f"job spec must be an object, got {obj!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(obj) - known)
        if unknown:
            raise ValueError(
                f"job spec has unknown field(s): {', '.join(unknown)}"
            )
        kwargs = dict(obj)
        if "options" in kwargs:
            kwargs["options"] = CompileOptions(**kwargs["options"])
        return cls(**kwargs)


def program_key(job: FarmJob) -> str:
    """The warm-program memo key: what makes two jobs share translations.

    Jobs that compile the same source for the same target with the same
    options — under the same engine — reuse one warmed program object
    inside a worker, whatever their policy, queue depth or seed.
    Artifact jobs key on the artifact path.
    """
    from repro.compiler.cache import compile_cache_key

    if job.artifact is not None:
        base = f"artifact:{job.artifact}:{job.target}"
    else:
        base = compile_cache_key(
            job.source, job.target, job.options
        )
    return f"{base}:{job.resolved_engine()}"


def job_key(job: FarmJob) -> str:
    """A content address for the whole job (identity + program)."""
    material = to_canonical_json(
        {"program": program_key(job), **job.identity()}
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


# --------------------------------------------------------------- outcomes


@dataclass
class JobResult:
    """A completed job: its canonical report plus the farm envelope.

    ``report`` is the :class:`~repro.obs.report.RunReport` dict with
    ``wall_seconds`` fixed at 0 — byte-identical to a serial in-process
    run of the same job.  Everything host- or placement-dependent
    (worker id, attempts, wall clock, cache accounting) lives here in
    the envelope, never in the report.
    """

    index: int
    job: FarmJob
    report: dict
    output: list
    worker: str
    attempts: int
    wall_seconds: float
    compiles: int
    cache_hits: int
    translations: int
    warm: bool

    status = "ok"

    def as_dict(self, include_report: bool = True) -> dict:
        out = {
            "index": self.index,
            "status": self.status,
            **self.job.identity(),
            "worker": self.worker,
            "attempts": self.attempts,
            "wall_seconds": round(self.wall_seconds, 6),
            "compiles": self.compiles,
            "cache_hits": self.cache_hits,
            "translations": self.translations,
            "warm": self.warm,
            "simulated_cycles": self.report.get("simulated_cycles", 0),
        }
        if include_report:
            out["report"] = self.report
        return out


@dataclass
class JobFailure:
    """A job that did not produce a report.

    ``reason`` is ``"crash"`` (the worker died), ``"timeout"`` (the
    worker exceeded the job's wall-clock budget and was killed) or
    ``"error"`` (the job itself raised — compile error, runtime trap —
    which is deterministic and therefore never retried).  ``attempts``
    counts every try, so a crash retried twice records ``attempts=2``.
    """

    index: int
    job: FarmJob
    reason: str
    detail: str
    worker: str
    attempts: int

    status = "failed"

    def as_dict(self, include_report: bool = True) -> dict:
        return {
            "index": self.index,
            "status": self.status,
            **self.job.identity(),
            "worker": self.worker,
            "attempts": self.attempts,
            "reason": self.reason,
            "detail": self.detail,
        }

"""``repro.farm``: sharded multi-process simulation batches.

The horizontal-scale layer over the whole stack: fan a batch of
``(source-or-artifact, target, engine, policy, queue-depth, seed)``
jobs (:class:`FarmJob`) across a persistent worker-process pool
(:class:`Farm`) that shares the content-addressed compile cache, keeps
warm-program memos per worker (a long-lived pool performs zero compiles
and zero codegen after its first pass), streams canonical
:class:`~repro.obs.report.RunReport` results back as they complete, and
always drains — crashes and timeouts become structured
:class:`JobFailure` records with bounded retry, never a hung driver.

:func:`run_jobs_serial` is the same execution path run inline: the
baseline that farm results are byte-identical to.  See ``docs/farm.md``
and the ``repro.tools.farm`` CLI.
"""

from repro.farm.batch import (
    BATCH_KIND,
    CORPORA,
    determinism_batch,
    figure2_batch,
    jobs_to_json,
    load_jobs,
    mixed_corpus,
)
from repro.farm.driver import (
    SUMMARY_KIND,
    SUMMARY_SCHEMA_VERSION,
    BatchSummary,
    Farm,
    summarize_batch,
    summary_json,
)
from repro.farm.job import (
    FAULT_KINDS,
    FarmJob,
    JobFailure,
    JobResult,
    job_key,
    program_key,
)
from repro.farm.worker import execute_job, run_jobs_serial, worker_main

__all__ = [
    "BATCH_KIND",
    "CORPORA",
    "BatchSummary",
    "FAULT_KINDS",
    "Farm",
    "FarmJob",
    "JobFailure",
    "JobResult",
    "SUMMARY_KIND",
    "SUMMARY_SCHEMA_VERSION",
    "determinism_batch",
    "execute_job",
    "figure2_batch",
    "job_key",
    "jobs_to_json",
    "load_jobs",
    "mixed_corpus",
    "program_key",
    "run_jobs_serial",
    "summarize_batch",
    "summary_json",
    "worker_main",
]

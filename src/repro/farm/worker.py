"""Farm worker: the in-process job executor and the worker-process loop.

:func:`execute_job` is the single execution path both deployment shapes
share — :func:`run_jobs_serial` calls it inline (the baseline the
determinism tests and the CI farm job diff against) and
:func:`worker_main` calls it inside a pooled worker process.  Because
the path is shared, a farm run cannot drift from a serial run: same
compile, same warm-up, same machine construction, same report
collection.

Warm mode is the worker's in-process memo: the first job for a given
``(program, engine)`` pair compiles (or loads) and pre-translates via
:func:`repro.vm.warm_translations`; every later job with the same key —
in this batch or any later batch on the same pool — reuses the warmed
program object and performs **zero** compiles and zero codegen
translations.  The on-disk compile cache (``cache_dir``) is the second
warmth layer, shared across workers and across pool restarts.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

from repro.farm.job import FarmJob, JobResult, program_key
from repro.machine.config import resolve_target
from repro.machine.machine import Machine
from repro.obs.metrics import MetricsHub
from repro.obs.report import collect_report
from repro.sched.scheduler import SchedOptions
from repro.vm.compiled import warm_translations
from repro.vm.interpreter import RunOptions, run_program


def _apply_fault(fault: Optional[str]) -> None:
    """Honour a fault-injection directive (see
    :data:`repro.farm.job.FAULT_KINDS`)."""
    if fault is None:
        return
    kind, _, arg = fault.partition(":")
    if kind == "crash":
        os._exit(13)
    if kind == "crash-once":
        if not os.path.exists(arg):
            with open(arg, "w") as handle:
                handle.write("crashed\n")
            os._exit(13)
        return
    if kind == "sleep":
        time.sleep(float(arg))


def execute_job(job: FarmJob, cache=None, memo: Optional[dict] = None) -> dict:
    """Run one job to a payload dict (shared by serial and farm paths).

    Args:
        job: The job spec.
        cache: Optional shared
            :class:`~repro.compiler.cache.CompileCache`.
        memo: The warm-program memo, ``program_key -> (program,
            machine)`` — pass the same dict across calls to get warm
            mode.  The memoized machine only anchors translations (its
            cost model object identity); every job still simulates on a
            fresh machine.

    Returns a dict with the canonical ``report`` (``wall_seconds`` 0,
    byte-identical across deployment shapes), the program ``output``
    values, and the warmth accounting: ``compiles`` (full pipeline
    runs), ``cache_hits`` (artifacts served from the disk cache),
    ``translations`` (functions translated / codegen'd), ``warm``
    (True when the job touched neither compiler nor translator) and
    ``wall_seconds`` (host clock, envelope only).
    """
    from repro.compiler.driver import compile_program
    from repro.ir.serialize import load_program

    started = time.perf_counter()
    _apply_fault(job.fault)
    config = resolve_target(job.target, source="FarmJob.target")
    engine = job.resolved_engine()
    key = program_key(job)
    compiles = cache_hits = translations = 0
    memoized = memo.get(key) if memo is not None else None
    if memoized is not None:
        program = memoized
    else:
        if job.artifact is not None:
            program = load_program(job.artifact)
        elif cache is not None:
            hits0, stores0 = cache.stats.hits, cache.stats.stores
            program = compile_program(
                job.source, config, job.options, cache=cache
            )
            cache_hits = cache.stats.hits - hits0
            compiles = cache.stats.stores - stores0
        else:
            program = compile_program(job.source, config, job.options)
            compiles = 1
        if engine != "reference":
            translations = warm_translations(
                program,
                Machine(config),
                engine="codegen" if engine == "codegen" else "compiled",
                cache=cache,
            )
        if memo is not None:
            memo[key] = program
    machine = Machine(config)
    hub = MetricsHub()
    machine.attach_metrics(hub)
    sched = None
    if job.policy is not None or job.queue_depth is not None:
        sched = SchedOptions(
            policy=job.policy or "greedy", queue_depth=job.queue_depth
        )
    result = run_program(
        program, machine, RunOptions(engine=engine, sched=sched)
    )
    report = collect_report(
        result, workload=job.workload, hub=hub, engine=engine,
        target=job.target,
    ).as_dict()
    return {
        "report": report,
        "output": list(result.output),
        "compiles": compiles,
        "cache_hits": cache_hits,
        "translations": translations,
        "warm": memoized is not None,
        "wall_seconds": time.perf_counter() - started,
    }


def worker_main(worker_id: str, cache_dir: Optional[str], conn) -> None:
    """The worker-process loop: recv job, execute, send result.

    The duplex pipe ``conn`` is the worker's only channel: a message is
    ``(index, attempt, job)``; ``None`` is the shutdown sentinel.  Every
    reply carries the worker id and job index so the driver can match
    results to assignments.  Unexpected exceptions are reported as
    ``("err", ...)`` — deterministic job failures, never retried — while
    a hard crash simply drops the pipe, which the driver observes as
    EOF.
    """
    from repro.compiler.cache import cache_at

    cache = cache_at(cache_dir) if cache_dir else None
    memo: dict = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        index, _attempt, job = message
        try:
            payload = execute_job(job, cache=cache, memo=memo)
        except Exception as exc:  # deterministic: report, don't retry
            try:
                conn.send(
                    ("err", worker_id, index,
                     f"{type(exc).__name__}: {exc}")
                )
            except (BrokenPipeError, OSError):
                break
            continue
        try:
            conn.send(("ok", worker_id, index, payload))
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass


def run_jobs_serial(
    jobs: list[FarmJob],
    cache_dir: Optional[str] = None,
    on_result: Optional[Callable] = None,
):
    """Execute ``jobs`` serially in-process: the farm's reference shape.

    Returns the same :class:`~repro.farm.driver.BatchSummary` a
    :class:`~repro.farm.driver.Farm` produces (``workers`` 0, worker id
    ``"serial"``), with per-job reports byte-identical to the pooled
    run.  Fault directives are honoured — a ``crash`` job takes the
    whole process down — so serial baselines should use fault-free
    batches.
    """
    from repro.compiler.cache import cache_at
    from repro.farm.driver import BatchSummary, summarize_batch

    cache = cache_at(cache_dir) if cache_dir else None
    memo: dict = {}
    hub = MetricsHub()
    started = time.perf_counter()
    results = []
    for index, job in enumerate(jobs):
        payload = execute_job(job, cache=cache, memo=memo)
        result = JobResult(
            index=index,
            job=job,
            report=payload["report"],
            output=payload["output"],
            worker="serial",
            attempts=1,
            wall_seconds=payload["wall_seconds"],
            compiles=payload["compiles"],
            cache_hits=payload["cache_hits"],
            translations=payload["translations"],
            warm=payload["warm"],
        )
        hub.observe(
            "farm.job_wall_ms", None, int(payload["wall_seconds"] * 1000)
        )
        results.append(result)
        if on_result is not None:
            on_result(result)
    wall = time.perf_counter() - started
    return summarize_batch(
        results, workers=0, wall_seconds=wall, retried=0, hub=hub,
        worker_busy={"serial": wall},
    )

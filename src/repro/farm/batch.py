"""Batch builders and the farm batch-file format.

A batch file is JSON: either a plain list of job specs or
``{"kind": "repro-farm-batch", "jobs": [...]}``, each spec the
:meth:`repro.farm.job.FarmJob.as_dict` shape.  The builders generate
the canonical corpora the CLI, CI and benchmarks use:

* :func:`mixed_corpus` — the CI farm batch: 2 workloads x 2 targets x
  2 policies (8 jobs), small enough to run cold+warm in seconds;
* :func:`figure2_batch` — N seed-varied Figure 2 frame loops, the
  throughput-scaling batch behind the ``farm`` section of
  ``BENCH_vm.json``;
* :func:`determinism_batch` — seed/policy/target cross mix for the
  byte-identity tests.

Seeds vary *which* workload a generator emits (entity counts, frame
counts), never how it executes — the simulator stays deterministic.
"""

from __future__ import annotations

import json

from repro.farm.job import FarmJob
from repro.game.sources import ai_kernel_source, figure2_source

#: Batch-file discriminator (optional; a bare list is also accepted).
BATCH_KIND = "repro-farm-batch"


def _figure2_for_seed(seed: int, scale: int = 1) -> str:
    """A Figure 2 frame loop whose shape varies with ``seed``."""
    return figure2_source(
        entity_count=(8 + 4 * (seed % 4)) * scale,
        pair_count=(6 + 2 * (seed % 3)) * scale,
        frames=1 + seed % 2,
    )


def mixed_corpus(seed: int = 0, engine: str | None = None) -> list[FarmJob]:
    """2 workloads x 2 targets x 2 policies: the CI farm batch."""
    jobs = []
    workloads = (
        ("figure2", _figure2_for_seed(seed)),
        ("ai-kernel", ai_kernel_source(entity_count=8 + 4 * (seed % 3))),
    )
    for workload, source in workloads:
        for target in ("cell", "apu"):
            for policy in ("greedy", "locality"):
                jobs.append(
                    FarmJob(
                        workload=workload,
                        source=source,
                        target=target,
                        engine=engine,
                        policy=policy,
                        seed=seed,
                    )
                )
    return jobs


def figure2_batch(
    count: int = 16,
    target: str = "cell",
    engine: str | None = "compiled",
    policy: str | None = "locality",
    scale: int = 1,
) -> list[FarmJob]:
    """``count`` seed-varied Figure 2 jobs on one target.

    Seeds cycle through a small set of distinct shapes, so the batch
    exercises both the compile cache (repeat shapes hit) and the warm
    memo, while staying a pure-throughput workload for the scaling
    benchmark.
    """
    return [
        FarmJob(
            workload=f"figure2-s{seed % 4}",
            source=_figure2_for_seed(seed % 4, scale),
            target=target,
            engine=engine,
            policy=policy,
            seed=seed % 4,
        )
        for seed in range(count)
    ]


def determinism_batch(targets=("cell", "apu", "manycore")) -> list[FarmJob]:
    """12 jobs mixing targets, policies, engines and seeds."""
    jobs = []
    for target in targets:
        for policy, engine, seed in (
            ("greedy", "compiled", 0),
            ("locality", "compiled", 1),
            ("locality", "codegen", 0),
            (None, "reference", 1),
        ):
            jobs.append(
                FarmJob(
                    workload=f"figure2-s{seed}",
                    source=_figure2_for_seed(seed),
                    target=target,
                    engine=engine,
                    policy=policy,
                    seed=seed,
                )
            )
    return jobs


#: Named corpora the CLI exposes via ``--corpus``.
CORPORA = {
    "mixed": mixed_corpus,
    "figure2": figure2_batch,
    "determinism": determinism_batch,
}


def jobs_to_json(jobs: list[FarmJob]) -> str:
    """Serialize a batch to the batch-file format (pretty-printed)."""
    obj = {
        "kind": BATCH_KIND,
        "jobs": [job.as_dict() for job in jobs],
    }
    return json.dumps(obj, indent=2, sort_keys=True) + "\n"


def load_jobs(path: str) -> list[FarmJob]:
    """Load a batch file; raises ``ValueError`` on malformed input."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            obj = json.load(handle)
    except OSError as exc:
        raise ValueError(f"cannot read batch file {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"batch file {path!r} is not JSON: {exc}") from exc
    if isinstance(obj, dict):
        if obj.get("kind") not in (None, BATCH_KIND):
            raise ValueError(
                f"batch file {path!r}: kind must be {BATCH_KIND!r}, "
                f"got {obj.get('kind')!r}"
            )
        specs = obj.get("jobs")
    else:
        specs = obj
    if not isinstance(specs, list) or not specs:
        raise ValueError(
            f"batch file {path!r} must contain a non-empty job list"
        )
    jobs = []
    for position, spec in enumerate(specs):
        try:
            jobs.append(FarmJob.from_dict(spec))
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"batch file {path!r}, job [{position}]: {exc}"
            ) from exc
    return jobs

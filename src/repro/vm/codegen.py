"""Source-codegen execution engine.

The closure-compiled engine (:mod:`repro.vm.compiled`) removed the
per-instruction decode, but still pays one Python *call* per fused
block closure, one list indexing per dispatch, and one attribute hop
per register access (``st.regs[i]``).  This engine removes those too:
each IR function is translated into real generated Python source — one
``def`` per IR function, virtual registers lowered to Python *locals*,
fused basic blocks becoming straight-line statements, and cycle /
perf-counter / budget updates batched per block — then compiled with
:func:`compile` / ``exec`` and dispatched as an ordinary Python call::

    def _f0_main(eng, ctx):
        r0 = r1 = 0
        ctx.now += 4
        eng._sc_calls.count += 1
        ...
        _pc = 0
        while True:
            if _pc == 0:
                eng._instructions += 12
                ...
                ctx.now += 9            # batched clock-blind charges
                r0 = (r1 + r2 + 0x80000000 & 0xFFFFFFFF) - 0x80000000
                ...

Translation scheme
------------------

* **Registers -> locals.**  Register ``i`` becomes local ``r{i}``;
  function parameters are the leading locals, bound directly from the
  generated function's positional parameters.
* **Block fusion.**  Leaders are the entry plus *actual* jump targets
  (not every label), so straight-line runs are longer than the compiled
  engine's.  Functions without branches compile to pure straight-line
  code with no dispatch loop at all; branching functions use a
  ``while True`` / ``if _pc == N`` ladder with ``continue`` as the only
  dispatch overhead.
* **Cycle batching.**  Clock-blind instructions (arithmetic, moves,
  scalar local/main traffic, word extract/insert, print and math
  intrinsics) are charged in one ``ctx.now += total`` per run;
  segments break at every clock-observing instruction (calls,
  outer-space accesses, DMA intrinsics, offload launch/join, bulk
  copies, branches), so ``ctx.now`` is exactly the reference engine's
  at every observation point.
* **Typedness.**  A per-function fixpoint classifies registers as
  int-typed / float-typed / unknown, eliding the defensive ``int()`` /
  ``float()`` coercions where a register's value class is proven.
* **Per-duplicate specialization.**  Offload duplicates are separate
  IR functions (``IRFunction.duplicate_id``), so each duplicate gets
  its own specialized generated function — memory-space operands and
  codecs are baked per duplicate, never re-dispatched.
* **Single source of truth.**  Stateful machinery — offload scheduling
  through :mod:`repro.sched`, domain dispatch, DMA engines, bulk
  copies, race checking — is *called into* the reference
  implementation (``eng._run_offload``, ``eng._domain_call_values``,
  ...), never re-implemented, which is how the engine stays cycle-,
  counter- and trace-identical to both existing engines.

Caching
-------

Generated source is cached at two levels:

* in memory on the :class:`~repro.ir.module.IRProgram` object itself,
  keyed by cost-model identity (like the compiled engine's per-function
  ops cache), so repeat runs of one program object never regenerate;
* on disk in the content-addressed compile cache
  (:mod:`repro.compiler.cache`), keyed by sha256 over the canonical
  program artifact + the cost model + :data:`CODEGEN_VERSION`, stored
  alongside the program artifact shards as ``<key>.codegen.py``.  With
  a cache attached (``REPRO_COMPILE_CACHE`` or an explicit cache), a
  warm start loads the source text and ``exec``\\ s it without running
  the translator at all (``CodegenStats.translations == 0``).

Functions using an instruction the translator does not know fall back
per-function to the closure-compiled path; everything else in the
program still runs generated code.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from typing import Callable, Optional

from repro.ir.instructions import (
    AccSpace,
    BinOp,
    CJump,
    Call,
    Const,
    Copy,
    DomainCall,
    Extract,
    FrameAddr,
    GlobalAddr,
    ICall,
    Insert,
    Instr,
    Intrinsic,
    Jump,
    Load,
    Move,
    OffloadJoin,
    OffloadLaunch,
    Ret,
    Store,
    Trap,
    UnOp,
)
from repro.ir.module import IRFunction, IRProgram
from repro.ir.serialize import ARTIFACT_VERSION, program_to_dict, to_canonical_json
from repro.machine.config import CostModel
from repro.machine.machine import Machine
from repro.machine.memory import scalar_codec
from repro.vm.compiled import CompiledInterpreter
from repro.vm.context import ThreadContext
from repro.vm.interpreter import RunOptions

#: Bumped whenever the translation scheme changes in any way that can
#: affect generated source; part of the disk cache key so stale cached
#: modules are never re-executed.
CODEGEN_VERSION = 1

#: File suffix of cached generated source inside the compile cache
#: (stored as ``<dir>/<key[:2]>/<key>.codegen.py``).
CODEGEN_KIND = "codegen.py"

#: Pseudo-filename under which generated modules are compiled (shows up
#: in tracebacks from generated code).
MODULE_FILENAME = "<repro.vm.codegen>"

_TERMINATORS = (Jump, CJump, Ret, Trap)

# Register value classes proven by the typedness analysis.
_INT = "int"
_FLT = "float"
_ANY = "any"

_SPACE_NAMES = {
    AccSpace.MAIN: "_SP_MAIN",
    AccSpace.LOCAL: "_SP_LOCAL",
    AccSpace.OUTER: "_SP_OUTER",
}

#: Value class of each intrinsic's destination register.
_INTRINSIC_TYPES = {
    "print_int": _INT,
    "print_float": _INT,
    "print_char": _INT,
    "sqrtf": _FLT,
    "fabsf": _FLT,
    "fminf": _FLT,
    "fmaxf": _FLT,
    "iabs": _INT,
    "imin": _INT,
    "imax": _INT,
    "dma_get": _INT,
    "dma_put": _INT,
    "dma_wait": _INT,
    "acc_bulk_get": _INT,
    "acc_bulk_put": _INT,
}


class _Unsupported(Exception):
    """Raised by the translator for constructs it cannot lower; the
    affected function falls back to the closure-compiled path."""


@dataclasses.dataclass
class CodegenStats:
    """Codegen accounting for one engine instance (or warm pass).

    ``translations`` counts IR functions whose source was *generated*
    this time; a warm start served entirely from the compile cache
    leaves it at 0.
    """

    translations: int = 0
    fallbacks: int = 0
    exec_loads: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    source_chars: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "codegen.translations": self.translations,
            "codegen.fallbacks": self.fallbacks,
            "codegen.exec_loads": self.exec_loads,
            "codegen.cache_hits": self.cache_hits,
            "codegen.cache_misses": self.cache_misses,
            "codegen.source_chars": self.source_chars,
        }


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def _float_literal(value: float) -> str:
    if math.isnan(value):
        return "math.nan"
    if math.isinf(value):
        return "math.inf" if value > 0 else "-math.inf"
    return repr(value)


def _literal(value: object) -> str:
    if isinstance(value, float):
        return _float_literal(value)
    return repr(value)


def _codec_suffix(key: tuple[int, bool, bool]) -> str:
    size, signed, is_float = key
    return f"{size}{'s' if signed else 'u'}{'f' if is_float else 'i'}"


def _infer_reg_types(function: IRFunction) -> dict[int, str]:
    """Flow-insensitive fixpoint classifying registers as int / float /
    unknown.  Unwritten registers read as their 0 initializer, so a
    register absent from the result is int-typed."""
    types: dict[int, str] = {r: _ANY for r in range(len(function.params))}

    def join(reg: Optional[int], t: str) -> bool:
        if reg is None:
            return False
        cur = types.get(reg)
        if cur is None:
            types[reg] = t
            return True
        if cur == t or cur == _ANY:
            return False
        types[reg] = _ANY
        return True

    changed = True
    while changed:
        changed = False
        for instr in function.code:
            if isinstance(instr, Const):
                t = _FLT if isinstance(instr.value, float) else _INT
                changed |= join(instr.dst, t)
            elif isinstance(instr, Move):
                src_t = types.get(instr.src)
                if src_t is not None:
                    changed |= join(instr.dst, src_t)
            elif isinstance(instr, BinOp):
                if instr.is_compare:
                    t = _INT
                else:
                    t = _FLT if instr.float_op else _INT
                changed |= join(instr.dst, t)
            elif isinstance(instr, UnOp):
                op = instr.op
                if op == "-":
                    t = _FLT if instr.float_op else _INT
                elif op == "itof":
                    t = _FLT
                elif op in ("!", "~", "ftoi") or op.startswith(("sext", "zext")):
                    t = _INT
                else:
                    t = _ANY
                changed |= join(instr.dst, t)
            elif isinstance(instr, Load):
                changed |= join(instr.dst, _FLT if instr.is_float else _INT)
            elif isinstance(instr, (Extract, Insert, FrameAddr, GlobalAddr)):
                changed |= join(instr.dst, _INT)
            elif isinstance(instr, OffloadLaunch):
                changed |= join(instr.dst, _INT)
            elif isinstance(instr, (Call, ICall, DomainCall)):
                changed |= join(instr.dst, _ANY)
            elif isinstance(instr, Intrinsic):
                changed |= join(
                    instr.dst, _INTRINSIC_TYPES.get(instr.name, _ANY)
                )
    return types


#: One emitted statement line: (relative indent, text).
_Lines = list[tuple[int, str]]


class _FunctionEmitter:
    """Translates one IR function into Python source lines."""

    def __init__(
        self,
        function: IRFunction,
        program: IRProgram,
        cost: CostModel,
        func_names: dict[str, str],
        generated: set[str],
        needs: set,
    ):
        self.fn = function
        self.program = program
        self.cost = cost
        self.func_names = func_names
        #: Program functions that will exist in the generated module
        #: (call sites to anything else go through ``eng``).
        self.generated = generated
        #: Shared accumulator of scalar-codec keys / module-level
        #: features the prelude must provide.
        self.needs = needs
        self.types = _infer_reg_types(function)
        self.uses_fb = False
        self.uses_ls = False
        self.uses_chk = False
        self.uses_mm = False

    # ------------------------------------------------------------ helpers

    def iv(self, reg: int) -> str:
        """Register as an int expression (coercion elided when proven)."""
        if self.types.get(reg, _INT) == _INT:
            return f"r{reg}"
        return f"int(r{reg})"

    def fv(self, reg: int) -> str:
        """Register as a float expression."""
        if self.types.get(reg) == _FLT:
            return f"r{reg}"
        return f"float(r{reg})"

    def _codec_name(self, kind: str, key: tuple[int, bool, bool]) -> str:
        self.needs.add(("codec", key))
        return f"_{kind}_{_codec_suffix(key)}"

    # -------------------------------------------------------------- emit

    def emit(self) -> str:
        fn = self.fn
        code = fn.code
        n = len(code)
        nparams = len(fn.params)
        pyname = self.func_names[fn.name]

        blocks = self._collect_blocks()
        loop_mode = any(isinstance(i, (Jump, CJump)) for i in code)

        body: _Lines = []
        if loop_mode:
            body.append((0, "_pc = 0"))
            body.append((0, "while True:"))
            first = True
            for leader, end, span in blocks:
                body.append((1, f"{'if' if first else 'elif'} _pc == {leader}:"))
                first = False
                block_lines = self._emit_block(leader, end, span, loop_mode=True)
                body.extend((ind + 2, text) for ind, text in block_lines)
            body.append((1, "else:"))
            body.append((2, "break"))
            body.extend(self._exit_lines())
        elif n:
            leader, end, span = blocks[0]
            block_lines = self._emit_block(leader, end, span, loop_mode=False)
            body.extend(block_lines)
            last = code[end - 1] if end else None
            if not isinstance(last, (Ret, Trap)):
                body.extend(self._exit_lines())
        else:
            body.extend(self._exit_lines())

        # Prologue (after the body so the uses_* flags are known).
        params = "".join(f", r{i}" for i in range(nparams))
        lines: _Lines = [(0, f"def {pyname}(eng, ctx{params}):")]
        used = self._used_regs()
        init = sorted(r for r in used if r >= nparams)
        if init:
            lines.append((1, " = ".join(f"r{r}" for r in init) + " = 0"))
        if fn.frame_size:
            lines.append((1, "_stk = ctx.stack"))
            lines.append((1, "_sp0 = _stk.sp"))
            lines.append((1, f"_fb = _stk.push({fn.frame_size})"))
        elif self.uses_fb:
            lines.append((1, "_fb = ctx.stack.sp"))
        lines.append((1, f"ctx.now += {self.cost.call}"))
        lines.append((1, "eng._sc_calls.count += 1"))
        lines.append((1, "_tr = eng._trace"))
        lines.append((1, "if _tr.enabled:"))
        lines.append((2, f"eng._emit_enter(ctx, {fn.name!r})"))
        if self.uses_ls:
            lines.append((1, "_ls = ctx.local_store"))
        if self.uses_chk:
            lines.append((
                1,
                "_chk = eng._chk_discipline and ctx.is_accel"
                " and ctx.core.dma is not None",
            ))
        if self.uses_mm:
            lines.append((1, "_mm = ctx.main_memory"))
        if fn.frame_size:
            lines.append((1, "try:"))
            lines.extend((ind + 2, text) for ind, text in body)
            lines.append((1, "finally:"))
            lines.append((2, "_stk.pop(_sp0)"))
        else:
            lines.extend((ind + 1, text) for ind, text in body)

        return "\n".join("    " * ind + text for ind, text in lines) + "\n"

    def _used_regs(self) -> set[int]:
        used: set[int] = set(range(len(self.fn.params)))
        for instr in self.fn.code:
            for field_name in (
                "dst", "src", "a", "b", "addr", "cond", "word", "value",
                "offset", "func_id", "handle", "src_addr", "dst_addr",
                "size_reg",
            ):
                reg = getattr(instr, field_name, None)
                if isinstance(reg, int) and not isinstance(reg, bool):
                    # Extract/Insert const_offset path leaves offset None;
                    # every register field is a plain int index.
                    used.add(reg)
            args = getattr(instr, "args", None)
            if args:
                used.update(args)
        return used

    def _exit_lines(self) -> _Lines:
        return [
            (0, "if _tr.enabled:"),
            (1, f"eng._emit_exit(ctx, {self.fn.name!r})"),
            (0, "return 0"),
        ]

    # ------------------------------------------------------------- blocks

    def _collect_blocks(self) -> list[tuple[int, int, int]]:
        """(leader, end, span) per block.  Leaders are the entry plus
        resolvable in-range jump targets — fewer than the compiled
        engine's every-label leaders, so straight-line runs are longer.
        Spans still count exactly the executed instructions."""
        fn = self.fn
        code = fn.code
        n = len(code)
        if n == 0:
            return []
        targets: set[int] = set()
        for instr in code:
            if isinstance(instr, Jump):
                t = fn.labels.get(instr.label)
                if t is not None and 0 <= t < n:
                    targets.add(t)
            elif isinstance(instr, CJump):
                for label in (instr.then_label, instr.else_label):
                    t = fn.labels.get(label)
                    if t is not None and 0 <= t < n:
                        targets.add(t)
        leaders = sorted({0, *targets})
        blocks = []
        for pos, leader in enumerate(leaders):
            limit = leaders[pos + 1] if pos + 1 < len(leaders) else n
            end = limit
            for j in range(leader, limit):
                if isinstance(code[j], _TERMINATORS):
                    end = j + 1
                    break
            blocks.append((leader, end, end - leader))
        return blocks

    def _emit_block(
        self, leader: int, end: int, span: int, loop_mode: bool
    ) -> _Lines:
        code = self.fn.code
        out: _Lines = [
            (0, f"eng._instructions += {span}"),
            (0, "if eng._instructions > eng._budget:"),
            (
                1,
                'raise RuntimeTrap(f"instruction budget exceeded'
                ' ({eng._budget})")',
            ),
        ]
        pending_charge = 0
        pending_lines: _Lines = []

        def flush() -> None:
            nonlocal pending_charge
            if pending_charge:
                out.append((0, f"ctx.now += {pending_charge}"))
                pending_charge = 0
            out.extend(pending_lines)
            pending_lines.clear()

        for index in range(leader, end):
            instr = code[index]
            if isinstance(instr, _TERMINATORS):
                flush()
                out.extend(self._emit_terminator(instr, loop_mode))
                return out
            lines, charge = self._translate(instr)
            if charge is None:
                flush()
                out.extend(lines)
            else:
                pending_charge += charge
                pending_lines.extend(lines)
        flush()
        # Fall-through into the next leader (or off the end).
        if loop_mode:
            if end < len(code):
                out.append((0, f"_pc = {end}"))
                out.append((0, "continue"))
            else:
                out.append((0, "break"))
        return out

    # -------------------------------------------------------- terminators

    def _branch_lines(self, label: str) -> _Lines:
        """Transfer control to ``label`` (charge already emitted)."""
        target = self.fn.labels.get(label)
        n = len(self.fn.code)
        if target is None:
            return [(0, f"raise KeyError({label!r})")]
        if target >= n:
            return [(0, "break")]
        return [(0, f"_pc = {target}"), (0, "continue")]

    def _emit_terminator(self, instr: Instr, loop_mode: bool) -> _Lines:
        cost = self.cost
        if isinstance(instr, Ret):
            value = f"r{instr.src}" if instr.src is not None else "0"
            return [
                (0, f"ctx.now += {cost.ret}"),
                (0, "if _tr.enabled:"),
                (1, f"eng._emit_exit(ctx, {self.fn.name!r})"),
                (0, f"return {value}"),
            ]
        if isinstance(instr, Trap):
            return [(0, f"raise RuntimeTrap({instr.message!r})")]
        if isinstance(instr, Jump):
            out: _Lines = [(0, f"ctx.now += {cost.branch}")]
            if not loop_mode:
                # Only reachable for a jump straight to the exit (any
                # other target would have forced loop mode).
                target = self.fn.labels.get(instr.label)
                if target is None:
                    out.append((0, f"raise KeyError({instr.label!r})"))
                return out
            out.extend(self._branch_lines(instr.label))
            return out
        assert isinstance(instr, CJump)
        out = [(0, f"ctx.now += {cost.branch}")]
        then_t = self.fn.labels.get(instr.then_label)
        else_t = self.fn.labels.get(instr.else_label)
        n = len(self.fn.code)
        plain = (
            then_t is not None and 0 <= then_t < n
            and else_t is not None and 0 <= else_t < n
        )
        if plain and loop_mode:
            out.append((0, f"_pc = {then_t} if r{instr.cond} else {else_t}"))
            out.append((0, "continue"))
            return out
        if not loop_mode:
            raise _Unsupported("CJump outside loop mode")
        out.append((0, f"if r{instr.cond}:"))
        out.extend((ind + 1, text) for ind, text in
                   self._branch_lines(instr.then_label))
        out.append((0, "else:"))
        out.extend((ind + 1, text) for ind, text in
                   self._branch_lines(instr.else_label))
        return out

    # ----------------------------------------------------- instructions

    def _translate(self, instr: Instr) -> tuple[_Lines, Optional[int]]:
        """One straight-line instruction -> source lines + static cycle
        charge (None for clock-observing instructions, which charge
        ``ctx.now`` in their own lines)."""
        cost = self.cost
        alu = cost.alu

        if isinstance(instr, Const):
            return [(0, f"r{instr.dst} = {_literal(instr.value)}")], alu

        if isinstance(instr, Move):
            return [(0, f"r{instr.dst} = r{instr.src}")], alu

        if isinstance(instr, BinOp):
            return self._emit_binop(instr), alu

        if isinstance(instr, UnOp):
            return self._emit_unop(instr), alu

        if isinstance(instr, Load):
            return self._emit_load(instr)

        if isinstance(instr, Store):
            return self._emit_store(instr)

        if isinstance(instr, Copy):
            size = (
                self.iv(instr.size_reg)
                if instr.size_reg is not None
                else str(instr.size)
            )
            src_sp = _SPACE_NAMES[instr.src_space]
            dst_sp = _SPACE_NAMES[instr.dst_space]
            return [(
                0,
                f"eng._copy_values({src_sp}, {dst_sp}, "
                f"{self.iv(instr.src_addr)}, {self.iv(instr.dst_addr)}, "
                f"{size}, ctx)",
            )], None

        if isinstance(instr, Extract):
            return self._emit_extract(instr)

        if isinstance(instr, Insert):
            return self._emit_insert(instr)

        if isinstance(instr, FrameAddr):
            self.uses_fb = True
            expr = f"_fb + {instr.offset}" if instr.offset else "_fb"
            return [(0, f"r{instr.dst} = {expr}")], alu

        if isinstance(instr, GlobalAddr):
            slot = self.program.globals.get(instr.name)
            if slot is None:
                # Unknown global: surface the reference engine's KeyError
                # at execution time, not at codegen time.
                expr = f"eng.program.globals[{instr.name!r}].address"
            else:
                expr = str(slot.address)
            return [(0, f"r{instr.dst} = {expr}")], alu

        if isinstance(instr, Call):
            return self._emit_call(instr), None

        if isinstance(instr, ICall):
            return self._emit_icall(instr), None

        if isinstance(instr, DomainCall):
            args = ", ".join(f"r{a}" for a in instr.args)
            call = (
                f"eng._domain_call_values({instr.offload_id}, "
                f"{instr.duplicate_id!r}, {self.iv(instr.func_id)}, "
                f"[{args}], ctx)"
            )
            if instr.dst is not None:
                call = f"r{instr.dst} = {call}"
            return [(0, call)], None

        if isinstance(instr, Intrinsic):
            return self._emit_intrinsic(instr)

        if isinstance(instr, OffloadLaunch):
            args = ", ".join(f"r{a}" for a in instr.args)
            return [(
                0,
                f"r{instr.dst} = eng._run_offload({instr.offload_id}, "
                f"{instr.entry!r}, [{args}], ctx)",
            )], None

        if isinstance(instr, OffloadJoin):
            return [(
                0, f"eng._join_offload({self.iv(instr.handle)}, ctx)"
            )], None

        # Unknown instruction class: fail at execution time exactly like
        # the reference loop does.
        message = f"unhandled instruction {instr!r}"
        return [(0, f"raise AssertionError({message!r})")], None

    # --------------------------------------------------------- arithmetic

    def _emit_binop(self, instr: BinOp) -> _Lines:
        d, a, b, op = instr.dst, instr.a, instr.b, instr.op
        if instr.is_compare:
            return [(0, f"r{d} = 1 if r{a} {op} r{b} else 0")]
        if instr.float_op:
            fa, fb = self.fv(a), self.fv(b)
            if op == "/":
                return [
                    (0, f"_x = {fa}"),
                    (0, f"_y = {fb}"),
                    (0, "if _y == 0.0:"),
                    (
                        1,
                        f"r{d} = math.inf if _x > 0"
                        " else (-math.inf if _x < 0 else math.nan)",
                    ),
                    (0, "else:"),
                    (1, f"r{d} = _x / _y"),
                ]
            if op in ("+", "-", "*"):
                return [(0, f"r{d} = {fa} {op} {fb}")]
            raise _Unsupported(f"float op {op}")
        ia, ib = self.iv(a), self.iv(b)
        if op in ("+", "-", "*", "&", "|", "^"):
            core = f"{ia} {op} {ib}"
        elif op == "/":
            core = f"_int_div({ia}, {ib})"
        elif op == "%":
            core = f"_int_rem({ia}, {ib})"
        elif op == "<<":
            core = f"{ia} << ({ib} & 31)"
        elif op == ">>":
            if instr.signed:
                core = f"{ia} >> ({ib} & 31)"
            else:
                core = f"({ia} & 0xFFFFFFFF) >> ({ib} & 31)"
        else:
            raise _Unsupported(f"int op {op}")
        if instr.signed:
            return [(
                0,
                f"r{d} = (({core}) + 0x80000000 & 0xFFFFFFFF) - 0x80000000",
            )]
        return [(0, f"r{d} = ({core}) & 0xFFFFFFFF")]

    def _emit_unop(self, instr: UnOp) -> _Lines:
        d, a, op = instr.dst, instr.a, instr.op
        if op == "-":
            if instr.float_op:
                return [(0, f"r{d} = -{self.fv(a)}")]
            return [(
                0,
                f"r{d} = (-{self.iv(a)} + 0x80000000 & 0xFFFFFFFF)"
                " - 0x80000000",
            )]
        if op == "!":
            return [(0, f"r{d} = 0 if r{a} else 1")]
        if op == "~":
            return [(
                0,
                f"r{d} = (~{self.iv(a)} + 0x80000000 & 0xFFFFFFFF)"
                " - 0x80000000",
            )]
        if op == "itof":
            return [(0, f"r{d} = float({self.iv(a)})")]
        if op == "ftoi":
            return [
                (0, f"_x = {self.fv(a)}"),
                (0, "if math.isnan(_x) or math.isinf(_x):"),
                (1, f"r{d} = 0"),
                (0, "else:"),
                (
                    1,
                    f"r{d} = (math.trunc(_x) + 0x80000000 & 0xFFFFFFFF)"
                    " - 0x80000000",
                ),
            ]
        if op in ("sext8", "sext16", "zext8", "zext16"):
            bits = 8 if op.endswith("8") else 16
            mask = (1 << bits) - 1
            if op.startswith("zext"):
                return [(0, f"r{d} = {self.iv(a)} & {mask:#x}")]
            sign_bit = 1 << (bits - 1)
            modulus = 1 << bits
            return [
                (0, f"_v = {self.iv(a)} & {mask:#x}"),
                (0, f"if _v >= {sign_bit}:"),
                (1, f"_v -= {modulus}"),
                (0, f"r{d} = _v"),
            ]
        raise _Unsupported(f"unary op {op}")

    # ------------------------------------------------------------- memory

    def _emit_load(self, instr: Load) -> tuple[_Lines, Optional[int]]:
        d, size = instr.dst, instr.size
        addr = self.iv(instr.addr)
        codec = scalar_codec(*instr.scalar_key)

        if instr.space is AccSpace.OUTER:
            lines: _Lines = [
                (0, "_s = ctx.strategy"),
                (0, "assert _s is not None"),
                (0, f"_data, ctx.now = _s.load({addr}, {size}, ctx.now)"),
                (0, "eng._sc_outer_loads.count += 1"),
                (0, f"eng._sc_outer_read.count += {size}"),
            ]
            if codec is not None:
                up = self._codec_name("up", instr.scalar_key)
                lines.append((0, f"r{d} = {up}(_data)[0]"))
            else:
                lines.append((
                    0,
                    f'r{d} = int.from_bytes(_data, "little",'
                    f" signed={instr.signed})",
                ))
            return lines, None

        if codec is None:
            # Exotic width: defer to the reference helpers wholesale
            # (which charge the clock themselves).
            sp = _SPACE_NAMES[instr.space]
            return [
                (0, f"_data = eng._read_mem({sp}, {addr}, {size}, ctx)"),
                (
                    0,
                    f"r{d} = eng._decode(_data, {instr.signed},"
                    f" {instr.is_float})",
                ),
            ], None

        upf = self._codec_name("upf", instr.scalar_key)
        if instr.space is AccSpace.MAIN:
            self.uses_mm = True
            return [
                (0, f"_a = {addr}"),
                (0, f"if _a < 0 or _a + {size} > _mm.size:"),
                (1, f"_mm.check_bounds(_a, {size})"),
                (0, f"r{d} = {upf}(_mm._data, _a)[0]"),
            ], self.cost.host_mem_access

        self.uses_ls = True
        self.uses_chk = True
        return [
            (0, "if _ls is None:"),
            (
                1,
                'raise RuntimeTrap(f"local-store access on core'
                ' {ctx.name} which has none")',
            ),
            (0, f"_a = {addr}"),
            (0, "if _chk:"),
            (1, "_dma = ctx.core.dma"),
            (1, "if _dma._in_flight:"),
            (2, f"_cf = _dma.pending_local_conflict(_a, {size})"),
            (2, "if _cf is not None:"),
            (
                3,
                'raise RuntimeTrap(f"local store read at {_a:#x} overlaps'
                ' in-flight {_cf.describe()}; missing dma_wait")',
            ),
            (0, f"if _a < 0 or _a + {size} > _ls.size:"),
            (1, f"_ls.check_bounds(_a, {size})"),
            (0, f"r{d} = {upf}(_ls._data, _a)[0]"),
        ], self.cost.local_access

    def _emit_store(self, instr: Store) -> tuple[_Lines, Optional[int]]:
        src, size = instr.src, instr.size
        addr = self.iv(instr.addr)
        is_float = instr.is_float
        key = (size, False, is_float)
        codec = scalar_codec(*key)

        if instr.space is AccSpace.OUTER:
            if is_float:
                if codec is not None:
                    pk = self._codec_name("pk", key)
                    enc = f"_data = {pk}({self.fv(src)})"
                else:
                    enc = f"_data = _I._encode(r{src}, {size}, True)"
            else:
                enc = (
                    f"_data = ({self.iv(src)} & {instr.mask:#x})"
                    f'.to_bytes({size}, "little")'
                )
            return [
                (0, enc),
                (0, "_s = ctx.strategy"),
                (0, "assert _s is not None"),
                (0, f"ctx.now = _s.store({addr}, _data, ctx.now)"),
                (0, "eng._sc_outer_stores.count += 1"),
                (0, f"eng._sc_outer_written.count += {size}"),
            ], None

        if codec is None:
            sp = _SPACE_NAMES[instr.space]
            return [
                (0, f"_data = eng._encode(r{src}, {size}, {is_float})"),
                (0, f"eng._write_mem({sp}, {addr}, _data, ctx)"),
            ], None

        pki = self._codec_name("pki", key)
        value = (
            f"_v = {self.fv(src)}"
            if is_float
            else f"_v = {self.iv(src)} & {instr.mask:#x}"
        )
        if instr.space is AccSpace.MAIN:
            self.uses_mm = True
            return [
                (0, value),
                (0, f"_a = {addr}"),
                (0, f"if _a < 0 or _a + {size} > _mm.size:"),
                (1, f"_mm.check_bounds(_a, {size})"),
                (0, f"{pki}(_mm._data, _a, _v)"),
            ], self.cost.host_mem_access

        self.uses_ls = True
        return [
            (0, value),
            (0, "if _ls is None:"),
            (
                1,
                'raise RuntimeTrap(f"local-store access on core'
                ' {ctx.name} which has none")',
            ),
            (0, f"_a = {addr}"),
            (0, f"if _a < 0 or _a + {size} > _ls.size:"),
            (1, f"_ls.check_bounds(_a, {size})"),
            (0, f"{pki}(_ls._data, _a, _v)"),
        ], self.cost.local_access

    # ----------------------------------------------------------- sub-word

    def _emit_extract(self, instr: Extract) -> tuple[_Lines, int]:
        d = instr.dst
        mask, sign_bit, modulus = instr.mask, instr.sign_bit, instr.modulus
        word = self.iv(instr.word)
        if instr.const_offset is not None:
            shift = 8 * instr.const_offset
            expr = f"({word} >> {shift}) & {mask:#x}" if shift else f"{word} & {mask:#x}"
            charge = self.cost.word_extract
        else:
            expr = f"({word} >> (8 * {self.iv(instr.offset)})) & {mask:#x}"
            charge = 2 * self.cost.word_extract
        if instr.signed:
            lines: _Lines = [
                (0, f"_v = {expr}"),
                (0, f"if _v >= {sign_bit}:"),
                (1, f"_v -= {modulus}"),
                (0, f"r{d} = _v"),
            ]
        else:
            lines = [(0, f"r{d} = {expr}")]
        lines.append((0, "eng._sc_extracts.count += 1"))
        return lines, charge

    def _emit_insert(self, instr: Insert) -> tuple[_Lines, int]:
        d = instr.dst
        mask = instr.mask
        word = self.iv(instr.word)
        value = self.iv(instr.value)
        if instr.const_offset is not None:
            shift = 8 * instr.const_offset
            shifted_mask = mask << shift
            merged = (
                f"({word} & ~{shifted_mask:#x})"
                f" | (({value} & {mask:#x}) << {shift})"
            )
            lines: _Lines = [
                (0, f"r{d} = ({merged}) & 0xFFFFFFFF"),
            ]
            charge = self.cost.word_extract
        else:
            lines = [
                (0, f"_sh = 8 * {self.iv(instr.offset)}"),
                (
                    0,
                    f"r{d} = (({word} & ~({mask:#x} << _sh))"
                    f" | (({value} & {mask:#x}) << _sh)) & 0xFFFFFFFF",
                ),
            ]
            charge = 2 * self.cost.word_extract
        lines.append((0, "eng._sc_inserts.count += 1"))
        return lines, charge

    # -------------------------------------------------------------- calls

    def _emit_call(self, instr: Call) -> _Lines:
        args = ", ".join(f"r{a}" for a in instr.args)
        if instr.callee in self.generated:
            sep = ", " if args else ""
            call = f"{self.func_names[instr.callee]}(eng, ctx{sep}{args})"
        else:
            # Unknown or fallback callee: route through the engine (a
            # missing name raises the reference engine's KeyError).
            call = (
                f"eng._exec_function(eng.program.function({instr.callee!r}),"
                f" [{args}], ctx)"
            )
        if instr.dst is not None:
            call = f"r{instr.dst} = {call}"
        return [(0, call)]

    def _emit_icall(self, instr: ICall) -> _Lines:
        self.needs.add(("func_ids", None))
        args = ", ".join(f"r{a}" for a in instr.args)
        call = f"eng._call_by_name(_nm, [{args}], ctx)"
        if instr.dst is not None:
            call = f"r{instr.dst} = {call}"
        return [
            (0, f"_fid = {self.iv(instr.func_id)}"),
            (0, "_nm = _FUNC_IDS.get(_fid)"),
            (0, "if _nm is None:"),
            (
                1,
                'raise RuntimeTrap(f"indirect call through bad function'
                ' id {_fid:#x}")',
            ),
            (0, f"ctx.now += {self.cost.vtable_load}"),
            (0, call),
        ]

    # --------------------------------------------------------- intrinsics

    def _emit_intrinsic(self, instr: Intrinsic) -> tuple[_Lines, Optional[int]]:
        name = instr.name
        d = instr.dst
        args = instr.args
        alu = self.cost.alu

        def assign(expr: str) -> _Lines:
            if d is None:
                return []
            return [(0, f"r{d} = {expr}")]

        if name in ("print_int", "print_float", "print_char"):
            if name == "print_int":
                conv = self.iv(args[0])
            elif name == "print_float":
                conv = self.fv(args[0])
            else:
                conv = f"chr({self.iv(args[0])} & 0xFF)"
            lines: _Lines = [
                (0, f"eng.output.append((ctx.name, {conv}))"),
            ]
            lines.extend(assign("0"))
            return lines, alu

        if name == "sqrtf":
            lines = [(0, f"_x = {self.fv(args[0])}")]
            lines.extend(
                assign("math.sqrt(_x) if _x >= 0 else math.nan")
            )
            return lines, 4 * alu

        if name == "fabsf":
            return assign(f"abs({self.fv(args[0])})"), alu

        if name == "iabs":
            return assign(
                f"(abs({self.iv(args[0])}) + 0x80000000 & 0xFFFFFFFF)"
                " - 0x80000000"
            ), alu

        if name in ("imin", "imax"):
            pick = "min" if name == "imin" else "max"
            return assign(
                f"{pick}({self.iv(args[0])}, {self.iv(args[1])})"
            ), alu

        if name in ("fminf", "fmaxf"):
            pick = "min" if name == "fminf" else "max"
            return assign(
                f"{pick}({self.fv(args[0])}, {self.fv(args[1])})"
            ), alu

        if name in ("dma_get", "dma_put"):
            verb = "get" if name == "dma_get" else "put"
            lines = [
                (0, "_dma = eng._require_dma(ctx)"),
                (0, f"_l = {self.iv(args[0])}"),
                (0, f"_o = {self.iv(args[1])}"),
                (0, f"_n = {self.iv(args[2])}"),
                (0, f"_t = {self.iv(args[3])}"),
                (0, "if _n <= 0:"),
                (
                    1,
                    f'raise RuntimeTrap(f"{name} with non-positive'
                    ' size {_n}")',
                ),
                (0, f"eng._check_dma_tag({name!r}, _t)"),
                (0, f"ctx.now = _dma.{verb}(_t, _l, _o, _n, ctx.now)"),
            ]
            lines.extend(assign("0"))
            return lines, None

        if name == "dma_wait":
            lines = [
                (0, "_dma = eng._require_dma(ctx)"),
                (0, f"_t = {self.iv(args[0])}"),
                (0, 'eng._check_dma_tag("dma_wait", _t)'),
                (0, "ctx.now = _dma.wait(_t, ctx.now)"),
            ]
            lines.extend(assign("0"))
            return lines, None

        if name in ("acc_bulk_get", "acc_bulk_put"):
            verb = "get" if name == "acc_bulk_get" else "put"
            counters = (
                ("accessor.bulk_gets", "accessor.bytes_in")
                if name == "acc_bulk_get"
                else ("accessor.bulk_puts", "accessor.bytes_out")
            )
            lines = [
                (0, "_dma = eng._require_dma(ctx)"),
                (0, f"_l = {self.iv(args[0])}"),
                (0, f"_o = {self.iv(args[1])}"),
                (0, f"_n = {self.iv(args[2])}"),
                (0, f"ctx.now = _dma.{verb}(_ACC_TAG, _l, _o, _n, ctx.now)"),
                (0, "ctx.now = _dma.wait(_ACC_TAG, ctx.now)"),
                (0, f'ctx.core.perf.add("{counters[0]}")'),
                (0, f'ctx.core.perf.add("{counters[1]}", _n)'),
            ]
            lines.extend(assign("0"))
            return lines, None

        # Unknown intrinsic: fail at execution time like the reference.
        message = f"unhandled intrinsic {name!r}"
        return [(0, f"raise AssertionError({message!r})")], None


# ----------------------------------------------------------------- module


def _prelude(needs: set, program: IRProgram) -> str:
    lines = [
        '"""Generated by repro.vm.codegen — do not edit."""',
        "import math",
        "from repro.errors import RuntimeTrap",
        "from repro.ir.instructions import AccSpace",
        "from repro.machine.memory import scalar_codec as _codec",
        "from repro.vm.interpreter import (",
        "    ACCESSOR_TAG as _ACC_TAG,",
        "    Interpreter as _I,",
        "    _int_div,",
        "    _int_rem,",
        ")",
        "",
        "_SP_MAIN = AccSpace.MAIN",
        "_SP_LOCAL = AccSpace.LOCAL",
        "_SP_OUTER = AccSpace.OUTER",
    ]
    codec_keys = sorted(
        key for kind, key in needs if kind == "codec"
    )
    for key in codec_keys:
        size, signed, is_float = key
        sfx = _codec_suffix(key)
        lines.append(f"_c_{sfx} = _codec({size}, {signed}, {is_float})")
        lines.append(f"_up_{sfx} = _c_{sfx}.unpack")
        lines.append(f"_upf_{sfx} = _c_{sfx}.unpack_from")
        lines.append(f"_pk_{sfx} = _c_{sfx}.pack")
        lines.append(f"_pki_{sfx} = _c_{sfx}.pack_into")
    if any(kind == "func_ids" for kind, _ in needs):
        ids = ", ".join(
            f"{fid}: {name!r}"
            for fid, name in sorted(program.function_ids.items())
        )
        lines.append(f"_FUNC_IDS = {{{ids}}}")
    lines.append("")
    return "\n".join(lines) + "\n"


def generate_module_source(
    program: IRProgram, cost: CostModel
) -> tuple[str, int, int]:
    """Translate every function of ``program`` into one Python module.

    Returns ``(source, generated_count, fallback_count)``; functions
    the translator cannot lower are left out of the module (the engine
    falls back to the closure-compiled path for them).
    """
    ordered = sorted(program.functions)
    func_names = {
        name: f"_f{i}_{_sanitize(name)}" for i, name in enumerate(ordered)
    }
    failed: set[str] = set()
    while True:
        needs: set = set()
        chunks: dict[str, str] = {}
        new_failed = set(failed)
        generated = set(ordered) - new_failed
        for name in ordered:
            if name in new_failed:
                continue
            emitter = _FunctionEmitter(
                program.functions[name], program, cost,
                func_names, generated, needs,
            )
            try:
                chunks[name] = emitter.emit()
            except _Unsupported:
                new_failed.add(name)
        if new_failed == failed:
            break
        failed = new_failed
    parts = [_prelude(needs, program)]
    parts.extend(chunks[name] for name in ordered if name in chunks)
    table = "".join(
        f"    {name!r}: {func_names[name]},\n"
        for name in ordered
        if name in chunks
    )
    parts.append("FUNCTIONS = {\n" + table + "}\n")
    return "\n".join(parts), len(chunks), len(failed)


def exec_module_source(source: str) -> dict[str, Callable]:
    """Compile and exec one generated module; returns its dispatch
    table (IR function name -> generated Python function)."""
    namespace: dict = {"__name__": "repro.vm._codegen_generated"}
    exec(compile(source, MODULE_FILENAME, "exec"), namespace)
    return namespace["FUNCTIONS"]


def codegen_cache_key(program: IRProgram, cost: CostModel) -> Optional[str]:
    """Content address of one program's generated module, or None when
    the program cannot be canonically serialized (hand-built IR with
    exotic instruction objects stays uncached, never wrong)."""
    try:
        material = to_canonical_json(
            {
                "codegen_version": CODEGEN_VERSION,
                "artifact_version": ARTIFACT_VERSION,
                "program": program_to_dict(program),
                "cost": dataclasses.asdict(cost),
            }
        )
    except Exception:
        return None
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def clear_codegen_cache(program: IRProgram) -> None:
    """Drop the in-memory generated module of ``program`` (after
    mutating its IR)."""
    program.__dict__.pop("_cg_module", None)
    program.__dict__.pop("_cg_source", None)


class CodegenInterpreter(CompiledInterpreter):
    """Drop-in engine executing generated Python source.

    All lifecycle, offload, domain-dispatch, DMA and intrinsic
    machinery is inherited; functions the translator cannot lower run
    on the inherited closure-compiled path.
    """

    def __init__(
        self,
        program: IRProgram,
        machine: Machine,
        options: Optional[RunOptions] = None,
    ):
        super().__init__(program, machine, options)
        self.codegen_stats = CodegenStats()
        self._gen_funcs: Optional[dict[str, Callable]] = None

    # ------------------------------------------------------------ dispatch

    def _exec_function(
        self, function: IRFunction, args: list[object], ctx: ThreadContext
    ) -> object:
        funcs = self._gen_funcs
        if funcs is None:
            funcs = self._ensure_module()
        fn = funcs.get(function.name)
        if fn is None:
            return CompiledInterpreter._exec_function(
                self, function, args, ctx
            )
        return fn(self, ctx, *args)

    def _call_by_name(
        self, name: str, args: list[object], ctx: ThreadContext
    ) -> object:
        """Indirect-call helper for generated code: resolves the callee
        like the reference engine (KeyError on unknown names)."""
        return self._exec_function(self.program.function(name), args, ctx)

    # -------------------------------------------------------------- trace

    def _emit_enter(self, ctx: ThreadContext, name: str) -> None:
        trace = self._trace
        track = ctx.core.name
        from repro.obs.trace import EV_ENTER, EV_FRAME

        trace.emit(ctx.now, track, EV_ENTER, (name,))
        marker = trace.frame_marker
        if marker is not None and name.endswith(marker):
            trace.emit(ctx.now, track, EV_FRAME, (name,))

    def _emit_exit(self, ctx: ThreadContext, name: str) -> None:
        from repro.obs.trace import EV_EXIT

        self._trace.emit(ctx.now, ctx.core.name, EV_EXIT, (name,))

    # ------------------------------------------------------------- module

    def _ensure_module(self, cache=None) -> dict[str, Callable]:
        """Build (or load) the generated module for this program + cost
        model; results are cached on the program object and, when a
        compile cache is available, on disk as generated source."""
        program = self.program
        stats = self.codegen_stats
        cached = program.__dict__.get("_cg_module")
        if (
            cached is not None
            and cached[0] is self._cost
            and cached[1] == CODEGEN_VERSION
        ):
            self._gen_funcs = cached[2]
            return cached[2]
        if cache is None:
            from repro.compiler.cache import resolve_cache

            cache = resolve_cache(None)
        source = None
        key = None
        if cache is not None:
            key = codegen_cache_key(program, self._cost)
            if key is not None:
                source = cache.load_text(key, kind=CODEGEN_KIND)
        if source is not None:
            stats.cache_hits += 1
        else:
            if cache is not None and key is not None:
                stats.cache_misses += 1
            source, generated, fallbacks = generate_module_source(
                program, self._cost
            )
            stats.translations += generated
            stats.fallbacks += fallbacks
            if cache is not None and key is not None:
                cache.store_text(key, source, kind=CODEGEN_KIND)
        funcs = exec_module_source(source)
        stats.exec_loads += 1
        stats.source_chars = len(source)
        program._cg_module = (self._cost, CODEGEN_VERSION, funcs)  # type: ignore[attr-defined]
        program._cg_source = source  # type: ignore[attr-defined]
        self._gen_funcs = funcs
        return funcs

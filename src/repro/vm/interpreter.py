"""The IR interpreter with the machine cost model.

Executes a compiled :class:`repro.ir.IRProgram` on a
:class:`repro.machine.Machine`.  Every instruction charges simulated
cycles to the executing thread; memory instructions route through the
right memory space (and, for cross-space outer accesses, through the
offload's transfer strategy).  Offload launches run the accelerator
thread to completion eagerly — one legal interleaving of the real
concurrency — while clock arithmetic models the overlap, so joins see
``max(host time, accelerator finish time)`` exactly as in Figure 2.
"""

from __future__ import annotations

import math
import os
import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.diagnostics import Finding
from repro.errors import MachineError, MissingDuplicateError, RuntimeTrap
from repro.ir.instructions import (
    AccSpace,
    BinOp,
    CJump,
    Call,
    Const,
    Copy,
    DomainCall,
    Extract,
    FrameAddr,
    GlobalAddr,
    ICall,
    Insert,
    Intrinsic,
    Jump,
    Load,
    Move,
    OffloadJoin,
    OffloadLaunch,
    Ret,
    Store,
    Trap,
    UnOp,
)
from repro.ir.module import IRFunction, IRProgram
from repro.machine.config import MachineConfig, resolve_target
from repro.machine.cores import AcceleratorCore
from repro.machine.dma import NUM_TAGS
from repro.machine.machine import Machine
from repro.obs.trace import (
    EV_CODE_UPLOAD,
    EV_ENTER,
    EV_EXIT,
    EV_FRAME,
    EV_OFFLOAD_BEGIN,
    EV_OFFLOAD_END,
    EV_OFFLOAD_JOIN,
    EV_OFFLOAD_LAUNCH,
)
from repro.runtime.racecheck import DmaRaceChecker
from repro.sched.scheduler import OffloadScheduler, SchedOptions, SchedStats
from repro.vm.context import FrameStack, ThreadContext, build_strategy

#: Default size of the host call stack carved out of main memory.
HOST_STACK_BYTES = 1 << 20

#: Offset applied to the host stack base so that stack addresses do not
#: systematically alias the low data segment in direct-mapped software
#: caches (the heap base is a large power of two, which would otherwise
#: pin every captured variable onto cache slot 0 alongside the vtables).
STACK_COLOR_OFFSET = 17 * 128

#: DMA tag used by accessor bulk transfers.
ACCESSOR_TAG = 28

_U32 = 0xFFFFFFFF

#: Every execution engine ``make_interpreter`` knows how to build.
#: ``"reference"`` is the decode loop in this module, ``"compiled"`` the
#: closure-compiled engine (:mod:`repro.vm.compiled`) and ``"codegen"``
#: the source-generating engine (:mod:`repro.vm.codegen`).  All three
#: are cycle- and counter-identical; only host wall-clock differs.
ENGINE_NAMES = ("compiled", "codegen", "reference")

#: Execution engine used when :class:`RunOptions` does not name one.
#: Overridable for a whole process via ``REPRO_VM_ENGINE``.
DEFAULT_ENGINE = os.environ.get("REPRO_VM_ENGINE", "compiled")


def validate_engine(engine: str, source: str = "engine") -> str:
    """Reject unknown engine names with a list of the known ones.

    Shared by :class:`RunOptions`, the CLI tools and the
    ``REPRO_VM_ENGINE`` environment override so a typo fails at
    option-parse time instead of deep inside the VM.
    """
    if engine not in ENGINE_NAMES:
        known = ", ".join(repr(name) for name in ENGINE_NAMES)
        raise ValueError(
            f"unknown execution engine {engine!r} (from {source}); "
            f"known engines: {known}"
        )
    return engine


def _wrap_signed(value: int) -> int:
    return ((value + 0x80000000) & _U32) - 0x80000000

def _wrap_unsigned(value: int) -> int:
    return value & _U32


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise RuntimeTrap("integer division by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _int_rem(a: int, b: int) -> int:
    if b == 0:
        raise RuntimeTrap("integer remainder by zero")
    return a - _int_div(a, b) * b


@dataclass
class RunOptions:
    """Execution knobs.

    Attributes:
        racecheck: Attach the dynamic DMA race checker to every
            accelerator's DMA engine; ``"raise"`` aborts on the first
            race, ``"record"`` collects them on the result, None
            disables checking.
        check_dma_discipline: Trap local-store reads that overlap a DMA
            get still in flight (read-before-wait bugs).
        max_instructions: Runaway-program guard.  The reference engine
            checks it per instruction; the compiled engine at basic-block
            granularity (so a runaway program may execute up to one block
            past the budget before trapping).
        engine: ``"compiled"`` (closure-compiled dispatch, the
            default), ``"codegen"`` (generated Python source) or
            ``"reference"`` (the legacy decode loop).  None picks
            :data:`DEFAULT_ENGINE`.  Unknown names are rejected at
            construction time.
        sched: Explicit scheduling configuration
            (:class:`repro.sched.scheduler.SchedOptions`): placement
            policy, bounded ready queues, upload modelling and the
            ``sched.*`` trace lane.  ``None`` (the default) is compat
            mode — greedy placement with cycle- and trace-identical
            behaviour to the scheduler-less VM.
        target: Machine to build when :func:`run_program` is called
            without one — a registered target name
            (:func:`repro.machine.config.resolve_target`) or a
            :class:`~repro.machine.config.MachineConfig`.  Unknown
            names are rejected at construction time with the known-name
            list, like ``engine``.  ``None`` falls back to the
            program's own ``target_name``.  Ignored when the caller
            supplies a machine.
    """

    racecheck: Optional[str] = "raise"
    check_dma_discipline: bool = True
    max_instructions: int = 200_000_000
    engine: Optional[str] = None
    sched: Optional[SchedOptions] = None
    target: "Optional[str | MachineConfig]" = None

    def __post_init__(self) -> None:
        if self.engine is not None:
            validate_engine(self.engine, source="RunOptions.engine")
        if self.target is not None:
            resolve_target(self.target, source="RunOptions.target")


@dataclass
class Handle:
    """A launched offload thread."""

    offload_id: int
    accel_index: int
    finish_time: int
    joined: bool = False


@dataclass
class RunResult:
    """Outcome of one program execution."""

    return_value: object
    output: list[tuple[str, object]] = field(default_factory=list)
    cycles: int = 0
    host_cycles: int = 0
    machine: Optional[Machine] = None
    races: list = field(default_factory=list)
    #: Scheduler utilization accounting (collected in every mode).
    sched: Optional[SchedStats] = None
    #: Runtime diagnostics, e.g. ``W-offload-unjoined`` for handles
    #: that were never joined (:class:`repro.analysis.diagnostics.Finding`).
    diagnostics: list = field(default_factory=list)
    #: Simulated instructions retired (identical across engines; the
    #: compiled/codegen engines count per executed block).
    instructions: int = 0

    @property
    def printed(self) -> list[object]:
        """Just the printed values, in order."""
        return [value for _, value in self.output]

    def perf(self) -> dict[str, int]:
        assert self.machine is not None
        return self.machine.perf.as_dict()


class Interpreter:
    """Executes one program on one machine."""

    def __init__(
        self,
        program: IRProgram,
        machine: Machine,
        options: Optional[RunOptions] = None,
    ):
        if program.target_name != machine.config.name:
            raise MachineError(
                f"program compiled for {program.target_name!r} cannot run "
                f"on machine {machine.config.name!r}"
            )
        self.program = program
        self.machine = machine
        self.options = options or RunOptions()
        #: Pre-bound event sink; attach a recorder to the machine
        #: (``Machine.attach_trace``) *before* building the engine.
        self._trace = machine.trace
        #: Pre-bound metrics sink (``Machine.attach_metrics``).
        self._metrics = machine.metrics
        self.output: list[tuple[str, object]] = []
        self.handles: list[Handle] = []
        self._instructions = 0
        #: Every offload launch routes through the scheduler; with
        #: ``options.sched`` unset it reproduces the legacy greedy
        #: behaviour exactly (no sched events, no upload costs).
        self._sched = OffloadScheduler(
            program, machine, self.options.sched, self._trace
        )
        #: Alias of the scheduler's per-accelerator availability list.
        self._accel_available = self._sched.available
        #: (accelerator index, function name) pairs whose code has been
        #: uploaded on demand; persists across offload launches because
        #: a loaded code image stays resident on the core.
        self._resident_code: set[tuple[int, str]] = set()
        self._racecheckers: list[DmaRaceChecker] = []
        if self.options.racecheck is not None:
            for accelerator in machine.accelerators:
                if accelerator.dma is not None:
                    checker = DmaRaceChecker(mode=self.options.racecheck)
                    checker.attach(accelerator.dma)
                    self._racecheckers.append(checker)

    # ----------------------------------------------------------- lifecycle

    def load_image(self) -> None:
        """Write the compiled program's static data into main memory."""
        heap_base = self.machine.heap.base
        if self.program.data_end > heap_base:
            raise MachineError(
                f"program static data ({self.program.data_end} bytes) "
                f"overlaps the heap/stack region starting at "
                f"{heap_base:#x}; use a machine with more main memory "
                f"(MachineConfig.main_memory_size)"
            )
        for address, data in self.program.init_image:
            self.machine.main_memory.write_unchecked(address, data)

    def run(self, entry: Optional[str] = None) -> RunResult:
        """Load the image and execute ``entry`` (default: main)."""
        self.load_image()
        host_ctx = self.make_host_context()
        entry_name = entry or self.program.entry
        value = self._exec_function(
            self.program.function(entry_name), [], host_ctx
        )
        return self.finalize(value, host_ctx)

    def make_host_context(self) -> ThreadContext:
        """The host thread context (stack carved out of main memory)."""
        stack_base = (
            self.machine.heap.allocate(HOST_STACK_BYTES + STACK_COLOR_OFFSET)
            + STACK_COLOR_OFFSET
        )
        return ThreadContext(
            core=self.machine.host,
            main_memory=self.machine.main_memory,
            stack=FrameStack(
                stack_base, stack_base + HOST_STACK_BYTES, "host"
            ),
            now=self.machine.host.clock.now,
        )

    def finalize(self, value: object, host_ctx: ThreadContext) -> RunResult:
        """Sync the host clock, audit handles and build the result."""
        self.machine.host.clock.sync_to(host_ctx.now)
        races = [r for checker in self._racecheckers for r in checker.races]
        return RunResult(
            return_value=value,
            output=self.output,
            cycles=self.machine.total_cycles(),
            host_cycles=self.machine.host.clock.now,
            machine=self.machine,
            races=races,
            sched=self._sched.stats,
            diagnostics=self.audit_handles(),
            instructions=self._instructions,
        )

    def audit_handles(self) -> list[Finding]:
        """``W-offload-unjoined`` findings for handles never joined.

        Purely observational — never touches a clock or the trace — so
        compat-mode runs stay cycle- and trace-identical.
        """
        findings = []
        for index, handle in enumerate(self.handles):
            if handle.joined:
                continue
            findings.append(
                Finding(
                    code="W-offload-unjoined",
                    message=(
                        f"offload handle {index} (offload "
                        f"#{handle.offload_id} on accelerator "
                        f"{handle.accel_index}) was never joined; its "
                        f"completion is unsynchronized with the host"
                    ),
                    file="<run>",
                    function=self.program.offload_meta[
                        handle.offload_id
                    ].entry,
                    analysis="offload-audit",
                )
            )
        return findings

    # --------------------------------------------------------- memory ops

    def _memory_for(self, space: AccSpace, ctx: ThreadContext):
        if space is AccSpace.MAIN:
            return ctx.main_memory
        if space is AccSpace.LOCAL:
            local = ctx.local_store
            if local is None:
                raise RuntimeTrap(
                    f"local-store access on core {ctx.name} which has none"
                )
            return local
        raise AssertionError("OUTER is handled by the strategy")

    def _access_cost(self, space: AccSpace, ctx: ThreadContext) -> int:
        if space is AccSpace.LOCAL:
            return ctx.core.cost.local_access
        return ctx.core.cost.host_mem_access

    def _read_mem(
        self, space: AccSpace, address: int, size: int, ctx: ThreadContext
    ) -> bytes:
        if space is AccSpace.OUTER:
            assert ctx.strategy is not None
            data, ctx.now = ctx.strategy.load(address, size, ctx.now)
            ctx.core.perf.add("outer.loads")
            ctx.core.perf.add("outer.bytes_read", size)
            return data
        memory = self._memory_for(space, ctx)
        if (
            space is AccSpace.LOCAL
            and self.options.check_dma_discipline
            and isinstance(ctx.core, AcceleratorCore)
            and ctx.core.dma is not None
            and ctx.core.dma.in_flight
        ):
            conflict = ctx.core.dma.pending_local_conflict(address, size)
            if conflict is not None:
                raise RuntimeTrap(
                    f"local store read at {address:#x} overlaps in-flight "
                    f"{conflict.describe()}; missing dma_wait"
                )
        ctx.now += self._access_cost(space, ctx)
        return memory.read_unchecked(address, size)

    def _write_mem(
        self, space: AccSpace, address: int, data: bytes, ctx: ThreadContext
    ) -> None:
        if space is AccSpace.OUTER:
            assert ctx.strategy is not None
            ctx.now = ctx.strategy.store(address, data, ctx.now)
            ctx.core.perf.add("outer.stores")
            ctx.core.perf.add("outer.bytes_written", len(data))
            return
        memory = self._memory_for(space, ctx)
        ctx.now += self._access_cost(space, ctx)
        memory.write_unchecked(address, data)

    @staticmethod
    def _decode(data: bytes, signed: bool, is_float: bool) -> object:
        if is_float:
            if len(data) == 4:
                return struct.unpack("<f", data)[0]
            return struct.unpack("<d", data)[0]
        return int.from_bytes(data, "little", signed=signed)

    @staticmethod
    def _encode(value: object, size: int, is_float: bool) -> bytes:
        if is_float:
            if size == 4:
                return struct.pack("<f", float(value))  # type: ignore[arg-type]
            return struct.pack("<d", float(value))  # type: ignore[arg-type]
        mask = (1 << (8 * size)) - 1
        return (int(value) & mask).to_bytes(size, "little")  # type: ignore[arg-type]

    # ------------------------------------------------------------ arithmetic

    def _binop(self, instr: BinOp, a: object, b: object) -> object:
        op = instr.op
        if op in ("==", "!=", "<", "<=", ">", ">="):
            table = {
                "==": a == b,
                "!=": a != b,
                "<": a < b,  # type: ignore[operator]
                "<=": a <= b,  # type: ignore[operator]
                ">": a > b,  # type: ignore[operator]
                ">=": a >= b,  # type: ignore[operator]
            }
            return 1 if table[op] else 0
        if instr.float_op:
            fa, fb = float(a), float(b)  # type: ignore[arg-type]
            if op == "+":
                return fa + fb
            if op == "-":
                return fa - fb
            if op == "*":
                return fa * fb
            if op == "/":
                if fb == 0.0:
                    return math.inf if fa > 0 else (-math.inf if fa < 0 else math.nan)
                return fa / fb
            raise AssertionError(f"float op {op}")
        ia, ib = int(a), int(b)  # type: ignore[arg-type]
        if op == "+":
            result = ia + ib
        elif op == "-":
            result = ia - ib
        elif op == "*":
            result = ia * ib
        elif op == "/":
            result = _int_div(ia, ib)
        elif op == "%":
            result = _int_rem(ia, ib)
        elif op == "&":
            result = ia & ib
        elif op == "|":
            result = ia | ib
        elif op == "^":
            result = ia ^ ib
        elif op == "<<":
            result = ia << (ib & 31)
        elif op == ">>":
            if instr.signed:
                result = ia >> (ib & 31)
            else:
                result = (ia & _U32) >> (ib & 31)
        else:
            raise AssertionError(f"int op {op}")
        return _wrap_signed(result) if instr.signed else _wrap_unsigned(result)

    def _unop(self, instr: UnOp, a: object) -> object:
        op = instr.op
        if op == "-":
            if instr.float_op:
                return -float(a)  # type: ignore[arg-type]
            return _wrap_signed(-int(a))  # type: ignore[arg-type]
        if op == "!":
            return 0 if a else 1
        if op == "~":
            return _wrap_signed(~int(a))  # type: ignore[arg-type]
        if op == "itof":
            return float(int(a))  # type: ignore[arg-type]
        if op == "ftoi":
            f = float(a)  # type: ignore[arg-type]
            if math.isnan(f) or math.isinf(f):
                return 0
            return _wrap_signed(math.trunc(f))
        if op in ("sext8", "sext16", "zext8", "zext16"):
            bits = 8 if op.endswith("8") else 16
            mask = (1 << bits) - 1
            value = int(a) & mask  # type: ignore[arg-type]
            if op.startswith("sext") and value >= 1 << (bits - 1):
                value -= 1 << bits
            return value
        raise AssertionError(f"unary op {op}")

    # -------------------------------------------------------------- calls

    def _exec_function(
        self, function: IRFunction, args: list[object], ctx: ThreadContext
    ) -> object:
        regs: list[object] = [0] * max(function.num_regs, len(args))
        regs[: len(args)] = args
        saved_sp = ctx.stack.sp
        frame_base = (
            ctx.stack.push(function.frame_size) if function.frame_size else ctx.stack.sp
        )
        ctx.now += ctx.core.cost.call
        ctx.core.perf.add("vm.calls")
        trace = self._trace
        if trace.enabled:
            track = ctx.core.name
            trace.emit(ctx.now, track, EV_ENTER, (function.name,))
            marker = trace.frame_marker
            if marker is not None and function.name.endswith(marker):
                trace.emit(ctx.now, track, EV_FRAME, (function.name,))
        code = function.code
        labels = function.labels
        cost = ctx.core.cost
        pc = 0
        try:
            while pc < len(code):
                self._instructions += 1
                if self._instructions > self.options.max_instructions:
                    raise RuntimeTrap(
                        f"instruction budget exceeded "
                        f"({self.options.max_instructions})"
                    )
                instr = code[pc]
                pc += 1
                if isinstance(instr, Const):
                    ctx.now += cost.alu
                    regs[instr.dst] = instr.value
                elif isinstance(instr, Move):
                    ctx.now += cost.alu
                    regs[instr.dst] = regs[instr.src]
                elif isinstance(instr, BinOp):
                    ctx.now += cost.alu
                    regs[instr.dst] = self._binop(
                        instr, regs[instr.a], regs[instr.b]
                    )
                elif isinstance(instr, UnOp):
                    ctx.now += cost.alu
                    regs[instr.dst] = self._unop(instr, regs[instr.a])
                elif isinstance(instr, Load):
                    data = self._read_mem(
                        instr.space, int(regs[instr.addr]), instr.size, ctx  # type: ignore[arg-type]
                    )
                    regs[instr.dst] = self._decode(
                        data, instr.signed, instr.is_float
                    )
                elif isinstance(instr, Store):
                    data = self._encode(
                        regs[instr.src], instr.size, instr.is_float
                    )
                    self._write_mem(
                        instr.space, int(regs[instr.addr]), data, ctx  # type: ignore[arg-type]
                    )
                elif isinstance(instr, Copy):
                    self._exec_copy(instr, regs, ctx)
                elif isinstance(instr, Extract):
                    self._exec_extract(instr, regs, ctx)
                elif isinstance(instr, Insert):
                    self._exec_insert(instr, regs, ctx)
                elif isinstance(instr, FrameAddr):
                    ctx.now += cost.alu
                    regs[instr.dst] = frame_base + instr.offset
                elif isinstance(instr, GlobalAddr):
                    ctx.now += cost.alu
                    regs[instr.dst] = self.program.globals[instr.name].address
                elif isinstance(instr, Jump):
                    ctx.now += cost.branch
                    pc = labels[instr.label]
                elif isinstance(instr, CJump):
                    ctx.now += cost.branch
                    target = (
                        instr.then_label if regs[instr.cond] else instr.else_label
                    )
                    pc = labels[target]
                elif isinstance(instr, Call):
                    callee = self.program.function(instr.callee)
                    value = self._exec_function(
                        callee, [regs[a] for a in instr.args], ctx
                    )
                    if instr.dst is not None:
                        regs[instr.dst] = value
                elif isinstance(instr, ICall):
                    fid = int(regs[instr.func_id])  # type: ignore[arg-type]
                    name = self.program.function_ids.get(fid)
                    if name is None:
                        raise RuntimeTrap(
                            f"indirect call through bad function id {fid:#x}"
                        )
                    ctx.now += cost.vtable_load
                    callee = self.program.function(name)
                    value = self._exec_function(
                        callee, [regs[a] for a in instr.args], ctx
                    )
                    if instr.dst is not None:
                        regs[instr.dst] = value
                elif isinstance(instr, DomainCall):
                    value = self._exec_domain_call(instr, regs, ctx)
                    if instr.dst is not None:
                        regs[instr.dst] = value
                elif isinstance(instr, Intrinsic):
                    value = self._exec_intrinsic(instr, regs, ctx)
                    if instr.dst is not None:
                        regs[instr.dst] = value
                elif isinstance(instr, Ret):
                    ctx.now += cost.ret
                    if trace.enabled:
                        trace.emit(
                            ctx.now, ctx.core.name, EV_EXIT, (function.name,)
                        )
                    return regs[instr.src] if instr.src is not None else 0
                elif isinstance(instr, OffloadLaunch):
                    regs[instr.dst] = self._launch_offload(instr, regs, ctx)
                elif isinstance(instr, OffloadJoin):
                    self._join_offload(int(regs[instr.handle]), ctx)  # type: ignore[arg-type]
                elif isinstance(instr, Trap):
                    raise RuntimeTrap(instr.message)
                else:
                    raise AssertionError(f"unhandled instruction {instr!r}")
            if trace.enabled:
                trace.emit(ctx.now, ctx.core.name, EV_EXIT, (function.name,))
            return 0
        finally:
            ctx.stack.pop(saved_sp)

    # ------------------------------------------------------ complex instrs

    def _exec_copy(self, instr: Copy, regs: list[object], ctx: ThreadContext) -> None:
        size = (
            int(regs[instr.size_reg])  # type: ignore[arg-type]
            if instr.size_reg is not None
            else instr.size
        )
        self._copy_values(
            instr.src_space,
            instr.dst_space,
            int(regs[instr.src_addr]),  # type: ignore[arg-type]
            int(regs[instr.dst_addr]),  # type: ignore[arg-type]
            size,
            ctx,
        )

    def _copy_values(
        self,
        src_space: AccSpace,
        dst_space: AccSpace,
        src: int,
        dst: int,
        size: int,
        ctx: ThreadContext,
    ) -> None:
        """Bulk copy on resolved operand values; shared by every engine."""
        if size <= 0:
            return
        if src_space is AccSpace.OUTER:
            assert ctx.strategy is not None
            data, ctx.now = ctx.strategy.load(src, size, ctx.now)
        else:
            memory = self._memory_for(src_space, ctx)
            ctx.now += self._bulk_cost(src_space, size, ctx)
            data = memory.read_unchecked(src, size)
        if dst_space is AccSpace.OUTER:
            assert ctx.strategy is not None
            ctx.now = ctx.strategy.store(dst, data, ctx.now)
        else:
            memory = self._memory_for(dst_space, ctx)
            ctx.now += self._bulk_cost(dst_space, size, ctx)
            memory.write_unchecked(dst, data)

    def _bulk_cost(self, space: AccSpace, size: int, ctx: ThreadContext) -> int:
        per_line = self._access_cost(space, ctx)
        lines = -(-size // 16)
        return per_line * lines

    def _exec_extract(
        self, instr: Extract, regs: list[object], ctx: ThreadContext
    ) -> None:
        word = int(regs[instr.word])  # type: ignore[arg-type]
        if instr.const_offset is not None:
            offset = instr.const_offset
            ctx.now += ctx.core.cost.word_extract
        else:
            offset = int(regs[instr.offset])  # type: ignore[arg-type]
            ctx.now += 2 * ctx.core.cost.word_extract
        mask = (1 << (8 * instr.size)) - 1
        value = (word >> (8 * offset)) & mask
        if instr.signed and value >= 1 << (8 * instr.size - 1):
            value -= 1 << (8 * instr.size)
        regs[instr.dst] = value
        ctx.core.perf.add("word.extracts")

    def _exec_insert(
        self, instr: Insert, regs: list[object], ctx: ThreadContext
    ) -> None:
        word = int(regs[instr.word])  # type: ignore[arg-type]
        value = int(regs[instr.value])  # type: ignore[arg-type]
        if instr.const_offset is not None:
            offset = instr.const_offset
            ctx.now += ctx.core.cost.word_extract
        else:
            offset = int(regs[instr.offset])  # type: ignore[arg-type]
            ctx.now += 2 * ctx.core.cost.word_extract
        mask = (1 << (8 * instr.size)) - 1
        shifted_mask = mask << (8 * offset)
        merged = (word & ~shifted_mask) | ((value & mask) << (8 * offset))
        regs[instr.dst] = merged & _U32
        ctx.core.perf.add("word.inserts")

    def _exec_domain_call(
        self, instr: DomainCall, regs: list[object], ctx: ThreadContext
    ) -> object:
        return self._domain_call_values(
            instr.offload_id,
            instr.duplicate_id,
            int(regs[instr.func_id]),  # type: ignore[arg-type]
            [regs[a] for a in instr.args],
            ctx,
        )

    def _domain_call_values(
        self,
        offload_id: int,
        duplicate_id: Optional[str],
        fid: int,
        arg_values: list[object],
        ctx: ThreadContext,
    ) -> object:
        """Domain dispatch on resolved operand values; shared by every
        engine."""
        meta = self.program.offload_meta[offload_id]
        ctx.core.perf.add("dispatch.vcalls")
        try:
            entry, ctx.now = meta.domain.lookup_entry(
                ctx.core, fid, duplicate_id, ctx.now
            )
        except MissingDuplicateError as exc:
            # Name the method the programmer must annotate: the program
            # knows which host function the failing id belongs to.
            name = self.program.function_ids.get(fid)
            if name is not None and name not in exc.method_name:
                raise MissingDuplicateError(
                    name, exc.duplicate_id, exc.known
                ) from None
            raise
        callee = self.program.function(str(entry.target))
        if entry.demand:
            self._ensure_code_resident(callee, ctx)
        return self._exec_function(callee, arg_values, ctx)

    def _ensure_code_resident(self, callee: IRFunction, ctx: ThreadContext) -> None:
        """On-demand code loading: the first dispatch to a non-annotated
        duplicate on a given accelerator uploads its code image."""
        core = ctx.core
        if not isinstance(core, AcceleratorCore):
            return
        key = (core.index, callee.name)
        if key in self._resident_code:
            return
        self._resident_code.add(key)
        cost = core.cost
        code_bytes = self.machine.config.code_bytes_per_instr * len(callee.code)
        transfer = -(-code_bytes // cost.dma_bytes_per_cycle)
        start = ctx.now
        ctx.now += cost.dma_setup + cost.dma_latency + transfer
        core.perf.add("demand.code_loads")
        core.perf.add("demand.code_bytes", code_bytes)
        trace = self._trace
        if trace.enabled:
            trace.emit(
                start, core.name, EV_CODE_UPLOAD,
                (callee.name, code_bytes, ctx.now),
            )

    def _exec_intrinsic(
        self, instr: Intrinsic, regs: list[object], ctx: ThreadContext
    ) -> object:
        name = instr.name
        args = [regs[a] for a in instr.args]
        cost = ctx.core.cost
        if name == "print_int":
            ctx.now += cost.alu
            self.output.append((ctx.name, int(args[0])))  # type: ignore[arg-type]
            return 0
        if name == "print_float":
            ctx.now += cost.alu
            self.output.append((ctx.name, float(args[0])))  # type: ignore[arg-type]
            return 0
        if name == "print_char":
            ctx.now += cost.alu
            self.output.append((ctx.name, chr(int(args[0]) & 0xFF)))  # type: ignore[arg-type]
            return 0
        if name == "sqrtf":
            ctx.now += 4 * cost.alu
            value = float(args[0])  # type: ignore[arg-type]
            return math.sqrt(value) if value >= 0 else math.nan
        if name == "fabsf":
            ctx.now += cost.alu
            return abs(float(args[0]))  # type: ignore[arg-type]
        if name == "iabs":
            ctx.now += cost.alu
            return _wrap_signed(abs(int(args[0])))  # type: ignore[arg-type]
        if name in ("imin", "imax"):
            ctx.now += cost.alu
            fn = min if name == "imin" else max
            return fn(int(args[0]), int(args[1]))  # type: ignore[arg-type]
        if name in ("fminf", "fmaxf"):
            ctx.now += cost.alu
            fn = min if name == "fminf" else max
            return fn(float(args[0]), float(args[1]))  # type: ignore[arg-type]
        if name in ("dma_get", "dma_put"):
            return self._exec_dma(name, args, ctx)
        if name == "dma_wait":
            dma = self._require_dma(ctx)
            tag = int(args[0])  # type: ignore[arg-type]
            self._check_dma_tag(name, tag)
            ctx.now = dma.wait(tag, ctx.now)
            return 0
        if name == "acc_bulk_get":
            dma = self._require_dma(ctx)
            local, outer, size = (int(a) for a in args)  # type: ignore[arg-type]
            ctx.now = dma.get(ACCESSOR_TAG, local, outer, size, ctx.now)
            ctx.now = dma.wait(ACCESSOR_TAG, ctx.now)
            ctx.core.perf.add("accessor.bulk_gets")
            ctx.core.perf.add("accessor.bytes_in", size)
            return 0
        if name == "acc_bulk_put":
            dma = self._require_dma(ctx)
            local, outer, size = (int(a) for a in args)  # type: ignore[arg-type]
            ctx.now = dma.put(ACCESSOR_TAG, local, outer, size, ctx.now)
            ctx.now = dma.wait(ACCESSOR_TAG, ctx.now)
            ctx.core.perf.add("accessor.bulk_puts")
            ctx.core.perf.add("accessor.bytes_out", size)
            return 0
        raise AssertionError(f"unhandled intrinsic {name!r}")

    def _require_dma(self, ctx: ThreadContext):
        core = ctx.core
        if not isinstance(core, AcceleratorCore) or core.dma is None:
            raise RuntimeTrap(
                f"DMA intrinsic on core {ctx.name} without a DMA engine"
            )
        return core.dma

    @staticmethod
    def _check_dma_tag(name: str, tag: int) -> None:
        """Out-of-range tags trap instead of silently aliasing.

        The engines used to mask ``tag & 31``, so tag 33 aliased tag 1
        and a ``dma_wait`` could observe the wrong transfer's
        completion.
        """
        if not 0 <= tag < NUM_TAGS:
            raise RuntimeTrap(
                f"{name} with out-of-range DMA tag {tag} "
                f"(valid tags are 0..{NUM_TAGS - 1})"
            )

    def _exec_dma(self, name: str, args: list[object], ctx: ThreadContext) -> object:
        dma = self._require_dma(ctx)
        local, outer, size, tag = (int(a) for a in args)  # type: ignore[arg-type]
        if size <= 0:
            raise RuntimeTrap(f"{name} with non-positive size {size}")
        self._check_dma_tag(name, tag)
        if name == "dma_get":
            ctx.now = dma.get(tag, local, outer, size, ctx.now)
        else:
            ctx.now = dma.put(tag, local, outer, size, ctx.now)
        return 0

    # ------------------------------------------------------------ offloads

    def _launch_offload(
        self, instr: OffloadLaunch, regs: list[object], ctx: ThreadContext
    ) -> int:
        return self._run_offload(
            instr.offload_id,
            instr.entry,
            [regs[a] for a in instr.args],
            ctx,
        )

    def _run_offload(
        self,
        offload_id: int,
        entry_name: str,
        arg_values: list[object],
        ctx: ThreadContext,
        affinity: Optional[int] = None,
    ) -> int:
        """Schedule and eagerly execute one offload job; returns the
        handle index.  IR launches and job-graph nodes share this path."""
        meta = self.program.offload_meta[offload_id]
        if not self.machine.accelerators:
            raise RuntimeTrap("offload launch on a machine with no accelerators")
        sched = self._sched
        job = len(self.handles)
        sched.submit(offload_id, job, ctx.now)
        accel_index = sched.admit(offload_id, ctx, affinity)
        accelerator = self.machine.accelerators[accel_index]
        start, body_start = sched.begin(offload_id, accel_index, ctx.now)
        if accelerator.local_store is not None:
            strategy, stack_limit = build_strategy(accelerator, meta.cache_kind)
            stack = FrameStack(0, stack_limit, f"{accelerator.name} local-store")
        else:
            # Shared-memory accelerator: frames live in main memory.
            stack_base = self.machine.heap.allocate(HOST_STACK_BYTES // 4)
            strategy = None
            stack = FrameStack(
                stack_base,
                stack_base + HOST_STACK_BYTES // 4,
                f"{accelerator.name} stack",
            )
        accel_ctx = ThreadContext(
            core=accelerator,
            main_memory=self.machine.main_memory,
            stack=stack,
            now=body_start,
            strategy=strategy,
            offload_id=offload_id,
        )
        entry = self.program.function(entry_name)
        trace = self._trace
        if trace.enabled:
            trace.emit(
                body_start, accelerator.name, EV_OFFLOAD_BEGIN,
                (offload_id, entry_name),
            )
        self._exec_function(entry, arg_values, accel_ctx)
        if strategy is not None:
            accel_ctx.now = strategy.flush(accel_ctx.now)
        finish = accel_ctx.now
        accelerator.clock.sync_to(finish)
        sched.complete(offload_id, accel_index, start, body_start, finish)
        metrics = self._metrics
        if metrics.enabled:
            metrics.observe("offload.body_cycles", None, finish - body_start)
        ctx.now += ctx.core.cost.call  # host-side issue cost
        handle = Handle(
            offload_id=offload_id,
            accel_index=accel_index,
            finish_time=finish,
        )
        self.handles.append(handle)
        ctx.core.perf.add("offload.launches")
        if trace.enabled:
            trace.emit(
                finish, accelerator.name, EV_OFFLOAD_END,
                (offload_id, entry_name),
            )
            trace.emit(
                ctx.now, ctx.core.name, EV_OFFLOAD_LAUNCH,
                (offload_id, accel_index, len(self.handles) - 1),
            )
        sched.dispatched(job, accel_index, ctx.now)
        return len(self.handles) - 1

    def _join_offload(self, handle_id: int, ctx: ThreadContext) -> None:
        if not 0 <= handle_id < len(self.handles):
            raise RuntimeTrap(f"join on invalid offload handle {handle_id}")
        handle = self.handles[handle_id]
        ctx.now = max(
            ctx.now + ctx.core.cost.thread_join, handle.finish_time
        )
        handle.joined = True
        ctx.core.perf.add("offload.joins")
        trace = self._trace
        if trace.enabled:
            trace.emit(
                ctx.now, ctx.core.name, EV_OFFLOAD_JOIN,
                (handle_id, handle.finish_time),
            )


def make_interpreter(
    program: IRProgram,
    machine: Machine,
    options: Optional[RunOptions] = None,
) -> Interpreter:
    """Build the execution engine selected by ``options.engine``."""
    options = options or RunOptions()
    engine = options.engine
    if engine is None:
        engine = validate_engine(DEFAULT_ENGINE, source="REPRO_VM_ENGINE")
    else:
        validate_engine(engine, source="RunOptions.engine")
    if engine == "reference":
        return Interpreter(program, machine, options)
    if engine == "codegen":
        from repro.vm.codegen import CodegenInterpreter

        return CodegenInterpreter(program, machine, options)
    from repro.vm.compiled import CompiledInterpreter

    return CompiledInterpreter(program, machine, options)


def run_program(
    program: IRProgram,
    machine: Optional[Machine] = None,
    options: Optional[RunOptions] = None,
    entry: Optional[str] = None,
) -> RunResult:
    """Convenience wrapper: execute ``program`` on ``machine``.

    Without a machine, one is built from the target registry:
    ``options.target`` when set, else the target the program was
    compiled for (``program.target_name``, which artifacts record and
    :func:`repro.machine.config.resolve_target` maps back to a config).
    """
    if machine is None:
        target = options.target if options is not None else None
        source = "RunOptions.target"
        if target is None:
            target = program.target_name or "cell"
            source = "program.target_name"
        machine = Machine(resolve_target(target, source=source))
    return make_interpreter(program, machine, options).run(entry)

"""Execution engine: runs IR programs on the simulated machine.

The interpreter is deterministic: each logical thread (the host plus one
per offload launch) executes to completion with its own cycle counter;
parallelism is modelled by clock combination at launch/join points, so
measured cycle counts are exactly reproducible run to run.

Three engines share the contract (identical cycles, counters, traces):
the reference decode loop (:mod:`repro.vm.interpreter`), the
closure-compiled engine (:mod:`repro.vm.compiled`) and the
source-codegen engine (:mod:`repro.vm.codegen`).
"""

from repro.vm.codegen import (
    CodegenInterpreter,
    CodegenStats,
    clear_codegen_cache,
    generate_module_source,
)
from repro.vm.compiled import CompiledInterpreter, warm_translations
from repro.vm.interpreter import (
    DEFAULT_ENGINE,
    ENGINE_NAMES,
    Interpreter,
    RunOptions,
    RunResult,
    make_interpreter,
    run_program,
    validate_engine,
)

__all__ = [
    "CodegenInterpreter",
    "CodegenStats",
    "CompiledInterpreter",
    "DEFAULT_ENGINE",
    "ENGINE_NAMES",
    "Interpreter",
    "RunOptions",
    "RunResult",
    "clear_codegen_cache",
    "generate_module_source",
    "make_interpreter",
    "run_program",
    "validate_engine",
    "warm_translations",
]

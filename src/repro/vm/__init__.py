"""Execution engine: runs IR programs on the simulated machine.

The interpreter is deterministic: each logical thread (the host plus one
per offload launch) executes to completion with its own cycle counter;
parallelism is modelled by clock combination at launch/join points, so
measured cycle counts are exactly reproducible run to run.
"""

from repro.vm.compiled import CompiledInterpreter, warm_translations
from repro.vm.interpreter import (
    DEFAULT_ENGINE,
    Interpreter,
    RunOptions,
    RunResult,
    make_interpreter,
    run_program,
)

__all__ = [
    "CompiledInterpreter",
    "DEFAULT_ENGINE",
    "Interpreter",
    "RunOptions",
    "RunResult",
    "make_interpreter",
    "run_program",
    "warm_translations",
]

"""Closure-compiled execution engine.

The reference interpreter (:mod:`repro.vm.interpreter`) re-decodes every
instruction on every execution: one ``isinstance`` ladder per dispatch,
plus attribute loads on the instruction object, cost-model lookups and a
per-instruction budget check.  That host-side overhead — not the
simulated machine — dominates wall-clock time on large workloads.

This engine performs the decode **once per IR function**: each
instruction is translated into a Python closure with everything the
instruction will ever need pre-bound at translation time — register
indices, operand constants, ``struct.Struct`` scalar codecs, label
targets resolved to instruction indices, resolved callee functions,
global addresses, cost-model constants and memory-space handles.  The
per-instruction closures are then fused per basic block: the function
becomes a flat list ``ops`` aligned with ``code`` in which each block
leader's slot holds one closure that charges the block's budget span and
cycle cost, runs the block body in a tight loop, and returns the next
pc, so the dispatch loop collapses to::

    while 0 <= pc < len(ops):
        pc = ops[pc](frame)

paying its bounds-check-and-index cost once per *block*.  ``frame``
carries only the per-activation state (registers, thread context, frame
base).  The ops list is cached on the
:class:`~repro.ir.module.IRFunction` itself, keyed by the cost model, so
repeated calls and repeated runs pay translation cost once.

Cycle batching: instructions whose cycle charge is a translate-time
constant and which never *observe* the clock (arithmetic, moves, local
and main memory scalar traffic, word extract/insert, print and math
intrinsics) do not touch ``ctx.now`` themselves; the enclosing block
closure adds their summed charge up front, per segment.  Segments break
at every clock-observing instruction (calls, outer-space accesses, DMA
intrinsics, offload launch/join, bulk copies), so the value of
``ctx.now`` at every observation point is exactly the reference
engine's.

Equivalence contract
--------------------

The compiled engine is *cycle-for-cycle and counter-for-counter
identical* to the reference engine: identical printed output, identical
simulated cycle counts, identical perf counters, identical trap
messages.  It achieves this by sharing the reference implementation for
every stateful or complex operation (offload launch/join, domain calls,
DMA intrinsics, bulk copies) and only specialising the hot, pure
instruction bodies.  Differences are limited to host-side mechanics:

* the ``max_instructions`` runaway guard is charged per basic block at
  block entry rather than per instruction (totals are exact for every
  completed block);
* hot counters (``vm.calls``, ``word.extracts`` …) accumulate in
  :class:`~repro.machine.perf.CounterSlot` batches and drain into the
  machine-wide :class:`~repro.machine.perf.PerfCounters` on read.

The differential suite (``tests/test_vm_equivalence.py``) enforces the
contract over every example workload and a randomized IR fuzz corpus.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.errors import RuntimeTrap
from repro.ir.instructions import (
    AccSpace,
    BinOp,
    CJump,
    Call,
    Const,
    Copy,
    DomainCall,
    Extract,
    FrameAddr,
    GlobalAddr,
    ICall,
    Insert,
    Instr,
    Intrinsic,
    Jump,
    Load,
    Move,
    OffloadJoin,
    OffloadLaunch,
    Ret,
    Store,
    Trap,
    UnOp,
)
from repro.ir.module import IRFunction, IRProgram
from repro.machine.machine import Machine
from repro.machine.memory import scalar_codec
from repro.obs.trace import EV_ENTER, EV_EXIT, EV_FRAME
from repro.vm.context import ThreadContext
from repro.vm.interpreter import (
    Interpreter,
    RunOptions,
    _int_div,
    _int_rem,
)

_U32 = 0xFFFFFFFF
_BIAS = 0x80000000

#: An op takes the activation frame and returns the next pc (or -1 to
#: leave the function).
Op = Callable[["_Frame"], int]

#: A translated instruction: the closure plus its cycle charge when that
#: charge is a translate-time constant and the instruction never reads
#: the clock (such closures do NOT touch ``ctx.now`` themselves — the
#: block fusion pass charges them in batches).  ``None`` marks
#: clock-observing instructions, which charge ``ctx.now`` internally.
Translated = tuple[Op, Optional[int]]


class _Frame:
    """Per-activation state threaded through the compiled ops."""

    __slots__ = ("eng", "ctx", "regs", "frame_base", "ls", "chk", "ret")

    def __init__(
        self,
        eng: "CompiledInterpreter",
        ctx: ThreadContext,
        regs: list,
        frame_base: int,
        ls,
        chk: bool,
    ):
        self.eng = eng
        self.ctx = ctx
        self.regs = regs
        self.frame_base = frame_base
        self.ls = ls
        self.chk = chk
        self.ret: object = 0


_TERMINATORS = (Jump, CJump, Ret, Trap)


def _int_binop_fn(op: str, signed: bool) -> Callable[[object, object], int]:
    """A pure value function for the colder integer BinOps."""
    if op == "/":
        base = _int_div
    elif op == "%":
        base = _int_rem
    elif op == "&":
        base = lambda a, b: a & b
    elif op == "|":
        base = lambda a, b: a | b
    elif op == "^":
        base = lambda a, b: a ^ b
    elif op == "<<":
        base = lambda a, b: a << (b & 31)
    elif op == ">>":
        if signed:
            base = lambda a, b: a >> (b & 31)
        else:
            base = lambda a, b: (a & _U32) >> (b & 31)
    else:
        raise AssertionError(f"int op {op}")
    if signed:
        return lambda a, b: ((base(int(a), int(b)) + _BIAS) & _U32) - _BIAS
    return lambda a, b: base(int(a), int(b)) & _U32


class CompiledInterpreter(Interpreter):
    """Drop-in replacement for :class:`Interpreter` with compiled dispatch.

    All lifecycle, offload, domain-dispatch and intrinsic machinery is
    inherited; only the per-instruction execution path is replaced.
    """

    def __init__(
        self,
        program: IRProgram,
        machine: Machine,
        options: Optional[RunOptions] = None,
    ):
        super().__init__(program, machine, options)
        self._cost = machine.config.cost
        self._budget = self.options.max_instructions
        self._chk_discipline = self.options.check_dma_discipline
        perf = machine.perf
        # Batched counters for the quantities the dispatch loop itself
        # produces; everything underneath (DMA, caches, dispatch tables)
        # keeps its own accounting.
        self._sc_calls = perf.slot("vm.calls")
        self._sc_extracts = perf.slot("word.extracts")
        self._sc_inserts = perf.slot("word.inserts")
        self._sc_outer_loads = perf.slot("outer.loads")
        self._sc_outer_read = perf.slot("outer.bytes_read")
        self._sc_outer_stores = perf.slot("outer.stores")
        self._sc_outer_written = perf.slot("outer.bytes_written")

    # ------------------------------------------------------------ dispatch

    def _exec_function(
        self, function: IRFunction, args: list[object], ctx: ThreadContext
    ) -> object:
        fdict = function.__dict__
        ops = fdict.get("_cc_ops")
        if ops is None or fdict.get("_cc_cost") is not self._cost:
            ops = self._compile(function)
        regs: list[object] = [0] * max(function.num_regs, len(args))
        regs[: len(args)] = args
        stack = ctx.stack
        saved_sp = stack.sp
        frame_base = (
            stack.push(function.frame_size) if function.frame_size else stack.sp
        )
        ctx.now += self._cost.call
        self._sc_calls.count += 1
        trace = self._trace
        if trace.enabled:
            track = ctx.core.name
            trace.emit(ctx.now, track, EV_ENTER, (function.name,))
            marker = trace.frame_marker
            if marker is not None and function.name.endswith(marker):
                trace.emit(ctx.now, track, EV_FRAME, (function.name,))
        chk = self._chk_discipline and ctx.is_accel and ctx.core.dma is not None
        frame = _Frame(self, ctx, regs, frame_base, ctx.local_store, chk)
        pc = 0
        n = len(ops)
        try:
            while 0 <= pc < n:
                pc = ops[pc](frame)
            # ``ctx.now`` here equals the reference engine's at its exit
            # emit: the Ret op has already charged ``cost.ret``, and a
            # fall-off leaves the clock untouched — so one emit covers
            # both paths with identical stamps.
            if trace.enabled:
                trace.emit(ctx.now, ctx.core.name, EV_EXIT, (function.name,))
            return frame.ret
        finally:
            stack.pop(saved_sp)

    # ----------------------------------------------------------- translation

    def _compile(self, function: IRFunction) -> list[Op]:
        """Translate ``function.code`` into the cached ops list."""
        translated = [
            self._translate(instr, index, function)
            for index, instr in enumerate(function.code)
        ]
        ops = self._fuse_blocks(function, translated)
        function._cc_ops = ops  # type: ignore[attr-defined]
        function._cc_cost = self._cost  # type: ignore[attr-defined]
        return ops

    def _fuse_blocks(
        self, function: IRFunction, translated: list[Translated]
    ) -> list[Op]:
        """Fuse each basic block into one dispatch.

        Leaders are the function entry and every label target; a block's
        span runs to its terminator (or the next leader, for blocks that
        fall through).  Control only ever enters a block at its leader,
        so the leader slot is replaced by one closure that charges the
        block's instruction span against the budget, batch-charges the
        cycle cost of clock-blind instructions per segment (segments
        break at clock-observing instructions, keeping ``ctx.now`` exact
        at every observation point), runs the ops in a tight loop, and
        returns the next pc.  Per-op semantics are untouched — the same
        closures run in the same order, so mid-block traps behave
        identically.
        """
        ops: list[Op] = [op for op, _ in translated]
        code = function.code
        n = len(code)
        if n == 0:
            return ops
        budget = self._budget
        leaders = sorted({0, *(i for i in function.labels.values() if i < n)})
        for pos, leader in enumerate(leaders):
            limit = leaders[pos + 1] if pos + 1 < len(leaders) else n
            end = limit
            for j in range(leader, limit):
                if isinstance(code[j], _TERMINATORS):
                    end = j + 1
                    break
            span = end - leader
            block = translated[leader:end]

            # A clock-observing tail (all control transfers are) runs
            # last and picks the next pc; a clock-blind tail (pure
            # fall-through into the next block) joins the segments and
            # the block exits to the constant fall-through pc.
            tail_op, tail_charge = block[-1]
            if tail_charge is None:
                seq = block[:-1]
                exit_op: Optional[Op] = tail_op
            else:
                seq = block
                exit_op = None
            exit_pc = end

            # Alternating segments: charge the summed cost of a run of
            # clock-blind ops, run them, then run any clock-observing
            # ops (which charge themselves), repeat.
            segments: list[tuple[int, tuple[Op, ...]]] = []
            i = 0
            while i < len(seq):
                charge = 0
                run: list[Op] = []
                while i < len(seq) and seq[i][1] is not None:
                    charge += seq[i][1]  # type: ignore[operator]
                    run.append(seq[i][0])
                    i += 1
                while i < len(seq) and seq[i][1] is None:
                    run.append(seq[i][0])
                    i += 1
                segments.append((charge, tuple(run)))

            if len(segments) == 1 and exit_op is not None:
                charge, body = segments[0]

                def block_op(
                    st: _Frame,
                    body=body,
                    tail=exit_op,
                    charge=charge,
                    span=span,
                ) -> int:
                    eng = st.eng
                    eng._instructions += span
                    if eng._instructions > budget:
                        raise RuntimeTrap(
                            f"instruction budget exceeded ({budget})"
                        )
                    if charge:
                        st.ctx.now += charge
                    for op in body:
                        op(st)
                    return tail(st)

            elif len(segments) <= 1 and exit_op is None:
                charge, body = segments[0] if segments else (0, ())

                def block_op(
                    st: _Frame,
                    body=body,
                    charge=charge,
                    span=span,
                    nxt=exit_pc,
                ) -> int:
                    eng = st.eng
                    eng._instructions += span
                    if eng._instructions > budget:
                        raise RuntimeTrap(
                            f"instruction budget exceeded ({budget})"
                        )
                    if charge:
                        st.ctx.now += charge
                    for op in body:
                        op(st)
                    return nxt

            else:
                segs = tuple(segments)

                def block_op(
                    st: _Frame,
                    segs=segs,
                    tail=exit_op,
                    span=span,
                    nxt=exit_pc,
                ) -> int:
                    eng = st.eng
                    eng._instructions += span
                    if eng._instructions > budget:
                        raise RuntimeTrap(
                            f"instruction budget exceeded ({budget})"
                        )
                    ctx = st.ctx
                    for charge, run in segs:
                        if charge:
                            ctx.now += charge
                        for op in run:
                            op(st)
                    if tail is not None:
                        return tail(st)
                    return nxt

            ops[leader] = block_op
        return ops

    def _translate(
        self, instr: Instr, index: int, function: IRFunction
    ) -> Translated:
        """One instruction -> one fully pre-bound closure plus its
        static cycle charge (None for clock-observing instructions)."""
        cost = self._cost
        nxt = index + 1
        alu = cost.alu

        if isinstance(instr, Const):
            dst, value = instr.dst, instr.value

            def op_const(st: _Frame) -> int:
                st.regs[dst] = value
                return nxt

            return op_const, alu

        if isinstance(instr, Move):
            dst, src = instr.dst, instr.src

            def op_move(st: _Frame) -> int:
                r = st.regs
                r[dst] = r[src]
                return nxt

            return op_move, alu

        if isinstance(instr, BinOp):
            return self._translate_binop(instr, nxt)

        if isinstance(instr, UnOp):
            return self._translate_unop(instr, nxt)

        if isinstance(instr, Load):
            return self._translate_load(instr, nxt)

        if isinstance(instr, Store):
            return self._translate_store(instr, nxt)

        if isinstance(instr, Copy):

            def op_copy(st: _Frame, I=instr) -> int:
                st.eng._exec_copy(I, st.regs, st.ctx)
                return nxt

            return op_copy, None

        if isinstance(instr, Extract):
            return self._translate_extract(instr, nxt)

        if isinstance(instr, Insert):
            return self._translate_insert(instr, nxt)

        if isinstance(instr, FrameAddr):
            dst, offset = instr.dst, instr.offset

            def op_frameaddr(st: _Frame) -> int:
                st.regs[dst] = st.frame_base + offset
                return nxt

            return op_frameaddr, alu

        if isinstance(instr, GlobalAddr):
            dst = instr.dst
            slot = self.program.globals.get(instr.name)
            if slot is None:
                # Unknown global: defer so the failure surfaces at
                # execution time with the reference engine's KeyError.
                def op_globaladdr_missing(st: _Frame, name=instr.name) -> int:
                    st.regs[dst] = st.eng.program.globals[name].address
                    return nxt

                return op_globaladdr_missing, alu
            address = slot.address

            def op_globaladdr(st: _Frame) -> int:
                st.regs[dst] = address
                return nxt

            return op_globaladdr, alu

        if isinstance(instr, Jump):
            branch = cost.branch
            target = function.labels.get(instr.label)
            if target is None:

                def op_jump_missing(st: _Frame, label=instr.label) -> int:
                    st.ctx.now += branch
                    raise KeyError(label)

                return op_jump_missing, None

            def op_jump(st: _Frame, target=target) -> int:
                st.ctx.now += branch
                return target

            return op_jump, None

        if isinstance(instr, CJump):
            branch = cost.branch
            cond = instr.cond
            then_target = function.labels.get(instr.then_label)
            else_target = function.labels.get(instr.else_label)
            if then_target is None or else_target is None:

                def op_cjump_missing(
                    st: _Frame, I=instr, labels=function.labels
                ) -> int:
                    st.ctx.now += branch
                    target = I.then_label if st.regs[I.cond] else I.else_label
                    return labels[target]

                return op_cjump_missing, None

            def op_cjump(st: _Frame) -> int:
                st.ctx.now += branch
                return then_target if st.regs[cond] else else_target

            return op_cjump, None

        if isinstance(instr, Call):
            return self._translate_call(instr, nxt)

        if isinstance(instr, ICall):
            return self._translate_icall(instr, nxt)

        if isinstance(instr, DomainCall):
            dst = instr.dst

            def op_domaincall(st: _Frame, I=instr) -> int:
                value = st.eng._exec_domain_call(I, st.regs, st.ctx)
                if dst is not None:
                    st.regs[dst] = value
                return nxt

            return op_domaincall, None

        if isinstance(instr, Intrinsic):
            return self._translate_intrinsic(instr, nxt)

        if isinstance(instr, Ret):
            ret_cost = cost.ret
            src = instr.src
            if src is None:

                def op_ret_void(st: _Frame) -> int:
                    st.ctx.now += ret_cost
                    st.ret = 0
                    return -1

                return op_ret_void, None

            def op_ret(st: _Frame) -> int:
                st.ctx.now += ret_cost
                st.ret = st.regs[src]
                return -1

            return op_ret, None

        if isinstance(instr, OffloadLaunch):
            dst = instr.dst

            def op_launch(st: _Frame, I=instr) -> int:
                st.regs[dst] = st.eng._launch_offload(I, st.regs, st.ctx)
                return nxt

            return op_launch, None

        if isinstance(instr, OffloadJoin):
            handle = instr.handle

            def op_join(st: _Frame) -> int:
                st.eng._join_offload(int(st.regs[handle]), st.ctx)
                return nxt

            return op_join, None

        if isinstance(instr, Trap):
            message = instr.message

            def op_trap(st: _Frame) -> int:
                raise RuntimeTrap(message)

            return op_trap, None

        # Unknown instruction class: fail exactly like the reference loop.
        def op_unhandled(st: _Frame, I=instr) -> int:
            raise AssertionError(f"unhandled instruction {I!r}")

        return op_unhandled, None

    # ------------------------------------------------------------ arithmetic

    def _translate_binop(self, instr: BinOp, nxt: int) -> Translated:
        alu = self._cost.alu
        dst, a, b = instr.dst, instr.a, instr.b
        op = instr.op
        if instr.is_compare:
            if op == "==":

                def op_eq(st: _Frame) -> int:
                    r = st.regs
                    r[dst] = 1 if r[a] == r[b] else 0
                    return nxt

                return op_eq, alu
            if op == "!=":

                def op_ne(st: _Frame) -> int:
                    r = st.regs
                    r[dst] = 1 if r[a] != r[b] else 0
                    return nxt

                return op_ne, alu
            if op == "<":

                def op_lt(st: _Frame) -> int:
                    r = st.regs
                    r[dst] = 1 if r[a] < r[b] else 0
                    return nxt

                return op_lt, alu
            if op == "<=":

                def op_le(st: _Frame) -> int:
                    r = st.regs
                    r[dst] = 1 if r[a] <= r[b] else 0
                    return nxt

                return op_le, alu
            if op == ">":

                def op_gt(st: _Frame) -> int:
                    r = st.regs
                    r[dst] = 1 if r[a] > r[b] else 0
                    return nxt

                return op_gt, alu

            def op_ge(st: _Frame) -> int:
                r = st.regs
                r[dst] = 1 if r[a] >= r[b] else 0
                return nxt

            return op_ge, alu

        if instr.float_op:
            if op == "+":

                def op_fadd(st: _Frame) -> int:
                    r = st.regs
                    r[dst] = float(r[a]) + float(r[b])
                    return nxt

                return op_fadd, alu
            if op == "-":

                def op_fsub(st: _Frame) -> int:
                    r = st.regs
                    r[dst] = float(r[a]) - float(r[b])
                    return nxt

                return op_fsub, alu
            if op == "*":

                def op_fmul(st: _Frame) -> int:
                    r = st.regs
                    r[dst] = float(r[a]) * float(r[b])
                    return nxt

                return op_fmul, alu
            if op == "/":

                def op_fdiv(st: _Frame) -> int:
                    r = st.regs
                    fa, fb = float(r[a]), float(r[b])
                    if fb == 0.0:
                        r[dst] = (
                            math.inf if fa > 0
                            else (-math.inf if fa < 0 else math.nan)
                        )
                    else:
                        r[dst] = fa / fb
                    return nxt

                return op_fdiv, alu
            raise AssertionError(f"float op {op}")

        if op == "+":
            if instr.signed:

                def op_adds(st: _Frame) -> int:
                    r = st.regs
                    r[dst] = (
                        (int(r[a]) + int(r[b]) + _BIAS) & _U32
                    ) - _BIAS
                    return nxt

                return op_adds, alu

            def op_addu(st: _Frame) -> int:
                r = st.regs
                r[dst] = (int(r[a]) + int(r[b])) & _U32
                return nxt

            return op_addu, alu
        if op == "-":
            if instr.signed:

                def op_subs(st: _Frame) -> int:
                    r = st.regs
                    r[dst] = (
                        (int(r[a]) - int(r[b]) + _BIAS) & _U32
                    ) - _BIAS
                    return nxt

                return op_subs, alu

            def op_subu(st: _Frame) -> int:
                r = st.regs
                r[dst] = (int(r[a]) - int(r[b])) & _U32
                return nxt

            return op_subu, alu
        if op == "*":
            if instr.signed:

                def op_muls(st: _Frame) -> int:
                    r = st.regs
                    r[dst] = (
                        (int(r[a]) * int(r[b]) + _BIAS) & _U32
                    ) - _BIAS
                    return nxt

                return op_muls, alu

            def op_mulu(st: _Frame) -> int:
                r = st.regs
                r[dst] = (int(r[a]) * int(r[b])) & _U32
                return nxt

            return op_mulu, alu

        value_fn = _int_binop_fn(op, instr.signed)

        def op_int(st: _Frame) -> int:
            r = st.regs
            r[dst] = value_fn(r[a], r[b])
            return nxt

        return op_int, alu

    def _translate_unop(self, instr: UnOp, nxt: int) -> Translated:
        alu = self._cost.alu
        dst, a = instr.dst, instr.a
        op = instr.op
        if op == "-":
            if instr.float_op:

                def op_fneg(st: _Frame) -> int:
                    r = st.regs
                    r[dst] = -float(r[a])
                    return nxt

                return op_fneg, alu

            def op_neg(st: _Frame) -> int:
                r = st.regs
                r[dst] = ((-int(r[a]) + _BIAS) & _U32) - _BIAS
                return nxt

            return op_neg, alu
        if op == "!":

            def op_not(st: _Frame) -> int:
                r = st.regs
                r[dst] = 0 if r[a] else 1
                return nxt

            return op_not, alu
        if op == "~":

            def op_inv(st: _Frame) -> int:
                r = st.regs
                r[dst] = ((~int(r[a]) + _BIAS) & _U32) - _BIAS
                return nxt

            return op_inv, alu
        if op == "itof":

            def op_itof(st: _Frame) -> int:
                r = st.regs
                r[dst] = float(int(r[a]))
                return nxt

            return op_itof, alu
        if op == "ftoi":

            def op_ftoi(st: _Frame) -> int:
                r = st.regs
                f = float(r[a])
                if math.isnan(f) or math.isinf(f):
                    r[dst] = 0
                else:
                    r[dst] = ((math.trunc(f) + _BIAS) & _U32) - _BIAS
                return nxt

            return op_ftoi, alu
        if op in ("sext8", "sext16", "zext8", "zext16"):
            bits = 8 if op.endswith("8") else 16
            mask = (1 << bits) - 1
            sign_bit = 1 << (bits - 1)
            modulus = 1 << bits
            if op.startswith("sext"):

                def op_sext(st: _Frame) -> int:
                    r = st.regs
                    value = int(r[a]) & mask
                    if value >= sign_bit:
                        value -= modulus
                    r[dst] = value
                    return nxt

                return op_sext, alu

            def op_zext(st: _Frame) -> int:
                r = st.regs
                r[dst] = int(r[a]) & mask
                return nxt

            return op_zext, alu
        raise AssertionError(f"unary op {op}")

    # --------------------------------------------------------------- memory

    def _translate_load(self, instr: Load, nxt: int) -> Translated:
        dst, addr_reg, size = instr.dst, instr.addr, instr.size
        space = instr.space
        codec = scalar_codec(*instr.scalar_key)

        if space is AccSpace.OUTER:
            if codec is not None:
                unpack = codec.unpack

                def decode(data: bytes) -> object:
                    return unpack(data)[0]

            else:
                signed = instr.signed

                def decode(data: bytes) -> object:
                    return int.from_bytes(data, "little", signed=signed)

            def op_load_outer(st: _Frame) -> int:
                ctx = st.ctx
                strategy = ctx.strategy
                assert strategy is not None
                data, ctx.now = strategy.load(
                    int(st.regs[addr_reg]), size, ctx.now
                )
                eng = st.eng
                eng._sc_outer_loads.count += 1
                eng._sc_outer_read.count += size
                st.regs[dst] = decode(data)
                return nxt

            return op_load_outer, None

        if codec is None:
            # Exotic width: defer to the reference helpers wholesale
            # (which charge the clock themselves).
            def op_load_generic(st: _Frame, I=instr) -> int:
                eng = st.eng
                data = eng._read_mem(
                    I.space, int(st.regs[I.addr]), I.size, st.ctx
                )
                st.regs[I.dst] = eng._decode(data, I.signed, I.is_float)
                return nxt

            return op_load_generic, None

        unpack_from = codec.unpack_from

        if space is AccSpace.MAIN:

            def op_load_main(st: _Frame) -> int:
                mem = st.ctx.main_memory
                addr = int(st.regs[addr_reg])
                if addr < 0 or addr + size > mem.size:
                    mem.check_bounds(addr, size)
                st.regs[dst] = unpack_from(mem._data, addr)[0]
                return nxt

            return op_load_main, self._cost.host_mem_access

        def op_load_local(st: _Frame) -> int:
            mem = st.ls
            if mem is None:
                raise RuntimeTrap(
                    f"local-store access on core {st.ctx.name} which has none"
                )
            addr = int(st.regs[addr_reg])
            if st.chk:
                dma = st.ctx.core.dma
                if dma._in_flight:
                    conflict = dma.pending_local_conflict(addr, size)
                    if conflict is not None:
                        raise RuntimeTrap(
                            f"local store read at {addr:#x} overlaps "
                            f"in-flight {conflict.describe()}; missing dma_wait"
                        )
            if addr < 0 or addr + size > mem.size:
                mem.check_bounds(addr, size)
            st.regs[dst] = unpack_from(mem._data, addr)[0]
            return nxt

        return op_load_local, self._cost.local_access

    def _translate_store(self, instr: Store, nxt: int) -> Translated:
        src, addr_reg, size = instr.src, instr.addr, instr.size
        space = instr.space
        is_float = instr.is_float
        mask = instr.mask
        codec = scalar_codec(size, False, is_float)

        if space is AccSpace.OUTER:
            if is_float:
                if codec is not None:
                    pack = codec.pack

                    def encode(value: object) -> bytes:
                        return pack(float(value))

                else:

                    def encode(value: object) -> bytes:
                        return Interpreter._encode(value, size, True)

            else:

                def encode(value: object) -> bytes:
                    return (int(value) & mask).to_bytes(size, "little")

            def op_store_outer(st: _Frame) -> int:
                ctx = st.ctx
                data = encode(st.regs[src])
                strategy = ctx.strategy
                assert strategy is not None
                ctx.now = strategy.store(int(st.regs[addr_reg]), data, ctx.now)
                eng = st.eng
                eng._sc_outer_stores.count += 1
                eng._sc_outer_written.count += size
                return nxt

            return op_store_outer, None

        if codec is None:

            def op_store_generic(st: _Frame, I=instr) -> int:
                eng = st.eng
                data = eng._encode(st.regs[I.src], I.size, I.is_float)
                eng._write_mem(I.space, int(st.regs[I.addr]), data, st.ctx)
                return nxt

            return op_store_generic, None

        pack_into = codec.pack_into

        if space is AccSpace.MAIN:
            access = self._cost.host_mem_access
            if is_float:

                def op_fstore_main(st: _Frame) -> int:
                    value = float(st.regs[src])
                    mem = st.ctx.main_memory
                    addr = int(st.regs[addr_reg])
                    if addr < 0 or addr + size > mem.size:
                        mem.check_bounds(addr, size)
                    pack_into(mem._data, addr, value)
                    return nxt

                return op_fstore_main, access

            def op_store_main(st: _Frame) -> int:
                value = int(st.regs[src]) & mask
                mem = st.ctx.main_memory
                addr = int(st.regs[addr_reg])
                if addr < 0 or addr + size > mem.size:
                    mem.check_bounds(addr, size)
                pack_into(mem._data, addr, value)
                return nxt

            return op_store_main, access

        access = self._cost.local_access
        if is_float:

            def op_fstore_local(st: _Frame) -> int:
                value = float(st.regs[src])
                mem = st.ls
                if mem is None:
                    raise RuntimeTrap(
                        f"local-store access on core {st.ctx.name} "
                        f"which has none"
                    )
                addr = int(st.regs[addr_reg])
                if addr < 0 or addr + size > mem.size:
                    mem.check_bounds(addr, size)
                pack_into(mem._data, addr, value)
                return nxt

            return op_fstore_local, access

        def op_store_local(st: _Frame) -> int:
            value = int(st.regs[src]) & mask
            mem = st.ls
            if mem is None:
                raise RuntimeTrap(
                    f"local-store access on core {st.ctx.name} which has none"
                )
            addr = int(st.regs[addr_reg])
            if addr < 0 or addr + size > mem.size:
                mem.check_bounds(addr, size)
            pack_into(mem._data, addr, value)
            return nxt

        return op_store_local, access

    # ------------------------------------------------------------ sub-word

    def _translate_extract(self, instr: Extract, nxt: int) -> Translated:
        dst, word_reg = instr.dst, instr.word
        mask, sign_bit, modulus = instr.mask, instr.sign_bit, instr.modulus
        signed = instr.signed
        if instr.const_offset is not None:
            shift = 8 * instr.const_offset

            def op_extract_const(st: _Frame) -> int:
                r = st.regs
                value = (int(r[word_reg]) >> shift) & mask
                if signed and value >= sign_bit:
                    value -= modulus
                r[dst] = value
                st.eng._sc_extracts.count += 1
                return nxt

            return op_extract_const, self._cost.word_extract

        offset_reg = instr.offset

        def op_extract_var(st: _Frame) -> int:
            r = st.regs
            value = (int(r[word_reg]) >> (8 * int(r[offset_reg]))) & mask
            if signed and value >= sign_bit:
                value -= modulus
            r[dst] = value
            st.eng._sc_extracts.count += 1
            return nxt

        return op_extract_var, 2 * self._cost.word_extract

    def _translate_insert(self, instr: Insert, nxt: int) -> Translated:
        dst, word_reg, value_reg = instr.dst, instr.word, instr.value
        mask = instr.mask
        if instr.const_offset is not None:
            shift = 8 * instr.const_offset
            shifted_mask = mask << shift

            def op_insert_const(st: _Frame) -> int:
                r = st.regs
                merged = (int(r[word_reg]) & ~shifted_mask) | (
                    (int(r[value_reg]) & mask) << shift
                )
                r[dst] = merged & _U32
                st.eng._sc_inserts.count += 1
                return nxt

            return op_insert_const, self._cost.word_extract

        offset_reg = instr.offset

        def op_insert_var(st: _Frame) -> int:
            r = st.regs
            shift = 8 * int(r[offset_reg])
            merged = (int(r[word_reg]) & ~(mask << shift)) | (
                (int(r[value_reg]) & mask) << shift
            )
            r[dst] = merged & _U32
            st.eng._sc_inserts.count += 1
            return nxt

        return op_insert_var, 2 * self._cost.word_extract

    # ---------------------------------------------------------------- calls

    def _translate_call(self, instr: Call, nxt: int) -> Translated:
        dst = instr.dst
        args = tuple(instr.args)
        callee = self.program.functions.get(instr.callee)
        if callee is None:
            # Unknown callee: fail at execution time with the reference
            # engine's KeyError from program.function().
            def op_call_missing(st: _Frame, name=instr.callee) -> int:
                eng = st.eng
                value = eng._exec_function(
                    eng.program.function(name),
                    [st.regs[a] for a in args],
                    st.ctx,
                )
                if dst is not None:
                    st.regs[dst] = value
                return nxt

            return op_call_missing, None

        if dst is None:

            def op_call_void(st: _Frame) -> int:
                r = st.regs
                st.eng._exec_function(callee, [r[a] for a in args], st.ctx)
                return nxt

            return op_call_void, None

        def op_call(st: _Frame) -> int:
            r = st.regs
            r[dst] = st.eng._exec_function(
                callee, [r[a] for a in args], st.ctx
            )
            return nxt

        return op_call, None

    def _translate_icall(self, instr: ICall, nxt: int) -> Translated:
        dst = instr.dst
        args = tuple(instr.args)
        fid_reg = instr.func_id
        vtable_load = self._cost.vtable_load
        function_ids = self.program.function_ids

        def op_icall(st: _Frame) -> int:
            r = st.regs
            fid = int(r[fid_reg])
            name = function_ids.get(fid)
            if name is None:
                raise RuntimeTrap(
                    f"indirect call through bad function id {fid:#x}"
                )
            ctx = st.ctx
            ctx.now += vtable_load
            eng = st.eng
            value = eng._exec_function(
                eng.program.function(name), [r[a] for a in args], ctx
            )
            if dst is not None:
                r[dst] = value
            return nxt

        return op_icall, None

    # ------------------------------------------------------------ intrinsics

    def _translate_intrinsic(self, instr: Intrinsic, nxt: int) -> Translated:
        name = instr.name
        dst = instr.dst
        args = tuple(instr.args)
        alu = self._cost.alu

        if name in ("print_int", "print_float", "print_char"):
            a0 = args[0]
            conv = {
                "print_int": int,
                "print_float": float,
                "print_char": lambda v: chr(int(v) & 0xFF),
            }[name]

            def op_print(st: _Frame) -> int:
                ctx = st.ctx
                st.eng.output.append((ctx.name, conv(st.regs[a0])))
                if dst is not None:
                    st.regs[dst] = 0
                return nxt

            return op_print, alu

        if name == "sqrtf":
            a0 = args[0]

            def op_sqrtf(st: _Frame) -> int:
                value = float(st.regs[a0])
                result = math.sqrt(value) if value >= 0 else math.nan
                if dst is not None:
                    st.regs[dst] = result
                return nxt

            return op_sqrtf, 4 * alu

        if name == "fabsf":
            a0 = args[0]

            def op_fabsf(st: _Frame) -> int:
                result = abs(float(st.regs[a0]))
                if dst is not None:
                    st.regs[dst] = result
                return nxt

            return op_fabsf, alu

        if name == "iabs":
            a0 = args[0]

            def op_iabs(st: _Frame) -> int:
                result = ((abs(int(st.regs[a0])) + _BIAS) & _U32) - _BIAS
                if dst is not None:
                    st.regs[dst] = result
                return nxt

            return op_iabs, alu

        if name in ("imin", "imax"):
            a0, a1 = args
            pick = min if name == "imin" else max

            def op_iminmax(st: _Frame) -> int:
                r = st.regs
                result = pick(int(r[a0]), int(r[a1]))
                if dst is not None:
                    r[dst] = result
                return nxt

            return op_iminmax, alu

        if name in ("fminf", "fmaxf"):
            a0, a1 = args
            pick = min if name == "fminf" else max

            def op_fminmax(st: _Frame) -> int:
                r = st.regs
                result = pick(float(r[a0]), float(r[a1]))
                if dst is not None:
                    r[dst] = result
                return nxt

            return op_fminmax, alu

        # DMA / accessor intrinsics and anything else: the reference
        # implementation is the single source of truth (and charges the
        # clock itself).
        def op_intrinsic(st: _Frame, I=instr) -> int:
            value = st.eng._exec_intrinsic(I, st.regs, st.ctx)
            if dst is not None:
                st.regs[dst] = value
            return nxt

        return op_intrinsic, None


def clear_compiled_cache(function: IRFunction) -> None:
    """Drop the cached ops of ``function`` (after mutating its code)."""
    function.__dict__.pop("_cc_ops", None)
    function.__dict__.pop("_cc_cost", None)


def warm_translations(
    program: IRProgram,
    machine: Machine,
    options: Optional[RunOptions] = None,
    engine: str = "compiled",
    cache=None,
) -> int:
    """Translate every function of ``program`` ahead of execution.

    Serving workloads that load a cached artifact
    (:mod:`repro.compiler.cache`) and then field many requests against
    it can pay the IR -> translation cost at load time instead of on
    each function's first call.  The translations are cached on the
    program objects themselves (keyed by cost model), so every
    subsequent ``run_program`` of this program object on a machine with
    the same cost model reuses them.

    Args:
        engine: ``"compiled"`` warms the closure translations,
            ``"codegen"`` the generated-source module (loading cached
            source from ``cache`` / ``REPRO_COMPILE_CACHE`` when
            available, in which case no codegen runs at all) and
            ``"all"`` warms both.
        cache: Optional :class:`repro.compiler.cache.CompileCache` the
            codegen warm-up should consult before translating.

    Returns the number of functions that actually needed translating
    (0 when the program is already warm for this cost model — for the
    codegen engine that includes source served from the compile cache).
    """
    if engine not in ("compiled", "codegen", "all"):
        raise ValueError(
            f"unknown warm_translations engine {engine!r};"
            " known: 'compiled', 'codegen', 'all'"
        )
    run_options = options or RunOptions()
    # No race checkers: these engine instances only translate, and must
    # not leave observers attached to the machine's DMA engines.
    warm_options = RunOptions(
        racecheck=None,
        check_dma_discipline=run_options.check_dma_discipline,
        max_instructions=run_options.max_instructions,
        engine="compiled",
    )
    translated = 0
    if engine in ("compiled", "all"):
        warm = CompiledInterpreter(program, machine, warm_options)
        for function in program.functions.values():
            fdict = function.__dict__
            if (
                fdict.get("_cc_ops") is None
                or fdict.get("_cc_cost") is not warm._cost
            ):
                warm._compile(function)
                translated += 1
    if engine in ("codegen", "all"):
        from repro.vm.codegen import CodegenInterpreter

        warm = CodegenInterpreter(program, machine, warm_options)
        warm._ensure_module(cache=cache)
        translated += warm.codegen_stats.translations
    return translated

"""Thread contexts and outer-access strategies.

A :class:`ThreadContext` is one logical thread: the host thread, or one
offload thread pinned to an accelerator core.  It carries the local
cycle counter, the frame stack allocator, and — for cross-memory-space
accelerator threads — the *outer strategy* that implements accesses to
host memory:

* :class:`RawDmaStrategy` — every outer access becomes a blocking DMA
  through a small bounce buffer: the paper's unoptimised baseline, two
  dependent high-latency transfers per pointer-chase iteration.
* :class:`CachedStrategy` — accesses go through one of the software
  caches (Section 4.2), chosen per offload block by the ``cache(...)``
  annotation.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import LocalStoreOverflow, MachineError
from repro.machine.cores import AcceleratorCore, Core
from repro.machine.memory import MemorySpace
from repro.runtime.softcache import SoftwareCache, make_cache

#: Bytes reserved at the top of the local store for the bounce buffer.
SCRATCH_BYTES = 512

#: DMA tag used by the raw strategy's bounce transfers.
RAW_TAG = 31


class OuterStrategy:
    """Interface for accelerator accesses to host memory."""

    def load(self, address: int, size: int, now: int) -> tuple[bytes, int]:
        raise NotImplementedError

    def store(self, address: int, data: bytes, now: int) -> int:
        raise NotImplementedError

    def flush(self, now: int) -> int:
        """Make all buffered stores visible in main memory."""
        return now


class RawDmaStrategy(OuterStrategy):
    """Blocking bounce-buffer DMA per access (uncached)."""

    def __init__(self, core: AcceleratorCore, scratch_addr: int):
        if core.dma is None or core.local_store is None:
            raise MachineError("raw DMA strategy requires a local store")
        self.core = core
        self.scratch_addr = scratch_addr

    def load(self, address: int, size: int, now: int) -> tuple[bytes, int]:
        dma = self.core.dma
        ls = self.core.local_store
        assert dma is not None and ls is not None
        parts: list[bytes] = []
        remaining = size
        cursor = address
        while remaining > 0:
            chunk = min(remaining, SCRATCH_BYTES)
            now = dma.get(RAW_TAG, self.scratch_addr, cursor, chunk, now)
            now = dma.wait(RAW_TAG, now)
            parts.append(ls.read_unchecked(self.scratch_addr, chunk))
            cursor += chunk
            remaining -= chunk
        self.core.perf.add("outer.raw_loads")
        return b"".join(parts), now

    def store(self, address: int, data: bytes, now: int) -> int:
        dma = self.core.dma
        ls = self.core.local_store
        assert dma is not None and ls is not None
        view = memoryview(data)
        cursor = address
        while view:
            chunk = min(len(view), SCRATCH_BYTES)
            ls.write_unchecked(self.scratch_addr, bytes(view[:chunk]))
            now = dma.put(RAW_TAG, self.scratch_addr, cursor, chunk, now)
            now = dma.wait(RAW_TAG, now)
            cursor += chunk
            view = view[chunk:]
        self.core.perf.add("outer.raw_stores")
        return now


class CachedStrategy(OuterStrategy):
    """Outer accesses through a software cache."""

    def __init__(self, cache: SoftwareCache):
        self.cache = cache

    def load(self, address: int, size: int, now: int) -> tuple[bytes, int]:
        return self.cache.load(address, size, now)

    def store(self, address: int, data: bytes, now: int) -> int:
        return self.cache.store(address, data, now)

    def flush(self, now: int) -> int:
        return self.cache.flush(now)


#: Default software-cache geometry for offload blocks with a
#: ``cache(...)`` annotation.
CACHE_LINE_SIZE = 128
CACHE_NUM_LINES = 64


def build_strategy(
    core: AcceleratorCore, cache_kind: Optional[str]
) -> tuple[OuterStrategy, int]:
    """Create the outer strategy for one offload thread.

    Returns ``(strategy, stack_limit)`` — the local-store layout is
    computed here: frames grow from 0; the bounce buffer sits at the
    top; cache line storage (when caching) sits just below it.
    """
    ls = core.local_store
    assert ls is not None
    scratch_addr = ls.size - SCRATCH_BYTES
    if cache_kind is None:
        return RawDmaStrategy(core, scratch_addr), scratch_addr
    cache_bytes = CACHE_LINE_SIZE * CACHE_NUM_LINES
    cache_base = scratch_addr - cache_bytes
    cache = make_cache(
        cache_kind,
        core,
        cache_base,
        line_size=CACHE_LINE_SIZE,
        num_lines=CACHE_NUM_LINES,
    )
    return CachedStrategy(cache), cache_base


class FrameStack:
    """A simple grow-up frame allocator over a memory region."""

    def __init__(self, base: int, limit: int, space_name: str):
        self.base = base
        self.limit = limit
        self.space_name = space_name
        self._sp = base

    def push(self, size: int, alignment: int = 16) -> int:
        aligned = (self._sp + alignment - 1) // alignment * alignment
        if aligned + size > self.limit:
            raise LocalStoreOverflow(
                f"frame of {size} bytes overflows the {self.space_name} "
                f"stack (sp={aligned:#x}, limit={self.limit:#x}); offloaded "
                f"call chains must fit in scratch-pad memory"
            )
        self._sp = aligned + size
        return aligned

    def pop(self, to: int) -> None:
        self._sp = to

    @property
    def sp(self) -> int:
        return self._sp


class ThreadContext:
    """One logical thread of execution."""

    def __init__(
        self,
        core: Core,
        main_memory: MemorySpace,
        stack: FrameStack,
        now: int,
        strategy: Optional[OuterStrategy] = None,
        offload_id: int = -1,
    ):
        self.core = core
        self.main_memory = main_memory
        self.stack = stack
        self.now = now
        self.strategy = strategy
        self.offload_id = offload_id
        self.is_accel = isinstance(core, AcceleratorCore)

    @property
    def local_store(self) -> Optional[MemorySpace]:
        if isinstance(self.core, AcceleratorCore):
            return self.core.local_store
        return None

    @property
    def name(self) -> str:
        return self.core.name

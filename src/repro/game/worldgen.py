"""Deterministic game-world generation.

Generates entity populations and collision-candidate pairs, and packs
them into simulated main memory for the manual-intrinsics engine.  All
randomness is seeded so experiments are exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.game.layout import GAME_ENTITY, StructLayout
from repro.machine.machine import Machine


@dataclass
class GameWorldData:
    """A generated world packed into a machine's main memory."""

    entity_base: int
    entity_count: int
    layout: StructLayout
    #: (address of first, address of second) per collision candidate.
    pairs: list[tuple[int, int]] = field(default_factory=list)

    def entity_address(self, index: int) -> int:
        if not 0 <= index < self.entity_count:
            raise IndexError(
                f"entity {index} out of range 0..{self.entity_count - 1}"
            )
        return self.entity_base + index * self.layout.size


def generate_world(
    machine: Machine,
    entity_count: int = 128,
    pair_count: int = 64,
    seed: int = 2011,
    layout: StructLayout = GAME_ENTITY,
) -> GameWorldData:
    """Create ``entity_count`` entities and ``pair_count`` collision
    candidates in the machine's main memory heap."""
    if entity_count <= 0:
        raise ValueError("entity_count must be positive")
    if pair_count < 0:
        raise ValueError("pair_count cannot be negative")
    rng = random.Random(seed)
    base = machine.heap.allocate(entity_count * layout.size, alignment=16)
    for index in range(entity_count):
        values = {
            "x": rng.uniform(-100.0, 100.0),
            "y": rng.uniform(-100.0, 100.0),
            "vx": rng.uniform(-5.0, 5.0),
            "vy": rng.uniform(-5.0, 5.0),
            "health": rng.randint(10, 100),
            "state": 0,
        }
        layout.write(machine.main_memory, base + index * layout.size, values)
    world = GameWorldData(
        entity_base=base, entity_count=entity_count, layout=layout
    )
    for _ in range(pair_count):
        first = rng.randrange(entity_count)
        second = rng.randrange(entity_count)
        while second == first and entity_count > 1:
            second = rng.randrange(entity_count)
        world.pairs.append(
            (world.entity_address(first), world.entity_address(second))
        )
    return world

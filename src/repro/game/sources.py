"""OffloadMini sources for the paper's workloads.

Each generator returns compilable source text, parameterised by world
size so tests stay fast and benchmarks can scale up.  The sources map
one-to-one onto the paper's artefacts:

* :func:`figure1_source` — the explicit-DMA collision update (Fig. 1).
* :func:`figure2_source` — the game frame loop with offloaded strategy
  calculation overlapping host collision detection (Fig. 2).
* :func:`component_system_source` — the Section 4.1 case study: an
  abstract component system offloaded monolithically, versus the
  type-specialised restructuring.
* :func:`ai_kernel_source` — the Section 4.1 AI-offload case study
  (virtual decision checks, host vs. offloaded).
* :func:`move_loop_source` — the Section 4.2 ``current->move()`` loop
  under each data-locality strategy.
* :func:`word_struct_source` — the Section 5 byte-fields-in-words
  workload for word-addressed targets.
"""

from __future__ import annotations


def figure1_source(entity_count: int = 16, pair_count: int = 8) -> str:
    """The Figure 1 idiom in OffloadMini: two tagged gets, one wait,
    collision response on local copies, two puts, one wait."""
    return f"""
struct GameEntity {{
    float x; float y; float vx; float vy;
    int health; int state;
}};
GameEntity g_entities[{entity_count}];
int g_first[{pair_count}];
int g_second[{pair_count}];

void seed() {{
    for (int i = 0; i < {pair_count}; i++) {{
        g_first[i] = i % {entity_count};
        g_second[i] = (i * 7 + 1) % {entity_count};
        if (g_second[i] == g_first[i]) {{
            g_second[i] = (g_second[i] + 1) % {entity_count};
        }}
    }}
    for (int i = 0; i < {entity_count}; i++) {{
        g_entities[i].vx = (float)(i % 5);
        g_entities[i].vy = (float)(i % 3);
        g_entities[i].health = 50;
    }}
}}

void main() {{
    seed();
    __offload {{
        GameEntity e1;   // Allocated in local store
        GameEntity e2;
        for (int i = 0; i < {pair_count}; i++) {{
            // Fetch game entities associated with collision
            dma_get(&e1, &g_entities[g_first[i]], sizeof(GameEntity), 3);
            dma_get(&e2, &g_entities[g_second[i]], sizeof(GameEntity), 3);
            dma_wait(3);   // Block until data arrives
            // do_collision_response: swap velocities, damage, mark
            float t = e1.vx; e1.vx = e2.vx; e2.vx = t;
            t = e1.vy; e1.vy = e2.vy; e2.vy = t;
            e1.health = e1.health - 1;
            e2.health = e2.health - 1;
            e1.state = e1.state | 1;
            e2.state = e2.state | 1;
            // Write back updated entities
            dma_put(&e1, &g_entities[g_first[i]], sizeof(GameEntity), 3);
            dma_put(&e2, &g_entities[g_second[i]], sizeof(GameEntity), 3);
            dma_wait(3);
        }}
    }};
    print_int(g_entities[0].state);
}}
"""


def figure1_racy_source() -> str:
    """A broken variant of Figure 1: the programmer forgot the wait
    between the puts and the next iteration's gets.  The dynamic race
    checker must flag it (get/put overlap in main memory)."""
    return """
struct GameEntity {
    float x; float y; float vx; float vy;
    int health; int state;
};
GameEntity g_entities[4];

void main() {
    __offload {
        GameEntity e1;
        for (int i = 0; i < 2; i++) {
            dma_get(&e1, &g_entities[0], sizeof(GameEntity), 3);
            dma_wait(3);
            e1.health = e1.health - 1;
            dma_put(&e1, &g_entities[0], sizeof(GameEntity), 3);
            // BUG: no dma_wait(3) before re-fetching the same entity
        }
        dma_wait(3);
    };
}
"""


def figure2_source(
    entity_count: int = 48,
    pair_count: int = 32,
    frames: int = 2,
    offloaded: bool = True,
    cache: str | None = None,
) -> str:
    """The Figure 2 frame loop.

    With ``offloaded=True``, ``calculateStrategy`` runs in an offload
    block (capturing ``this``) in parallel with the host's
    ``detectCollisions``; otherwise everything runs sequentially on the
    host — the baseline for the overlap measurement.
    """
    annotations = f"[cache({cache})]" if cache else ""
    if offloaded:
        do_frame = f"""
    void doFrame() {{
        __offload_handle_t h = __offload {annotations} {{
            // Offload to accelerator
            this->calculateStrategy();
        }};
        this->detectCollisions();   // Executed in parallel by host
        __offload_join(h);          // Wait for accelerator to complete
        this->updateEntities();
        this->renderFrame();
    }}"""
    else:
        do_frame = """
    void doFrame() {
        this->calculateStrategy();
        this->detectCollisions();
        this->updateEntities();
        this->renderFrame();
    }"""
    return f"""
struct Entity {{
    float x; float y; float vx; float vy;
    int hits; int pad;
}};
Entity g_entities[{entity_count}];
float g_scores[{entity_count}];
int g_first[{pair_count}];
int g_second[{pair_count}];
float g_rendered = 0.0f;

class GameWorld {{
    int frame;

    void calculateStrategy() {{
        // AI: nearest-neighbour threat scan per entity.
        Array<Entity, {entity_count}> ents(g_entities);
        for (int i = 0; i < {entity_count}; i++) {{
            float best = 1.0e9f;
            for (int j = 0; j < {entity_count}; j++) {{
                if (i != j) {{
                    float dx = ents[i].x - ents[j].x;
                    float dy = ents[i].y - ents[j].y;
                    float d = dx * dx + dy * dy;
                    if (d < best) {{ best = d; }}
                }}
            }}
            g_scores[i] = best;
        }}
    }}

    void detectCollisions() {{
        for (int k = 0; k < {pair_count}; k++) {{
            Entity* a = &g_entities[g_first[k]];
            Entity* b = &g_entities[g_second[k]];
            float dx = a->x - b->x;
            float dy = a->y - b->y;
            if (dx * dx + dy * dy < 4.0f) {{
                a->hits = a->hits + 1;
                b->hits = b->hits + 1;
            }}
        }}
    }}

    void updateEntities() {{
        for (int i = 0; i < {entity_count}; i++) {{
            g_entities[i].x = g_entities[i].x + g_entities[i].vx;
            g_entities[i].y = g_entities[i].y + g_entities[i].vy;
        }}
    }}

    void renderFrame() {{
        float acc = 0.0f;
        for (int i = 0; i < {entity_count}; i++) {{
            acc = acc + g_scores[i];
        }}
        g_rendered = acc;
        frame = frame + 1;
    }}
{do_frame}
}};

GameWorld g_world;

void seed() {{
    for (int i = 0; i < {entity_count}; i++) {{
        g_entities[i].x = (float)(i * 7 % 97);
        g_entities[i].y = (float)(i * 13 % 89);
        g_entities[i].vx = (float)(i % 5) - 2.0f;
        g_entities[i].vy = (float)(i % 3) - 1.0f;
    }}
    for (int k = 0; k < {pair_count}; k++) {{
        g_first[k] = k % {entity_count};
        g_second[k] = (k * 11 + 1) % {entity_count};
    }}
}}

void main() {{
    seed();
    for (int f = 0; f < {frames}; f++) {{
        g_world.doFrame();
    }}
    print_float(g_scores[0]);
    print_int(g_entities[0].hits);
    print_float(g_rendered);
}}
"""


def component_system_source(
    num_types: int = 13,
    entities_per_type: int = 13,
    methods_per_type: int = 8,
    specialized: bool = False,
    cache: str | None = "direct",
) -> str:
    """The Section 4.1 component-system case study.

    The abstract system stores every component behind a ``Component*``
    and one monolithic offload updates them all — requiring a domain
    annotation for every subclass implementation of every method.  The
    type-specialised restructuring runs one offload per component type,
    each annotated only with that type's methods.

    Defaults reproduce the paper's scale: 13 types x 13 entities x 8
    virtual methods = 1352 virtual calls per frame (paper: ~1300), and
    a monolithic annotation set of 13*8 + 8 = 112 entries (paper: >100).
    """
    methods = [f"m{j}" for j in range(methods_per_type)]
    base_methods = "\n".join(
        f"    virtual float {m}() {{ return a + {j}.0f; }}"
        for j, m in enumerate(methods)
    )
    classes = []
    for t in range(num_types):
        overrides = "\n".join(
            f"    virtual float {m}() {{ a = a + {t + 1}.0f; "
            f"return a * {j + 1}.0f; }}"
            for j, m in enumerate(methods)
        )
        classes.append(f"class Component{t} : Component {{\n{overrides}\n}};")
    pools = "\n".join(
        f"Component{t} g_pool{t}[{entities_per_type}];" for t in range(num_types)
    )
    ptr_arrays = "\n".join(
        f"Component{t}* g_ptrs{t}[{entities_per_type}];"
        for t in range(num_types)
    )
    total = num_types * entities_per_type
    setup_lines = []
    for t in range(num_types):
        setup_lines.append(
            f"    for (int i = 0; i < {entities_per_type}; i++) {{\n"
            f"        g_all[{t} * {entities_per_type} + i] = &g_pool{t}[i];\n"
            f"        g_ptrs{t}[i] = &g_pool{t}[i];\n"
            f"    }}"
        )
    setup = "\n".join(setup_lines)
    call_all = "\n".join(
        f"            total = total + (int)c->{m}();" for m in methods
    )
    cache_ann = f", cache({cache})" if cache else ""
    if not specialized:
        domain_items = ", ".join(
            f"Component{t}::{m}" for t in range(num_types) for m in methods
        )
        domain_items += ", " + ", ".join(f"Component::{m}" for m in methods)
        body = f"""
    int total = 0;
    __offload_handle_t h = __offload [domain({domain_items}){cache_ann}] {{
        Array<Component*, {total}> comps(g_all);
        for (int i = 0; i < {total}; i++) {{
            Component* c = comps[i];
{call_all}
        }}
    }};
    __offload_join(h);
    print_int(total);"""
    else:
        # One type-specialised offload per component type; all launched
        # before any join, so they spread across the accelerator cores
        # (the restructured design runs 13 independent tasks).
        launches = []
        joins = []
        for t in range(num_types):
            domain_items = ", ".join(f"Component{t}::{m}" for m in methods)
            calls = "\n".join(
                f"            t{t} = t{t} + (int)c->{m}();" for m in methods
            )
            launches.append(
                f"""
    int t{t} = 0;
    __offload_handle_t h{t} = __offload [domain({domain_items}){cache_ann}] {{
        Array<Component{t}*, {entities_per_type}> comps(g_ptrs{t});
        for (int i = 0; i < {entities_per_type}; i++) {{
            Component{t}* c = comps[i];
{calls}
        }}
    }};"""
            )
            joins.append(
                f"    __offload_join(h{t});\n    total = total + t{t};"
            )
        body = (
            "    int total = 0;"
            + "".join(launches)
            + "\n"
            + "\n".join(joins)
            + "\n    print_int(total);"
        )
    class_text = "\n".join(classes)
    return f"""
class Component {{
    int id; float a; float b;
{base_methods}
}};
{class_text}
{pools}
{ptr_arrays}
Component* g_all[{total}];

void setup() {{
{setup}
}}

void main() {{
    setup();
{body}
}}
"""


def ai_kernel_source(
    entity_count: int = 48,
    check_count: int = 4,
    offloaded: bool = True,
    cache: str | None = "direct",
) -> str:
    """The Section 4.1 AI case study: decision making over entities
    using virtual check objects ("specific checks used in decision
    making involve virtual invocations").

    The offloaded version shows the optimised structure the paper
    arrives at: entities are staged in bulk with an ``Array`` accessor
    (grouping by uniform type makes this possible), virtual checks
    receive *values* rather than pointers so one compiled duplicate per
    check suffices, and results are written back in one transfer.
    """
    checks = """
class ThreatCheck : Check {
    virtual int eval(int x, int y, int health, int threat) {
        if (threat > threshold) { return 2 + (x + y) % 3; }
        return 0;
    }
};
class HealthCheck : Check {
    virtual int eval(int x, int y, int health, int threat) {
        if (health < threshold) { return 3; }
        return health % 2;
    }
};
class RangeCheck : Check {
    virtual int eval(int x, int y, int health, int threat) {
        int d = iabs(x) + iabs(y);
        if (d < threshold) { return 1; }
        return 0;
    }
};
"""
    cache_ann = f", cache({cache})" if cache else ""
    domain = (
        "domain(Check::eval, ThreatCheck::eval, HealthCheck::eval, "
        "RangeCheck::eval)"
    )
    kernel = f"""
        Array<Entity, {entity_count}> ents(g_entities);
        for (int i = 0; i < {entity_count}; i++) {{
            int decision = 0;
            for (int c = 0; c < {check_count}; c++) {{
                Check* chk = g_checks[c];
                decision = decision
                    + chk->eval(ents[i].x, ents[i].y,
                                ents[i].health, ents[i].threat);
            }}
            ents[i].plan = decision;
            total = total + decision;
        }}
        ents.put_back();"""
    if offloaded:
        body = f"""
    int total = 0;
    __offload_handle_t h = __offload [{domain}{cache_ann}] {{
{kernel}
    }};
    __offload_join(h);"""
    else:
        body = f"""
    int total = 0;
{kernel}"""
    return f"""
struct Entity {{
    int x; int y; int health; int threat; int plan; int pad;
}};
class Check {{
    int threshold;
    virtual int eval(int x, int y, int health, int threat) {{ return 0; }}
}};
{checks}
Entity g_entities[{entity_count}];
ThreatCheck g_c0;
HealthCheck g_c1;
RangeCheck g_c2;
Check g_c3;
Check* g_checks[{check_count}];

void setup() {{
    for (int i = 0; i < {entity_count}; i++) {{
        g_entities[i].x = i * 3 % 41 - 20;
        g_entities[i].y = i * 7 % 37 - 18;
        g_entities[i].health = 20 + i % 80;
        g_entities[i].threat = i % 10;
    }}
    g_c0.threshold = 5;
    g_c1.threshold = 30;
    g_c2.threshold = 12;
    g_c3.threshold = 0;
    g_checks[0] = &g_c0;
    g_checks[1] = &g_c1;
    g_checks[2] = &g_c2;
    g_checks[3] = &g_c3;
}}

void main() {{
    setup();
{body}
    print_int(total);
    print_int(g_entities[0].plan);
}}
"""


def move_loop_source(
    object_count: int = 32,
    use_accessor: bool = False,
    cache: str | None = None,
) -> str:
    """The Section 4.2 locality loop: ``current->move()`` over a pointer
    array, with the pointer array either chased through outer memory
    (the problem) or staged by an ``Array`` accessor (the fix)."""
    half = object_count // 2
    cache_ann = f", cache({cache})" if cache else ""
    if use_accessor:
        loop = f"""
        Array<GameObject*, {object_count}> local_objects(g_objects);
        GameObject* current = local_objects[0];
        for (int i = 0; i < {object_count}; i++) {{
            current = local_objects[i];
            current->move();
        }}"""
    else:
        loop = f"""
        for (int i = 0; i < {object_count}; i++) {{
            GameObject* current = g_objects[i];
            current->move();
        }}"""
    return f"""
class GameObject {{
    int id;
    float x; float y;
    virtual void move() {{ x = x + 1.0f; y = y - 1.0f; }}
}};
class Runner : GameObject {{
    virtual void move() {{ x = x + 2.0f; }}
}};
GameObject g_pool_a[{half}];
Runner g_pool_b[{object_count - half}];
GameObject* g_objects[{object_count}];

void setup() {{
    for (int i = 0; i < {half}; i++) {{
        g_objects[i] = &g_pool_a[i];
        g_pool_a[i].id = i;
    }}
    for (int i = 0; i < {object_count - half}; i++) {{
        g_objects[{half} + i] = &g_pool_b[i];
        g_pool_b[i].id = {half} + i;
    }}
}}

void main() {{
    setup();
    __offload [domain(GameObject::move, Runner::move){cache_ann}] {{
{loop}
    }};
    print_float(g_pool_a[0].x);
    print_float(g_pool_b[0].x);
}}
"""


def word_struct_source(packet_count: int = 32) -> str:
    """The Section 5 workload: byte fields inside word-aligned structs,
    processed with constant-offset accesses (the hybrid scheme's sweet
    spot).  sizeof(Packet) is a word multiple, so the variable-index
    pointer arithmetic stays word-addressed and legal."""
    return f"""
struct Packet {{
    char a; char b; char c; char d;
    int value;
}};
Packet g_packets[{packet_count}];

void main() {{
    for (int i = 0; i < {packet_count}; i++) {{
        Packet* p = &g_packets[i];
        p->a = p->b;
        p->c = (char)(p->value + i);
        p->d = (char)(i);
        p->value = p->value + p->a + p->d;
    }}
    print_int(g_packets[1].value);
}}
"""


def word_illegal_sources() -> dict[str, str]:
    """The paper's Section 5 legality examples, keyed by expectation.

    Keys: ``legal_word_step``, ``illegal_byte_into_word``,
    ``legal_byte_qualified``, ``illegal_variable_byte_arith``.
    """
    prologue = """
struct T { char a; char b; char c; char d; };
T g_t;
"""
    return {
        "legal_word_step": prologue
        + """
void main() {
    char* p = (char*)&g_t;
    char* q = p + 4;    // legal: the word size is 4
    print_int(0);
}
""",
        "illegal_byte_into_word": prologue
        + """
void main() {
    char* p = (char*)&g_t;
    char* q = p + 1;    // illegal on a word-addressed target
}
""",
        "legal_byte_qualified": prologue
        + """
void main() {
    char* p = (char*)&g_t;
    char __byte * q = p + 1;   // legal: destination is byte-addressed
    print_int(0);
}
""",
        "illegal_variable_byte_arith": prologue
        + """
void main() {
    char buf[8];
    char* s = &buf[0];
    for (int i = 0; i < 8; i++) { *(s + i) = (char)i; }
}
""",
    }


def game_demo_source(
    entity_count: int = 32,
    pair_count: int = 24,
    particles: int = 16,
    frames: int = 2,
    offloaded: bool = True,
) -> str:
    """A whole-frame pipeline combining the paper's techniques.

    Each frame launches three heterogeneous offloads in parallel with
    host-side collision detection:

    * an AI pass (accessor-staged entities, set-associative cache,
      writing a separate score/plan array so host work stays disjoint),
    * two type-specialised component passes (animation and particle
      emitters) with domain-dispatched virtual updates,

    then joins all three, integrates positions on the host and
    "renders".  ``offloaded=False`` runs everything sequentially on the
    host — the baseline.
    """
    if offloaded:
        do_frame = """
    void doFrame() {
        __offload_handle_t ai = __offload [cache(setassoc)] {
            this->aiPass();
        };
        __offload_handle_t anim = __offload
                [domain(AnimComponent::update), cache(direct)] {
            this->animPass();
        };
        __offload_handle_t emit = __offload
                [domain(EmitterComponent::update), cache(direct)] {
            this->emitterPass();
        };
        this->detectCollisions();   // host, in parallel with all three
        __offload_join(ai);
        __offload_join(anim);
        __offload_join(emit);
        this->integrate();
        this->render();
    }"""
    else:
        do_frame = """
    void doFrame() {
        this->aiPass();
        this->animPass();
        this->emitterPass();
        this->detectCollisions();
        this->integrate();
        this->render();
    }"""
    return f"""
struct Entity {{
    float x; float y; float vx; float vy;
    int hits; int pad;
}};
Entity g_entities[{entity_count}];
float g_scores[{entity_count}];
int g_plans[{entity_count}];
int g_first[{pair_count}];
int g_second[{pair_count}];
float g_rendered = 0.0f;

class Component {{
    int id; float phase;
    virtual void update() {{ phase = phase + 0.1f; }}
}};
class AnimComponent : Component {{
    float weight;
    virtual void update() {{
        phase = phase + 0.25f;
        weight = weight * 0.5f + phase;
    }}
}};
class EmitterComponent : Component {{
    int emitted;
    virtual void update() {{
        phase = phase + 1.0f;
        if (phase > 4.0f) {{ phase = 0.0f; emitted = emitted + 1; }}
    }}
}};
AnimComponent g_anims[{particles}];
EmitterComponent g_emitters[{particles}];
AnimComponent* g_anim_ptrs[{particles}];
EmitterComponent* g_emit_ptrs[{particles}];

class GameWorld {{
    int frame;

    void aiPass() {{
        // Threat scoring over staged entities; results go to separate
        // arrays so host-side collision work touches disjoint data.
        Array<Entity, {entity_count}> ents(g_entities);
        for (int i = 0; i < {entity_count}; i++) {{
            float best = 1.0e9f;
            int plan = 0;
            for (int j = 0; j < {entity_count}; j++) {{
                if (i != j) {{
                    float dx = ents[i].x - ents[j].x;
                    float dy = ents[i].y - ents[j].y;
                    float d = dx * dx + dy * dy;
                    if (d < best) {{ best = d; plan = j; }}
                }}
            }}
            g_scores[i] = best;
            g_plans[i] = plan;
        }}
    }}

    void animPass() {{
        Array<AnimComponent*, {particles}> comps(g_anim_ptrs);
        for (int i = 0; i < {particles}; i++) {{
            AnimComponent* c = comps[i];
            c->update();
        }}
    }}

    void emitterPass() {{
        Array<EmitterComponent*, {particles}> comps(g_emit_ptrs);
        for (int i = 0; i < {particles}; i++) {{
            EmitterComponent* c = comps[i];
            c->update();
        }}
    }}

    void detectCollisions() {{
        for (int k = 0; k < {pair_count}; k++) {{
            Entity* a = &g_entities[g_first[k]];
            Entity* b = &g_entities[g_second[k]];
            float dx = a->x - b->x;
            float dy = a->y - b->y;
            if (dx * dx + dy * dy < 9.0f) {{
                a->hits = a->hits + 1;
                b->hits = b->hits + 1;
            }}
        }}
    }}

    void integrate() {{
        for (int i = 0; i < {entity_count}; i++) {{
            g_entities[i].x = g_entities[i].x + g_entities[i].vx;
            g_entities[i].y = g_entities[i].y + g_entities[i].vy;
        }}
    }}

    void render() {{
        float acc = 0.0f;
        for (int i = 0; i < {entity_count}; i++) {{
            acc = acc + g_scores[i];
        }}
        for (int i = 0; i < {particles}; i++) {{
            acc = acc + g_anims[i].weight;
        }}
        g_rendered = acc;
        frame = frame + 1;
    }}
{do_frame}
}};

GameWorld g_world;

void seed() {{
    for (int i = 0; i < {entity_count}; i++) {{
        g_entities[i].x = (float)(i * 17 % 101) - 50.0f;
        g_entities[i].y = (float)(i * 29 % 97) - 48.0f;
        g_entities[i].vx = (float)(i % 7) - 3.0f;
        g_entities[i].vy = (float)(i % 5) - 2.0f;
    }}
    for (int k = 0; k < {pair_count}; k++) {{
        g_first[k] = k % {entity_count};
        g_second[k] = (k * 13 + 1) % {entity_count};
    }}
    for (int i = 0; i < {particles}; i++) {{
        g_anim_ptrs[i] = &g_anims[i];
        g_emit_ptrs[i] = &g_emitters[i];
        g_anims[i].id = i;
        g_emitters[i].id = i;
        g_emitters[i].phase = (float)(i % 5);
    }}
}}

void main() {{
    seed();
    for (int f = 0; f < {frames}; f++) {{
        g_world.doFrame();
    }}
    print_float(g_rendered);
    print_int(g_plans[0]);
    print_int(g_entities[0].hits);
    print_int(g_emitters[0].emitted);
    print_float(g_anims[{particles} - 1].phase);
}}
"""

"""The consumer-software substrate: a small game engine.

This package stands in for the AAA game codebases of the paper's case
studies.  It has two halves, mirroring the paper's two programming
styles:

* **manual intrinsics** (:mod:`repro.game.engine`): Python code driving
  the simulated machine's DMA engine directly — the Figure 1 style a
  PlayStation 3 programmer writes by hand;
* **OffloadMini sources** (:mod:`repro.game.sources`): the same
  workloads written in the language and compiled by the Offload
  compiler — frame loops, the abstract/specialised component system,
  AI strategy kernels, the Section 4.2 locality loops.

:mod:`repro.game.layout` packs Python-side entity descriptions into
simulated main memory with C-compatible struct layout;
:mod:`repro.game.worldgen` generates deterministic game worlds.
"""

from repro.game.layout import FieldSpec, StructLayout
from repro.game.worldgen import GameWorldData, generate_world

__all__ = [
    "FieldSpec",
    "GameWorldData",
    "StructLayout",
    "generate_world",
]

"""Manual-intrinsics game kernels (the Figure 1 programming style).

These run directly against the simulated machine's DMA engine from
Python — the hand-written SPE-intrinsic code the paper says PlayStation 3
developers are forced to write.  They serve as baselines and as the E1
experiment: the figure's "two gets under one tag" idiom versus naive
serialised gets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError
from repro.game.layout import StructLayout
from repro.game.worldgen import GameWorldData
from repro.machine.cores import AcceleratorCore
from repro.runtime.accessors import StreamAccessor

#: Local-store addresses for the two staged entities (Figure 1's e1/e2).
_E1_ADDR = 0x100
_E2_ADDR = 0x200

#: DMA tag used for the collision transfers (the figure's ``t``).
_TAG = 5


def collision_response(
    first: dict[str, object], second: dict[str, object]
) -> tuple[dict[str, object], dict[str, object]]:
    """The ``do_collision_response`` computation: elastic-ish bounce.

    Swaps velocities, damages both entities, and marks them collided.
    Pure function over unpacked entity dicts so both the manual engine
    and tests share one definition.
    """
    a, b = dict(first), dict(second)
    a["vx"], b["vx"] = b["vx"], a["vx"]
    a["vy"], b["vy"] = b["vy"], a["vy"]
    a["health"] = max(0, int(a["health"]) - 1)  # type: ignore[call-overload]
    b["health"] = max(0, int(b["health"]) - 1)  # type: ignore[call-overload]
    a["state"] = int(a["state"]) | 1  # type: ignore[call-overload]
    b["state"] = int(b["state"]) | 1  # type: ignore[call-overload]
    return a, b


@dataclass
class PairStats:
    """Cycle accounting for one processed collision pair."""

    cycles: int
    pairs: int

    @property
    def cycles_per_pair(self) -> float:
        return self.cycles / self.pairs if self.pairs else 0.0


class ManualCollisionEngine:
    """Figure 1 verbatim: explicit tagged DMA around the response code."""

    #: Cycles charged for the collision computation itself (it runs on
    #: staged local data; a handful of float swaps and compares).
    COMPUTE_CYCLES = 40

    def __init__(self, core: AcceleratorCore, world: GameWorldData):
        if core.dma is None or core.local_store is None:
            raise MachineError("the manual engine needs a local store")
        self.core = core
        self.world = world
        self.layout: StructLayout = world.layout

    # ------------------------------------------------------------- helpers

    def _stage_compute_writeback(
        self, first_addr: int, second_addr: int, now: int, parallel: bool
    ) -> int:
        dma = self.core.dma
        ls = self.core.local_store
        assert dma is not None and ls is not None
        size = self.layout.size
        if parallel:
            # Figure 1: both gets issued under one tag, one wait.
            now = dma.get(_TAG, _E1_ADDR, first_addr, size, now)
            now = dma.get(_TAG, _E2_ADDR, second_addr, size, now)
            now = dma.wait(_TAG, now)
        else:
            # Naive: each get fully fenced before the next.
            now = dma.get(_TAG, _E1_ADDR, first_addr, size, now)
            now = dma.wait(_TAG, now)
            now = dma.get(_TAG, _E2_ADDR, second_addr, size, now)
            now = dma.wait(_TAG, now)
        first = self.layout.unpack(ls.read_unchecked(_E1_ADDR, size))
        second = self.layout.unpack(ls.read_unchecked(_E2_ADDR, size))
        first, second = collision_response(first, second)
        now += self.COMPUTE_CYCLES
        ls.write_unchecked(_E1_ADDR, self.layout.pack(first))
        ls.write_unchecked(_E2_ADDR, self.layout.pack(second))
        now = dma.put(_TAG, _E1_ADDR, first_addr, size, now)
        now = dma.put(_TAG, _E2_ADDR, second_addr, size, now)
        now = dma.wait(_TAG, now)
        return now

    # ----------------------------------------------------------------- API

    def process_pairs(self, parallel: bool = True) -> PairStats:
        """Process every collision pair; returns cycle statistics."""
        now = self.core.clock.now
        start = now
        for first_addr, second_addr in self.world.pairs:
            now = self._stage_compute_writeback(
                first_addr, second_addr, now, parallel
            )
        self.core.clock.sync_to(now)
        return PairStats(cycles=now - start, pairs=len(self.world.pairs))


class StreamedEntityUpdater:
    """Uniform-type grouped processing with multi-buffered streaming.

    The Section 4.1 optimisation: when objects are grouped by type,
    their sizes are known, so they can be prefetched in bulk and the
    transfers double-buffered behind the computation.  ``depth=1``
    degrades to serial chunk-at-a-time transfers for comparison.
    """

    #: Cycles charged per entity for the update computation.
    COMPUTE_CYCLES_PER_ENTITY = 30

    #: Local-store base for the stream buffers.
    _BUFFER_BASE = 0x1000

    def __init__(
        self,
        core: AcceleratorCore,
        world: GameWorldData,
        chunk_entities: int = 16,
        depth: int = 2,
    ):
        if core.dma is None or core.local_store is None:
            raise MachineError("the streamed updater needs a local store")
        self.core = core
        self.world = world
        self.chunk_entities = chunk_entities
        self.depth = depth

    def run(self) -> int:
        """Update every entity (x += vx, y += vy); returns cycles taken."""
        layout = self.world.layout
        stream = StreamAccessor(
            self.core,
            outer_addr=self.world.entity_base,
            element_size=layout.size,
            count=self.world.entity_count,
            local_addr=self._BUFFER_BASE,
            chunk_elements=self.chunk_entities,
            depth=self.depth,
            writeback=True,
        )
        ls = self.core.local_store
        assert ls is not None
        now = self.core.clock.now
        start = now
        for chunk in range(stream.num_chunks):
            local, count, now = stream.acquire(chunk, now)
            for index in range(count):
                address = local + index * layout.size
                entity = layout.unpack(ls.read_unchecked(address, layout.size))
                entity["x"] = float(entity["x"]) + float(entity["vx"])  # type: ignore[arg-type]
                entity["y"] = float(entity["y"]) + float(entity["vy"])  # type: ignore[arg-type]
                ls.write_unchecked(address, layout.pack(entity))
                now += self.COMPUTE_CYCLES_PER_ENTITY
            now = stream.release(chunk, now)
        now = stream.drain(now)
        self.core.clock.sync_to(now)
        return now - start


class PerObjectUpdater:
    """The mixed-type baseline: objects cannot be prefetched in bulk
    (their dynamic type, hence size, is unknown until each pointer is
    chased), so each entity costs an individual round-trip DMA."""

    COMPUTE_CYCLES_PER_ENTITY = 30
    _STAGE_ADDR = 0x800
    _TAG = 7

    def __init__(self, core: AcceleratorCore, world: GameWorldData):
        if core.dma is None or core.local_store is None:
            raise MachineError("the per-object updater needs a local store")
        self.core = core
        self.world = world

    def run(self) -> int:
        """Update every entity one DMA round-trip at a time."""
        layout = self.world.layout
        dma = self.core.dma
        ls = self.core.local_store
        assert dma is not None and ls is not None
        now = self.core.clock.now
        start = now
        for index in range(self.world.entity_count):
            address = self.world.entity_address(index)
            now = dma.get(self._TAG, self._STAGE_ADDR, address, layout.size, now)
            now = dma.wait(self._TAG, now)
            entity = layout.unpack(
                ls.read_unchecked(self._STAGE_ADDR, layout.size)
            )
            entity["x"] = float(entity["x"]) + float(entity["vx"])  # type: ignore[arg-type]
            entity["y"] = float(entity["y"]) + float(entity["vy"])  # type: ignore[arg-type]
            ls.write_unchecked(self._STAGE_ADDR, layout.pack(entity))
            now += self.COMPUTE_CYCLES_PER_ENTITY
            now = dma.put(self._TAG, self._STAGE_ADDR, address, layout.size, now)
            now = dma.wait(self._TAG, now)
        self.core.clock.sync_to(now)
        return now - start

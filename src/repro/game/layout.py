"""C-compatible struct packing into simulated memory.

The manual-intrinsics engine and the world generator need to place game
entities in simulated main memory with exactly the layout the compiled
OffloadMini code expects; this module provides a small struct-layout
calculator matching the compiler's rules (natural alignment, size
rounded up to the largest member alignment).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.machine.memory import MemorySpace

_FORMATS = {
    "i": ("<i", 4),  # int
    "I": ("<I", 4),  # uint
    "f": ("<f", 4),  # float
    "b": ("<b", 1),  # char
    "B": ("<B", 1),  # uchar/bool
}


@dataclass(frozen=True)
class FieldSpec:
    """One struct field: a name and a scalar format code (i/I/f/b/B)."""

    name: str
    fmt: str

    def __post_init__(self) -> None:
        if self.fmt not in _FORMATS:
            raise ValueError(
                f"unknown field format {self.fmt!r}; choose from "
                f"{sorted(_FORMATS)}"
            )

    @property
    def size(self) -> int:
        return _FORMATS[self.fmt][1]


class StructLayout:
    """Computes offsets and packs/unpacks struct values.

    Args:
        fields: Field specs in declaration order.
        vptr: Reserve a leading 4-byte vptr slot (polymorphic objects).
    """

    def __init__(self, fields: list[FieldSpec], vptr: bool = False):
        self.fields = list(fields)
        self.vptr = vptr
        self.offsets: dict[str, int] = {}
        offset = 4 if vptr else 0
        align = 4 if vptr else 1
        for field in self.fields:
            if field.name in self.offsets:
                raise ValueError(f"duplicate field {field.name!r}")
            field_align = field.size
            offset = (offset + field_align - 1) // field_align * field_align
            self.offsets[field.name] = offset
            offset += field.size
            align = max(align, field_align)
        self.align = align
        self.size = max(1, (offset + align - 1) // align * align)
        self._by_name = {field.name: field for field in self.fields}

    # --------------------------------------------------------------- pack

    def pack(self, values: dict[str, object], vptr_value: int = 0) -> bytes:
        """Serialise a value dict (missing fields default to zero)."""
        blob = bytearray(self.size)
        if self.vptr:
            blob[0:4] = struct.pack("<I", vptr_value)
        for field in self.fields:
            fmt, size = _FORMATS[field.fmt]
            value = values.get(field.name, 0)
            offset = self.offsets[field.name]
            blob[offset : offset + size] = struct.pack(fmt, value)
        return bytes(blob)

    def unpack(self, blob: bytes) -> dict[str, object]:
        """Deserialise; the vptr (if any) appears under ``"__vptr"``."""
        if len(blob) < self.size:
            raise ValueError(
                f"blob of {len(blob)} bytes shorter than struct size "
                f"{self.size}"
            )
        values: dict[str, object] = {}
        if self.vptr:
            values["__vptr"] = struct.unpack_from("<I", blob, 0)[0]
        for field in self.fields:
            fmt, _ = _FORMATS[field.fmt]
            values[field.name] = struct.unpack_from(
                fmt, blob, self.offsets[field.name]
            )[0]
        return values

    # ------------------------------------------------------------- memory

    def write(
        self,
        memory: MemorySpace,
        address: int,
        values: dict[str, object],
        vptr_value: int = 0,
    ) -> None:
        memory.write_unchecked(address, self.pack(values, vptr_value))

    def read(self, memory: MemorySpace, address: int) -> dict[str, object]:
        return self.unpack(memory.read_unchecked(address, self.size))

    def read_field(
        self, memory: MemorySpace, address: int, name: str
    ) -> object:
        field = self._by_name[name]
        fmt, size = _FORMATS[field.fmt]
        data = memory.read_unchecked(address + self.offsets[name], size)
        return struct.unpack(fmt, data)[0]

    def write_field(
        self, memory: MemorySpace, address: int, name: str, value: object
    ) -> None:
        field = self._by_name[name]
        fmt, _ = _FORMATS[field.fmt]
        memory.write_unchecked(
            address + self.offsets[name], struct.pack(fmt, value)
        )


#: The paper's Figure 1 ``GameEntity``: position, velocity, health and
#: a state word — 24 bytes.
GAME_ENTITY = StructLayout(
    [
        FieldSpec("x", "f"),
        FieldSpec("y", "f"),
        FieldSpec("vx", "f"),
        FieldSpec("vy", "f"),
        FieldSpec("health", "i"),
        FieldSpec("state", "i"),
    ]
)

"""Content-addressed compile cache.

``compile_program()`` on a service that fields the same programs over
and over (the ROADMAP's compile-once-run-many shape) should pay the
parse -> sema -> lower pipeline once per distinct compilation, not once
per request.  This module provides the cache ``repro.compiler.driver``
consults:

* **Key**: sha256 over canonical JSON of the *semantic inputs* — the
  source fingerprint (:func:`repro.lang.source.source_fingerprint`),
  the full target :class:`~repro.machine.config.MachineConfig`
  (including its cost model) and every
  :class:`~repro.compiler.driver.CompileOptions` field — plus the
  artifact format version.  Filenames are excluded on purpose: they
  affect diagnostics only, never generated code.
* **Value**: the serialized program artifact
  (:mod:`repro.ir.serialize`), stored on disk under
  ``<dir>/<key[:2]>/<key>.json`` with atomic writes, plus an in-memory
  text layer so a warm process never re-reads the file.
* **Safety**: ``load`` always *deserializes a fresh program object
  graph*; callers may mutate what they get back without poisoning later
  hits.  Corrupt or version-skewed entries are treated as misses and
  overwritten, never propagated.

Activation: pass a :class:`CompileCache` to ``compile_program``
explicitly, or set ``REPRO_COMPILE_CACHE=<directory>`` to switch every
``compile_program`` call in the process to a shared on-disk cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import tempfile
from typing import Optional, TYPE_CHECKING

from repro.ir.serialize import (
    ARTIFACT_VERSION,
    ArtifactError,
    program_from_json,
    program_to_json,
    to_canonical_json,
)
from repro.lang.source import source_fingerprint
from repro.machine.config import MachineConfig, resolve_target

if TYPE_CHECKING:
    from repro.compiler.driver import CompileOptions
    from repro.ir.module import IRProgram

#: Environment variable naming the process-wide cache directory.
CACHE_ENV_VAR = "REPRO_COMPILE_CACHE"


def _publish_text(path: str, text: str) -> None:
    """Atomically publish ``text`` at ``path`` (concurrent-writer safe).

    The write lands in a uniquely named temp file in the *destination
    directory* (same filesystem, so the rename cannot degrade to a
    copy) and is published with ``os.replace``.  Parallel farm workers
    racing on one key each publish a complete file and the last rename
    wins; a reader holding the old inode keeps a complete old entry.
    No reader can ever observe a torn file.
    """
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except OSError:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def compile_cache_key(
    source: str, config: "MachineConfig | str", options: "CompileOptions"
) -> str:
    """The content address of one compilation.

    ``config`` is a :class:`MachineConfig` or a registered target name
    (resolved through :func:`repro.machine.config.resolve_target`).
    Two calls share a key exactly when nothing that can influence the
    generated artifact differs: same (fingerprinted) source text, same
    target machine description down to individual cycle costs and
    scheduler parameters (every ``MachineConfig`` field is hashed, so
    distinct registry targets can never collide in one cache
    directory), same compiler options, same artifact format version.
    """
    config = resolve_target(config, source="compile_cache_key")
    material = to_canonical_json(
        {
            "artifact_version": ARTIFACT_VERSION,
            "source": source_fingerprint(source),
            "config": dataclasses.asdict(config),
            "options": dataclasses.asdict(options),
        }
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`CompileCache` instance.

    Program artifacts and auxiliary text entries (generated engine
    source, see :meth:`CompileCache.store_text`) are counted
    separately so artifact-cache assertions stay exact."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions_bad: int = 0  # corrupt/version-skewed entries discarded
    aux_hits: int = 0
    aux_misses: int = 0
    aux_stores: int = 0


class CompileCache:
    """On-disk, content-addressed store of compiled program artifacts.

    Args:
        directory: Cache root; created on first store.  Safe to share
            between processes — writes are atomic renames and readers
            only ever see complete artifacts.
    """

    def __init__(self, directory: str):
        self.directory = directory
        self.stats = CacheStats()
        #: key -> artifact JSON text; avoids disk reads on a warm
        #: process while still deserializing fresh objects per load.
        self._text: dict[str, str] = {}
        #: (key, kind) -> auxiliary text entries (e.g. generated
        #: engine source keyed alongside the artifact shards).
        self._aux: dict[tuple[str, str], str] = {}

    # -------------------------------------------------------------- paths

    def path_for(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def aux_path(self, key: str, kind: str) -> str:
        """Path of the auxiliary ``kind`` entry stored alongside ``key``
        (e.g. kind ``"codegen.py"`` -> ``<dir>/<key[:2]>/<key>.codegen.py``)."""
        return os.path.join(self.directory, key[:2], f"{key}.{kind}")

    def __contains__(self, key: str) -> bool:
        return key in self._text or os.path.exists(self.path_for(key))

    # ---------------------------------------------------------------- API

    def load(self, key: str) -> Optional["IRProgram"]:
        """A fresh program for ``key``, or None on a miss."""
        text = self._text.get(key)
        if text is None:
            path = self.path_for(key)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError:
                self.stats.misses += 1
                return None
        try:
            program = program_from_json(text)
            program.validate()
        except (ArtifactError, ValueError, KeyError, TypeError):
            # Corrupt, truncated or version-skewed entry: drop it and
            # recompile rather than surfacing a broken program.
            self._text.pop(key, None)
            self._discard(key)
            self.stats.evictions_bad += 1
            self.stats.misses += 1
            return None
        self._text[key] = text
        self.stats.hits += 1
        return program

    def store(self, key: str, program: "IRProgram") -> None:
        """Persist ``program`` under ``key`` (atomic, last-writer-wins)."""
        text = program_to_json(program)
        _publish_text(self.path_for(key), text + "\n")
        self._text[key] = text
        self.stats.stores += 1

    def load_text(self, key: str, kind: str) -> Optional[str]:
        """The auxiliary ``kind`` text stored under ``key``, or None.

        Unlike :meth:`load` there is no validation layer here — callers
        version their payloads through the key itself (the codegen
        engine folds :data:`repro.vm.codegen.CODEGEN_VERSION` into it),
        so a hit is always usable as-is.
        """
        text = self._aux.get((key, kind))
        if text is None:
            try:
                with open(self.aux_path(key, kind), "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError:
                self.stats.aux_misses += 1
                return None
            self._aux[(key, kind)] = text
        self.stats.aux_hits += 1
        return text

    def store_text(self, key: str, text: str, kind: str) -> None:
        """Persist auxiliary text under ``key`` (atomic, like :meth:`store`)."""
        _publish_text(self.aux_path(key, kind), text)
        self._aux[(key, kind)] = text
        self.stats.aux_stores += 1

    def _discard(self, key: str) -> None:
        try:
            os.unlink(self.path_for(key))
        except OSError:
            pass

    def clear(self) -> None:
        """Drop every entry (in memory and on disk), auxiliary text
        entries included."""
        self._text.clear()
        self._aux.clear()
        if not os.path.isdir(self.directory):
            return
        for shard in os.listdir(self.directory):
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                # ``.tmp`` files are droppings from writers killed
                # mid-publish (e.g. a farm worker hit by a timeout);
                # they were never visible to readers but should not
                # accumulate.
                if (
                    name.endswith(".json")
                    or name.endswith(".codegen.py")
                    or name.endswith(".tmp")
                ):
                    try:
                        os.unlink(os.path.join(shard_dir, name))
                    except OSError:
                        pass


#: Process-wide caches keyed by directory, so every ``compile_program``
#: call under one ``REPRO_COMPILE_CACHE`` shares the in-memory layer.
_CACHES: dict[str, CompileCache] = {}


def cache_at(directory: str) -> CompileCache:
    """The shared :class:`CompileCache` for ``directory``."""
    directory = os.path.abspath(directory)
    cache = _CACHES.get(directory)
    if cache is None:
        cache = _CACHES[directory] = CompileCache(directory)
    return cache


def resolve_cache(
    explicit: Optional[CompileCache] = None,
) -> Optional[CompileCache]:
    """The cache ``compile_program`` should use, if any.

    An explicit cache wins; otherwise a non-empty ``REPRO_COMPILE_CACHE``
    selects the shared cache for that directory; otherwise caching is
    off.
    """
    if explicit is not None:
        return explicit
    directory = os.environ.get(CACHE_ENV_VAR, "").strip()
    if not directory:
        return None
    return cache_at(directory)

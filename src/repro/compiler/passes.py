"""The pass-manager compilation pipeline.

The driver used to be one monolithic ``Compiler.compile()``; this module
replaces it with an explicit registry of named, ordered passes:

    parse -> sema -> layout -> domains -> offload-meta -> lower-host
          -> drain-duplicates -> optimize -> validate

Each pass is a plain function over a shared :class:`PassContext`; the
:class:`PassManager` runs them in order, records per-pass wall-clock
timings, and can capture a human-readable dump after any pass (the
``--dump-after=<pass>`` hook in ``repro.tools.run``).  Future PRs extend
the pipeline by registering passes before/after existing ones instead of
editing the driver.

The per-offload work is deliberately split in two: ``domains`` builds
the Figure 3 outer/inner tables (queueing accelerator duplicates on the
worklist as a side effect), and ``offload-meta`` then assembles the
:class:`~repro.ir.module.OffloadMeta` records.  ``drain-duplicates``
processes the worklist FIFO, so lowering one duplicate may enqueue
further duplicates — the paper's automatic call-graph duplication.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.lang.parser import parse_program
from repro.lang.sema import analyze
from repro.machine.config import MachineConfig
from repro.obs.trace import EV_PASS, NULL_RECORDER


class PassContext:
    """Everything the passes read and write while compiling one program.

    Front-end passes populate ``ast_program`` and ``info``; the
    ``layout`` pass creates the :class:`~repro.compiler.driver.Compiler`
    (which owns the worklist and the growing
    :class:`~repro.ir.module.IRProgram`); later passes refine
    ``compiler.program``, which :attr:`program` exposes once available.
    """

    def __init__(
        self,
        source: str,
        config: MachineConfig,
        options,  # CompileOptions; untyped to avoid a driver import cycle
        filename: str = "<input>",
    ):
        self.source = source
        self.config = config
        self.options = options
        self.filename = filename
        self.ast_program = None
        self.info = None
        self.compiler = None
        #: offload_id -> DomainTable, built by the ``domains`` pass.
        self.domain_tables: dict[int, object] = {}
        #: (pass name, seconds, ran) per executed pipeline slot.
        self.timings: list[PassTiming] = []
        #: pass name -> dump text, for passes named in ``dump_after``.
        self.dumps: dict[str, str] = {}
        #: The trace recorder the pipeline was run with (``analyze``
        #: forwards it so analysis spans land next to pass spans).
        self.trace = NULL_RECORDER
        #: Findings from the ``analyze`` pass (when options.analyze).
        self.findings: list = []
        #: Per-analysis timings from the ``analyze`` pass.
        self.analysis_timings: list = []

    @property
    def program(self):
        """The IR program under construction (after the layout pass)."""
        if self.compiler is None:
            return None
        return self.compiler.program


@dataclass(frozen=True)
class PassTiming:
    """Wall-clock cost of one pass in one compilation."""

    name: str
    seconds: float
    ran: bool = True


@dataclass(frozen=True)
class Pass:
    """One named pipeline stage.

    Attributes:
        name: Stable identifier (``--dump-after`` operand, registry key).
        run: The pass body.
        description: One line for ``--help`` and docs.
        dump: Renders the pipeline state after this pass (None: a dump
            request falls back to a generic context summary).
        skip: When provided and true for a context, the pass is recorded
            as skipped instead of run (e.g. ``optimize`` without ``-O``).
    """

    name: str
    run: Callable[[PassContext], None]
    description: str = ""
    dump: Optional[Callable[[PassContext], str]] = None
    skip: Optional[Callable[[PassContext], bool]] = None


class PassManager:
    """An ordered, name-addressable registry of compilation passes."""

    def __init__(self, passes: Optional[list[Pass]] = None):
        self._passes: list[Pass] = list(passes) if passes else []
        names = [p.name for p in self._passes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pass names in {names}")

    # ----------------------------------------------------------- registry

    @property
    def passes(self) -> tuple[Pass, ...]:
        return tuple(self._passes)

    def names(self) -> list[str]:
        return [p.name for p in self._passes]

    def get(self, name: str) -> Pass:
        for p in self._passes:
            if p.name == name:
                return p
        raise KeyError(f"no pass named {name!r}; have {self.names()}")

    def _index(self, name: str) -> int:
        for index, p in enumerate(self._passes):
            if p.name == name:
                return index
        raise KeyError(f"no pass named {name!r}; have {self.names()}")

    def register(
        self,
        pass_: Pass,
        *,
        before: Optional[str] = None,
        after: Optional[str] = None,
    ) -> None:
        """Insert a pass (at the end, or anchored to an existing one)."""
        if before is not None and after is not None:
            raise ValueError("give at most one of before/after")
        if any(p.name == pass_.name for p in self._passes):
            raise ValueError(f"pass {pass_.name!r} is already registered")
        if before is not None:
            self._passes.insert(self._index(before), pass_)
        elif after is not None:
            self._passes.insert(self._index(after) + 1, pass_)
        else:
            self._passes.append(pass_)

    def replace(self, name: str, pass_: Pass) -> None:
        """Swap the implementation of an existing pipeline slot."""
        self._passes[self._index(name)] = pass_

    def remove(self, name: str) -> Pass:
        return self._passes.pop(self._index(name))

    # ---------------------------------------------------------- execution

    def run(
        self,
        source: str,
        config: MachineConfig,
        options,
        filename: str = "<input>",
        *,
        stop_after: Optional[str] = None,
        dump_after: tuple[str, ...] = (),
        trace=NULL_RECORDER,
    ) -> PassContext:
        """Run the pipeline over one source; returns the final context.

        ``stop_after`` ends the pipeline early (debugging: the program
        may be incomplete).  ``dump_after`` captures the named passes'
        dumps into ``ctx.dumps``.  ``trace`` receives one ``pass.span``
        event per pipeline slot on the ``compile`` track, stamped with
        *wall-clock* microseconds (compilation has no simulated clock) —
        keep compile spans out of recorders whose exports must be
        deterministic.
        """
        for name in (stop_after, *dump_after):
            if name is not None:
                self.get(name)  # raise early on typos
        ctx = PassContext(source, config, options, filename)
        ctx.trace = trace
        elapsed_us = 0
        for p in self._passes:
            if p.skip is not None and p.skip(ctx):
                ctx.timings.append(PassTiming(p.name, 0.0, ran=False))
                if trace.enabled:
                    trace.emit(elapsed_us, "compile", EV_PASS, (p.name, 0, 0))
            else:
                start = time.perf_counter()
                p.run(ctx)
                seconds = time.perf_counter() - start
                ctx.timings.append(PassTiming(p.name, seconds))
                if trace.enabled:
                    duration_us = int(seconds * 1_000_000)
                    trace.emit(
                        elapsed_us, "compile", EV_PASS,
                        (p.name, duration_us, 1),
                    )
                    elapsed_us += duration_us
            if p.name in dump_after:
                ctx.dumps[p.name] = (
                    p.dump(ctx) if p.dump is not None else _generic_dump(ctx)
                )
            if p.name == stop_after:
                break
        return ctx

    @classmethod
    def default(cls) -> "PassManager":
        """The standard nine-pass pipeline (fresh, safely mutable)."""
        return cls(list(_DEFAULT_PASSES))


def format_timings(timings: list[PassTiming]) -> str:
    """Render per-pass timings as an aligned table (``--time-passes``)."""
    total = sum(t.seconds for t in timings)
    lines = ["pass                 seconds      share"]
    for t in timings:
        if not t.ran:
            lines.append(f"{t.name:20s}        (skipped)")
            continue
        share = (t.seconds / total * 100.0) if total > 0 else 0.0
        lines.append(f"{t.name:20s} {t.seconds:10.6f} {share:9.1f}%")
    lines.append(f"{'total':20s} {total:10.6f}")
    return "\n".join(lines)


# ------------------------------------------------------------ pass bodies


def _pass_parse(ctx: PassContext) -> None:
    ctx.ast_program = parse_program(ctx.source, ctx.filename)


def _dump_parse(ctx: PassContext) -> str:
    program = ctx.ast_program
    lines = [f"; parsed {ctx.filename}"]
    for decl in program.classes:
        lines.append(f"class {decl.name}")
    for decl in program.globals:
        lines.append(f"global {decl.name}")
    for decl in program.functions:
        lines.append(f"func {decl.name}")
    return "\n".join(lines)


def _pass_sema(ctx: PassContext) -> None:
    ctx.info = analyze(ctx.ast_program)


def _dump_sema(ctx: PassContext) -> str:
    info = ctx.info
    lines = [
        f"; sema: {len(info.functions)} function(s), "
        f"{len(info.classes)} class(es), {len(info.globals)} global(s), "
        f"{len(info.offloads)} offload(s)"
    ]
    for qname in sorted(info.functions):
        lines.append(f"func {qname}")
    for offload in info.offloads:
        lines.append(
            f"offload #{offload.offload_id} "
            f"domain={len(offload.domain)} cache={offload.cache_kind}"
        )
    return "\n".join(lines)


def _pass_layout(ctx: PassContext) -> None:
    from repro.compiler.driver import Compiler
    from repro.compiler.layout import apply_layout

    ctx.compiler = Compiler(ctx.info, ctx.config, ctx.options)
    apply_layout(ctx.compiler.program, ctx.compiler.layout)


def _dump_layout(ctx: PassContext) -> str:
    program = ctx.program
    lines = [f"; layout for {program.target_name}"]
    for name, slot in sorted(program.globals.items()):
        lines.append(f"global {name} @ {slot.address:#x} ({slot.size} bytes)")
    for class_name, address in sorted(program.vtables.items()):
        lines.append(f"vtable {class_name} @ {address:#x}")
    lines.append(f"data_end {program.data_end:#x}")
    return "\n".join(lines)


def _pass_domains(ctx: PassContext) -> None:
    from repro.compiler import domains as domains_mod

    compiler = ctx.compiler
    for offload in compiler.info.offloads:
        compiler.request_offload_entry(offload)
        table = domains_mod.build_domain_table(compiler, offload)
        if ctx.options.demand_load and not ctx.config.shared_memory:
            domains_mod.add_demand_entries(compiler, offload, table)
        ctx.domain_tables[offload.offload_id] = table


def _dump_domains(ctx: PassContext) -> str:
    lines = []
    for offload_id in sorted(ctx.domain_tables):
        table = ctx.domain_tables[offload_id]
        lines.append(f"offload #{offload_id}: {len(table)} outer entr(ies)")
        for address, name, row in zip(
            table.outer, table.method_names, table.inner
        ):
            ids = ", ".join(
                e.duplicate_id + ("?" if e.demand else "") for e in row
            )
            lines.append(f"  {address:#x} {name} [{ids}]")
    return "\n".join(lines) or "; no offloads"


def _pass_offload_meta(ctx: PassContext) -> None:
    from repro.compiler.driver import offload_entry_name
    from repro.ir.module import OffloadMeta
    from repro.runtime.cachekinds import NO_CACHE

    compiler = ctx.compiler
    for offload in compiler.info.offloads:
        cache_kind = offload.cache_kind or ctx.options.default_cache
        compiler.program.offload_meta[offload.offload_id] = OffloadMeta(
            offload_id=offload.offload_id,
            entry=offload_entry_name(offload.offload_id),
            cache_kind=None if cache_kind == NO_CACHE else cache_kind,
            domain=ctx.domain_tables[offload.offload_id],
            annotation_count=len(offload.domain),
            capture_names=[s.name for s in offload.captures],
        )


def _dump_offload_meta(ctx: PassContext) -> str:
    lines = []
    for meta in ctx.program.offload_meta.values():
        lines.append(
            f"offload #{meta.offload_id} entry={meta.entry} "
            f"cache={meta.cache_kind} domain={len(meta.domain)} "
            f"captures={meta.capture_names}"
        )
    return "\n".join(lines) or "; no offloads"


def _pass_lower_host(ctx: PassContext) -> None:
    ctx.compiler.lower_host_instances()


def _dump_host_ir(ctx: PassContext) -> str:
    from repro.ir.printer import format_function

    return "\n\n".join(
        format_function(fn)
        for fn in ctx.program.host_functions()
    )


def _pass_drain_duplicates(ctx: PassContext) -> None:
    ctx.compiler.drain_worklist()


def _dump_accel_ir(ctx: PassContext) -> str:
    from repro.ir.printer import format_function

    return "\n\n".join(
        format_function(fn)
        for fn in ctx.program.accel_functions()
    ) or "; no accelerator functions"


def _pass_optimize(ctx: PassContext) -> None:
    from repro.compiler.optimize import optimize_program

    optimize_program(ctx.program.functions)


def _skip_optimize(ctx: PassContext) -> bool:
    return not ctx.options.optimize


def _pass_validate(ctx: PassContext) -> None:
    ctx.program.validate()


def _pass_analyze(ctx: PassContext) -> None:
    from repro.analysis.runner import run_analyses

    result = run_analyses(
        ctx.program,
        ctx.config,
        info=ctx.info,
        file=ctx.filename,
        trace=ctx.trace,
    )
    ctx.findings = result.findings
    ctx.analysis_timings = result.timings


def _skip_analyze(ctx: PassContext) -> bool:
    return not getattr(ctx.options, "analyze", False)


def _dump_analyze(ctx: PassContext) -> str:
    return "\n".join(f.render() for f in ctx.findings) or "; no findings"


def _dump_program(ctx: PassContext) -> str:
    from repro.ir.printer import format_program

    return format_program(ctx.program)


def _generic_dump(ctx: PassContext) -> str:
    if ctx.program is not None:
        return _dump_program(ctx)
    return f"; context for {ctx.filename} (no IR program yet)"


_DEFAULT_PASSES: tuple[Pass, ...] = (
    Pass("parse", _pass_parse, "source text -> AST", _dump_parse),
    Pass("sema", _pass_sema, "type/space checking -> SemanticInfo", _dump_sema),
    Pass(
        "layout",
        _pass_layout,
        "place globals/vtables, assign function ids",
        _dump_layout,
    ),
    Pass(
        "domains",
        _pass_domains,
        "build Figure 3 domain tables, queue duplicates",
        _dump_domains,
    ),
    Pass(
        "offload-meta",
        _pass_offload_meta,
        "assemble per-offload metadata records",
        _dump_offload_meta,
    ),
    Pass("lower-host", _pass_lower_host, "lower host function instances", _dump_host_ir),
    Pass(
        "drain-duplicates",
        _pass_drain_duplicates,
        "lower offload entries and accelerator duplicates (worklist)",
        _dump_accel_ir,
    ),
    Pass(
        "optimize",
        _pass_optimize,
        "IR optimisation pipeline (when CompileOptions.optimize)",
        _dump_program,
        skip=_skip_optimize,
    ),
    Pass("validate", _pass_validate, "structural sanity checks", _dump_program),
    Pass(
        "analyze",
        _pass_analyze,
        "whole-program static analyses (when CompileOptions.analyze)",
        _dump_analyze,
        skip=_skip_analyze,
    ),
)

#: Names of the standard pipeline, in order (argparse choices etc.).
DEFAULT_PASS_NAMES: tuple[str, ...] = tuple(p.name for p in _DEFAULT_PASSES)

"""Section 5: indexed (word) addressing — legality and classification.

On a word-addressed target every pointer expression carries an *address
kind*:

* ``"word"`` — the address is a whole number of words (the default for
  unannotated pointers, which may therefore only point to word-aligned
  data).
* an ``int`` k (0 <= k < word_size) — a byte address that is a known
  word-aligned base plus the compile-time constant k; dereferences
  compile to a word load plus a constant-offset extract (cheap).
* ``"dynamic"`` — a byte address with an unknown sub-word part; only
  pointers explicitly declared ``__byte`` may hold these, and their
  dereferences pay the variable extract cost.

The functions here implement the paper's rules:

* ``p + 4`` (word size 4) keeps a word pointer word-addressed;
* ``p + 1`` produces a constant byte-addressed value, assignable to a
  ``__byte`` pointer but **not** to a plain pointer;
* ``p + x`` with variable ``x`` (and a non-word-multiple element size)
  is a **compile-time error** on a word-addressed target — the
  programmer must restructure;
* byte-addressed values never flow into word-addressed pointers.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import CompileError, SourceSpan
from repro.lang.types import AddrUnit, PointerType

AddrKind = Union[str, int]  # "word" | "dynamic" | constant sub-offset

WORD = "word"
DYNAMIC = "dynamic"


def declared_unit(pointer: PointerType, word_addressed_target: bool) -> AddrUnit:
    """Resolve a pointer's DEFAULT addressing for the current target."""
    if pointer.addressing is AddrUnit.DEFAULT:
        return AddrUnit.WORD if word_addressed_target else AddrUnit.BYTE
    return pointer.addressing


def initial_kind(pointer: PointerType, word_addressed_target: bool) -> AddrKind:
    """Address kind of a value freshly typed as ``pointer``.

    ``__byte`` pointer *variables* are conservatively dynamic (their
    constant offset, if any, is not tracked through storage).
    """
    if not word_addressed_target:
        return WORD  # address kinds are inert on byte-addressed targets
    if declared_unit(pointer, True) is AddrUnit.BYTE:
        return DYNAMIC
    return WORD


def add_offset(
    base: AddrKind,
    byte_delta: Optional[int],
    word_size: int,
    span: Optional[SourceSpan],
    context: str,
) -> AddrKind:
    """Address kind after ``base + byte_delta`` bytes.

    ``byte_delta`` None means the delta is a run-time value whose
    sub-word remainder is unknown (variable index times a
    non-word-multiple element size).
    """
    if base == DYNAMIC:
        return DYNAMIC
    if byte_delta is None:
        # A word-kind pointer plus an unpredictable byte delta: the
        # paper's compiler rejects this outright.
        raise CompileError.single(
            "E-word-arith",
            f"{context}: pointer arithmetic with a variable offset that is "
            f"not a multiple of the word size ({word_size}) cannot be "
            f"compiled efficiently on a word-addressed target; restructure "
            f"the loop or declare the pointer __byte",
            span,
        )
    if base == WORD:
        remainder = byte_delta % word_size
        return WORD if remainder == 0 else remainder
    assert isinstance(base, int)
    remainder = (base + byte_delta) % word_size
    return WORD if remainder == 0 else remainder


def scaled_delta(
    element_size: int, const_index: Optional[int], word_size: int
) -> Optional[int]:
    """Byte delta of ``ptr + index`` when classifiable, else None.

    A constant index gives an exact delta.  A variable index still gives
    a *word-kind-preserving* delta when the element size is a multiple
    of the word size (every step lands on a word boundary) — returned as
    0 since only the remainder matters.
    """
    if const_index is not None:
        return element_size * const_index
    if element_size % word_size == 0:
        return 0
    return None


def check_pointer_flow(
    dest: PointerType,
    value_kind: AddrKind,
    word_addressed_target: bool,
    span: Optional[SourceSpan],
    context: str,
) -> None:
    """Enforce the assignment rule: byte values cannot flow into
    word-addressed pointers (``char *q = p + 1;`` is illegal; the
    ``__byte``-qualified form is the legal spelling)."""
    if not word_addressed_target:
        return
    if declared_unit(dest, True) is AddrUnit.BYTE:
        return  # word -> byte widening is always permitted
    if value_kind != WORD:
        raise CompileError.single(
            "E-word-assign",
            f"{context}: a byte-addressed pointer value cannot be assigned "
            f"to a word-addressed pointer; declare the destination with "
            f"__byte or keep offsets word-aligned",
            span,
        )


def deref_plan(
    kind: AddrKind, size: int, word_size: int
) -> str:
    """How to compile a dereference of ``size`` bytes at kind ``kind``.

    Returns one of:

    * ``"direct"`` — word-aligned, whole-word-multiple access; a plain
      load/store.
    * ``"const-extract"`` — word load plus constant-offset extract
      (the efficient hybrid path the paper advertises).
    * ``"dynamic-extract"`` — word load plus variable-offset extract
      (the expensive all-byte-pointers fallback).
    """
    if kind == WORD and size % word_size == 0:
        return "direct"
    if kind == DYNAMIC:
        return "dynamic-extract"
    if kind == WORD:
        # Word-aligned but sub-word-sized access (e.g. first char of a
        # word): constant extract at offset 0.
        return "const-extract"
    assert isinstance(kind, int)
    if size > word_size - kind:
        # The access straddles a word boundary; treat as dynamic (two
        # loads in a real compiler — costed the same here).
        return "dynamic-extract"
    return "const-extract"

"""Static data layout: globals, vtables, host function ids.

Main-memory map produced here::

    0x0000          null guard (never written)
    0x0040          vtables, one 4-byte slot per virtual method
    ...             globals, naturally aligned
    data_end        first free byte (heap/stack live above)

Host function ids are small unique integers standing in for host code
addresses; they are what vtable slots contain and what the outer domain
matches against.
"""

from __future__ import annotations

import struct

from repro.lang.sema import SemanticInfo
from repro.lang.types import ArrayType, ClassType, ScalarType, Type
from repro.ir.module import GlobalSlot, IRProgram

#: Base of the static data area (low addresses trap null derefs).
DATA_BASE = 0x40

#: First host function id; spaced by 4 to resemble code addresses.
FIRST_FUNCTION_ID = 0x10000


class LayoutResult:
    """Addresses and images computed by :func:`compute_layout`."""

    def __init__(self) -> None:
        self.globals: dict[str, GlobalSlot] = {}
        self.vtables: dict[str, int] = {}
        self.function_ids: dict[int, str] = {}  # fid -> host function name
        self.fid_by_name: dict[str, int] = {}
        self.init_image: list[tuple[int, bytes]] = []
        self.data_end = DATA_BASE


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def assign_function_ids(info: SemanticInfo, layout: LayoutResult) -> None:
    """Give every function and method a unique simulated host address."""
    next_id = FIRST_FUNCTION_ID
    for qname in sorted(info.functions):
        layout.function_ids[next_id] = qname
        layout.fid_by_name[qname] = next_id
        next_id += 4


def build_vtables(
    info: SemanticInfo, layout: LayoutResult, word_align: int
) -> None:
    """Allocate and fill one vtable per class with virtual methods."""
    cursor = layout.data_end
    for name in sorted(info.classes):
        class_type = info.classes[name]
        if not class_type.vtable:
            continue
        cursor = _align(cursor, max(4, word_align))
        layout.vtables[name] = cursor
        slots = b"".join(
            struct.pack(
                "<I", layout.fid_by_name[method.qualified_name]
            )
            for method in class_type.vtable
        )
        layout.init_image.append((cursor, slots))
        cursor += len(slots)
    layout.data_end = cursor


def _vptr_writes(
    global_addr: int, global_type: Type, layout: LayoutResult
) -> list[tuple[int, bytes]]:
    """Initial vptr stores for a global of class (or array-of-class) type."""
    writes: list[tuple[int, bytes]] = []
    if isinstance(global_type, ClassType) and global_type.has_vptr:
        vtable_addr = layout.vtables[global_type.name]
        writes.append((global_addr, struct.pack("<I", vtable_addr)))
    elif isinstance(global_type, ArrayType):
        element = global_type.element
        for index in range(global_type.count):
            writes.extend(
                _vptr_writes(
                    global_addr + index * element.size(), element, layout
                )
            )
    return writes


def place_globals(
    info: SemanticInfo, layout: LayoutResult, word_align: int
) -> None:
    """Assign each global an address; record scalar initial values and
    vptr initialisation for polymorphic objects."""
    cursor = layout.data_end
    for decl in info.globals:
        symbol = decl.symbol
        assert symbol is not None
        global_type = symbol.type
        alignment = max(1, global_type.align(), word_align)
        cursor = _align(cursor, alignment)
        slot = GlobalSlot(decl.name, cursor, global_type.size())
        layout.globals[decl.name] = slot
        init_value = getattr(decl, "folded_init", 0)
        if isinstance(global_type, ScalarType) and init_value:
            if global_type.is_float_type:
                layout.init_image.append(
                    (cursor, struct.pack("<f", float(init_value)))
                )
            else:
                mask = (1 << (8 * global_type.size())) - 1
                layout.init_image.append(
                    (
                        cursor,
                        (int(init_value) & mask).to_bytes(
                            global_type.size(), "little"
                        ),
                    )
                )
        layout.init_image.extend(_vptr_writes(cursor, global_type, layout))
        cursor += global_type.size()
    layout.data_end = _align(cursor, 16)


def compute_layout(info: SemanticInfo, word_align: int = 1) -> LayoutResult:
    """Run all layout passes; ``word_align`` is the machine's addressing
    granularity (so word-addressed targets keep data word-aligned)."""
    layout = LayoutResult()
    assign_function_ids(info, layout)
    build_vtables(info, layout, word_align)
    place_globals(info, layout, word_align)
    return layout


def apply_layout(program: IRProgram, layout: LayoutResult) -> None:
    """Copy layout results into the IR program container."""
    program.globals = dict(layout.globals)
    program.vtables = dict(layout.vtables)
    program.function_ids = dict(layout.function_ids)
    program.init_image = list(layout.init_image)
    program.data_end = layout.data_end


def vptr_writes_for(
    address: int, value_type: Type, layout: LayoutResult
) -> list[tuple[int, bytes]]:
    """Public helper for tests/tools: vptr image for an object placed at
    ``address`` (used by the game substrate when packing worlds)."""
    return _vptr_writes(address, value_type, layout)

"""IR optimisation passes.

The lowering stage emits straightforward code (one Const per literal,
a Move per variable read).  These passes clean that up:

* **constant folding / propagation** — per basic block: registers with
  known constant values are folded into dependent ALU operations, and
  conditional jumps on known conditions become unconditional;
* **copy propagation** — ``Move`` chains are short-circuited;
* **dead code elimination** — pure instructions (ALU, address
  computation, loads) whose results are never used are removed.

All passes preserve program semantics exactly; they only reduce the
instruction count, and therefore the simulated cycle cost — which is
what an optimiser is for.  Enable with
``CompileOptions(optimize=True)``.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.instructions import (
    BinOp,
    CJump,
    Call,
    Const,
    Copy,
    DomainCall,
    Extract,
    FrameAddr,
    GlobalAddr,
    ICall,
    Insert,
    Instr,
    Intrinsic,
    Jump,
    Load,
    Move,
    OffloadJoin,
    OffloadLaunch,
    Ret,
    Store,
    UnOp,
)
from repro.ir.module import IRFunction

_U32 = 0xFFFFFFFF


def _wrap_signed(value: int) -> int:
    return ((value + 0x80000000) & _U32) - 0x80000000


# ---------------------------------------------------------------------------
# Instruction introspection
# ---------------------------------------------------------------------------


def instr_uses(instr: Instr) -> list[int]:
    """Registers read by the instruction."""
    if isinstance(instr, Move):
        return [instr.src]
    if isinstance(instr, BinOp):
        return [instr.a, instr.b]
    if isinstance(instr, UnOp):
        return [instr.a]
    if isinstance(instr, Load):
        return [instr.addr]
    if isinstance(instr, Store):
        return [instr.addr, instr.src]
    if isinstance(instr, Copy):
        regs = [instr.dst_addr, instr.src_addr]
        if instr.size_reg is not None:
            regs.append(instr.size_reg)
        return regs
    if isinstance(instr, Extract):
        regs = [instr.word]
        if instr.const_offset is None:
            regs.append(instr.offset)
        return regs
    if isinstance(instr, Insert):
        regs = [instr.word, instr.value]
        if instr.const_offset is None:
            regs.append(instr.offset)
        return regs
    if isinstance(instr, CJump):
        return [instr.cond]
    if isinstance(instr, (Call, Intrinsic, OffloadLaunch)):
        return list(instr.args)
    if isinstance(instr, ICall):
        return [instr.func_id, *instr.args]
    if isinstance(instr, DomainCall):
        return [instr.func_id, *instr.args]
    if isinstance(instr, OffloadJoin):
        return [instr.handle]
    if isinstance(instr, Ret):
        return [instr.src] if instr.src is not None else []
    return []


def instr_def(instr: Instr) -> Optional[int]:
    """The register written by the instruction, if any."""
    dst = getattr(instr, "dst", None)
    return dst if isinstance(dst, int) else None


def is_pure(instr: Instr) -> bool:
    """True when the instruction has no effect besides its result.

    Loads are pure here: removing a load whose value is unused is a
    legitimate optimisation (it also removes the access cost, which is
    the point).
    """
    return isinstance(
        instr, (Const, Move, BinOp, UnOp, FrameAddr, GlobalAddr, Load, Extract)
    )


# ---------------------------------------------------------------------------
# Constant folding and copy propagation (per basic block)
# ---------------------------------------------------------------------------


def _fold_binop(instr: BinOp, a: object, b: object) -> Optional[object]:
    """Evaluate a BinOp over known constants; None if not foldable."""
    try:
        if instr.op in ("==", "!=", "<", "<=", ">", ">="):
            table = {
                "==": a == b, "!=": a != b, "<": a < b,  # type: ignore[operator]
                "<=": a <= b, ">": a > b, ">=": a >= b,  # type: ignore[operator]
            }
            return 1 if table[instr.op] else 0
        if instr.float_op:
            fa, fb = float(a), float(b)  # type: ignore[arg-type]
            ops = {"+": fa + fb, "-": fa - fb, "*": fa * fb}
            if instr.op == "/":
                if fb == 0.0:
                    return None
                return fa / fb
            return ops.get(instr.op)
        ia, ib = int(a), int(b)  # type: ignore[arg-type]
        if instr.op == "+":
            result = ia + ib
        elif instr.op == "-":
            result = ia - ib
        elif instr.op == "*":
            result = ia * ib
        elif instr.op == "&":
            result = ia & ib
        elif instr.op == "|":
            result = ia | ib
        elif instr.op == "^":
            result = ia ^ ib
        elif instr.op == "<<":
            result = ia << (ib & 31)
        else:
            return None  # division and shifts right: leave to runtime
        if instr.signed:
            return _wrap_signed(result)
        return result & _U32
    except TypeError:
        return None


def fold_constants(function: IRFunction) -> int:
    """Propagate constants/copies inside basic blocks; returns the
    number of instructions rewritten."""
    block_starts = set(function.labels.values())
    constants: dict[int, object] = {}
    copies: dict[int, int] = {}
    changed = 0

    def invalidate(reg: int) -> None:
        constants.pop(reg, None)
        copies.pop(reg, None)
        for key in [k for k, v in copies.items() if v == reg]:
            copies.pop(key)

    def canonical(reg: int) -> int:
        seen = set()
        while reg in copies and reg not in seen:
            seen.add(reg)
            reg = copies[reg]
        return reg

    for index, instr in enumerate(function.code):
        if index in block_starts:
            constants.clear()
            copies.clear()
        # Rewrite register operands through known copies.
        if isinstance(instr, Move):
            source = canonical(instr.src)
            if source != instr.src:
                instr.src = source
                changed += 1
        elif isinstance(instr, BinOp):
            a, b = canonical(instr.a), canonical(instr.b)
            if (a, b) != (instr.a, instr.b):
                instr.a, instr.b = a, b
                changed += 1
            if a in constants and b in constants:
                folded = _fold_binop(instr, constants[a], constants[b])
                if folded is not None:
                    function.code[index] = Const(
                        dst=instr.dst, value=folded, comment="folded"
                    )
                    instr = function.code[index]
                    changed += 1
        elif isinstance(instr, UnOp):
            a = canonical(instr.a)
            if a != instr.a:
                instr.a = a
                changed += 1
            if a in constants and instr.op in ("-", "!", "~"):
                value = constants[a]
                try:
                    if instr.op == "-":
                        folded: object = (
                            -float(value) if instr.float_op  # type: ignore[arg-type]
                            else _wrap_signed(-int(value))  # type: ignore[arg-type]
                        )
                    elif instr.op == "!":
                        folded = 0 if value else 1
                    else:
                        folded = _wrap_signed(~int(value))  # type: ignore[arg-type]
                    function.code[index] = Const(
                        dst=instr.dst, value=folded, comment="folded"
                    )
                    instr = function.code[index]
                    changed += 1
                except TypeError:
                    pass
        elif isinstance(instr, CJump):
            cond = canonical(instr.cond)
            if cond != instr.cond:
                instr.cond = cond
                changed += 1
            if cond in constants:
                target = (
                    instr.then_label if constants[cond] else instr.else_label
                )
                function.code[index] = Jump(label=target, comment="folded cjump")
                instr = function.code[index]
                changed += 1
        else:
            # Explicit per-type operand rewrite: only fields that hold
            # register numbers may be redirected through known copies.
            register_fields: tuple[str, ...] = ()
            if isinstance(instr, Load):
                register_fields = ("addr",)
            elif isinstance(instr, Store):
                register_fields = ("addr", "src")
            elif isinstance(instr, Copy):
                register_fields = ("dst_addr", "src_addr")
                if instr.size_reg is not None:
                    register_fields += ("size_reg",)
            elif isinstance(instr, Extract):
                register_fields = ("word",)
                if instr.const_offset is None:
                    register_fields += ("offset",)
            elif isinstance(instr, Insert):
                register_fields = ("word", "value")
                if instr.const_offset is None:
                    register_fields += ("offset",)
            elif isinstance(instr, (ICall, DomainCall)):
                register_fields = ("func_id",)
            elif isinstance(instr, OffloadJoin):
                register_fields = ("handle",)
            elif isinstance(instr, Ret):
                if instr.src is not None:
                    register_fields = ("src",)
            for field_name in register_fields:
                current = getattr(instr, field_name)
                new = canonical(current)
                if new != current:
                    setattr(instr, field_name, new)
                    changed += 1
            if isinstance(
                instr, (Call, ICall, DomainCall, Intrinsic, OffloadLaunch)
            ):
                for position, reg in enumerate(instr.args):
                    new = canonical(reg)
                    if new != reg:
                        instr.args[position] = new
                        changed += 1
        # Update the abstract state.
        defined = instr_def(instr)
        if defined is not None:
            invalidate(defined)
            if isinstance(instr, Const):
                constants[defined] = instr.value
            elif isinstance(instr, Move):
                source = instr.src
                if source in constants:
                    constants[defined] = constants[source]
                copies[defined] = source
    return changed


# ---------------------------------------------------------------------------
# Dead code elimination
# ---------------------------------------------------------------------------


def eliminate_dead_code(function: IRFunction) -> int:
    """Remove pure instructions whose results are never read.

    Conservative about variable home registers: a register that is
    written more than once (a mutable variable, e.g. a loop counter)
    is never eliminated, because a later read may occur earlier in the
    code (loop back edge).
    """
    use_counts: dict[int, int] = {}
    def_counts: dict[int, int] = {}
    for instr in function.code:
        for reg in instr_uses(instr):
            use_counts[reg] = use_counts.get(reg, 0) + 1
        defined = instr_def(instr)
        if defined is not None:
            def_counts[defined] = def_counts.get(defined, 0) + 1
    param_regs = set(range(len(function.params)))
    dead_indices = set()
    for index, instr in enumerate(function.code):
        defined = instr_def(instr)
        if (
            defined is not None
            and is_pure(instr)
            and use_counts.get(defined, 0) == 0
            and def_counts.get(defined, 0) == 1
            and defined not in param_regs
        ):
            dead_indices.add(index)
    if not dead_indices:
        return 0
    _rebuild(function, dead_indices)
    return len(dead_indices)


def _rebuild(function: IRFunction, dead_indices: set[int]) -> None:
    """Drop the given instruction indices, remapping label targets."""
    index_map: dict[int, int] = {}
    new_code: list[Instr] = []
    for index, instr in enumerate(function.code):
        index_map[index] = len(new_code)
        if index not in dead_indices:
            new_code.append(instr)
    index_map[len(function.code)] = len(new_code)
    function.code = new_code
    function.labels = {
        name: index_map[target] for name, target in function.labels.items()
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def optimize_function(function: IRFunction, max_rounds: int = 4) -> int:
    """Run the pass pipeline to a fixpoint; returns instructions removed."""
    before = len(function.code)
    for _ in range(max_rounds):
        changed = fold_constants(function)
        changed += eliminate_dead_code(function)
        if changed == 0:
            break
    function.resolve_labels()  # sanity: all jump targets still exist
    return before - len(function.code)


def optimize_program(functions: dict[str, IRFunction]) -> int:
    """Optimise every function; returns total instructions removed."""
    removed = 0
    for function in functions.values():
        removed += optimize_function(function)
    return removed

"""The Offload compiler: AST -> IR for a specific target machine.

The pipeline is an explicit pass manager
(:mod:`repro.compiler.passes`) running

    parse -> sema -> layout -> domains -> offload-meta -> lower-host
          -> drain-duplicates -> optimize -> validate

over these building blocks:

1. :mod:`repro.compiler.layout` — place globals and vtables in main
   memory, assign host function ids (the simulated "host addresses"
   stored in vtable slots).
2. :mod:`repro.compiler.lower` — lower every function to IR.  Host
   instances are compiled unconditionally; accelerator instances are
   produced on demand by automatic call-graph duplication, one per
   offload block and memory-space signature.  All memory-*space* type
   checking happens here, where spaces are concrete.
3. :mod:`repro.compiler.domains` — build the Figure 3 outer/inner
   domain tables from ``domain(...)`` annotations.
4. :mod:`repro.compiler.driver` — shared compiler state plus the
   public entry point :func:`compile_program`, which consults
5. :mod:`repro.compiler.cache` — the content-addressed compile cache
   over serialized program artifacts (:mod:`repro.ir.serialize`).
"""

from repro.compiler.cache import CompileCache, compile_cache_key
from repro.compiler.driver import CompileOptions, compile_program
from repro.compiler.passes import Pass, PassManager

__all__ = [
    "CompileCache",
    "CompileOptions",
    "Pass",
    "PassManager",
    "compile_cache_key",
    "compile_program",
]

"""The Offload compiler: AST -> IR for a specific target machine.

Stages:

1. :mod:`repro.compiler.layout` — place globals and vtables in main
   memory, assign host function ids (the simulated "host addresses"
   stored in vtable slots).
2. :mod:`repro.compiler.lower` — lower every function to IR.  Host
   instances are compiled unconditionally; accelerator instances are
   produced on demand by automatic call-graph duplication, one per
   offload block and memory-space signature.  All memory-*space* type
   checking happens here, where spaces are concrete.
3. :mod:`repro.compiler.domains` — build the Figure 3 outer/inner
   domain tables from ``domain(...)`` annotations.
4. :mod:`repro.compiler.driver` — ties it together:
   :func:`compile_program`.
"""

from repro.compiler.driver import CompileOptions, compile_program

__all__ = ["CompileOptions", "compile_program"]

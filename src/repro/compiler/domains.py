"""Domain table construction (Figure 3).

For every offload block, each ``domain(...)`` annotation entry names a
virtual method implementation to pre-compile for the accelerator.  This
module requests those duplicates from the compiler's worklist and builds
the runtime :class:`~repro.runtime.dispatch.DomainTable`: the outer
domain holds the implementations' host function ids (what a vtable slot
will contain at run time), and each inner row holds the compiled
``(duplicate signature, accelerator function)`` pairs.

The default duplicate compiled for an annotation is the all-outer
signature (receiver and any pointer arguments in host memory) — the
common case when offloaded code walks host-resident game objects.  An
``@local`` annotation requests the local-receiver duplicate instead.
A call site whose computed signature has no matching inner entry raises
:class:`repro.errors.MissingDuplicateError` at run time, naming the
method to add — the paper's diagnostic behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lang import ast
from repro.lang.types import PointerType
from repro.runtime.dispatch import DomainTable, InnerEntry

if TYPE_CHECKING:
    from repro.compiler.driver import Compiler


def annotation_signature(
    decl: ast.FuncDecl, this_space: str, has_this: bool = True
) -> str:
    """Duplicate signature compiled for a domain annotation entry."""
    codes = []
    if has_this:
        codes.append("L" if this_space == "local" else "O")
    for param in decl.params:
        if param.symbol is not None and isinstance(param.symbol.type, PointerType):
            codes.append("O")
    return "".join(codes)


def add_demand_entries(
    compiler: "Compiler", offload: ast.OffloadExpr, table: DomainTable
) -> None:
    """On-demand code loading (the Section 4.1 "elaboration").

    Compiles an all-outer duplicate of every virtual method in the
    program and registers it as a *demand* entry.  Annotated entries
    were added first, so they take precedence in the inner-row scan;
    un-annotated methods become reachable at a first-dispatch
    code-upload cost instead of raising MissingDuplicateError.
    """
    for class_type in compiler.info.classes.values():
        for method in class_type.methods.values():
            if not method.is_virtual:
                continue
            decl = method.decl
            assert isinstance(decl, ast.FuncDecl)
            if decl.body is None:
                continue
            sig = annotation_signature(decl, "outer")
            accel_name = compiler.request_duplicate(
                decl, class_type, sig, offload
            )
            host_fid = compiler.layout.fid_by_name[method.qualified_name]
            table.add(
                host_fid,
                method.qualified_name,
                [InnerEntry(duplicate_id=sig, target=accel_name, demand=True)],
            )


def build_domain_table(
    compiler: "Compiler", offload: ast.OffloadExpr
) -> DomainTable:
    """Create the offload's domain table, requesting method duplicates."""
    table = DomainTable()
    for item in getattr(offload, "resolved_domain", []):
        decl = item.decl
        assert isinstance(decl, ast.FuncDecl)
        sig = annotation_signature(decl, item.this_space, item.has_this)
        if compiler.config.shared_memory:
            # Shared-memory targets dispatch through plain vtables; the
            # annotation is recorded (for the effort metrics) but no
            # duplicate is needed.
            continue
        accel_name = compiler.request_duplicate(
            decl, item.class_type, sig, offload
        )
        host_fid = compiler.layout.fid_by_name[item.qualified_name]
        table.add(
            host_fid,
            item.qualified_name,
            [InnerEntry(duplicate_id=sig, target=accel_name)],
        )
    return table

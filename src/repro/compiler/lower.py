"""AST -> IR lowering, including the memory-space type system.

Each source function may be lowered several times:

* once as a **host** instance (always), and
* once per **(offload block, memory-space signature)** pair it is
  reachable under — the paper's automatic call-graph duplication.  The
  signature is one letter per pointer-typed parameter (``this`` first
  for methods): ``O`` for outer (host memory), ``L`` for local store.

Because spaces are concrete during lowering, the cross-space checks the
paper attributes to Offload C++'s type system are performed here:

* assigning a pointer of one space to a variable of another is
  ``E-space-assign``;
* a local-store pointer escaping into host-visible memory is
  ``E-space-escape``;
* DMA intrinsics require a local first operand and an outer second
  operand (``E-dma-space``);
* on word-addressed targets the Section 5 rules fire here
  (``E-word-arith``, ``E-word-assign``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.errors import CompileError, SourceSpan
from repro.lang import ast
from repro.lang.symbols import Symbol, SymbolKind
from repro.lang.types import (
    BOOL,
    FLOAT,
    INT,
    UINT,
    AccessorType,
    AddrUnit,
    ArrayType,
    ClassType,
    HandleType,
    MemSpace,
    MethodInfo,
    PointerType,
    ScalarType,
    Type,
    VoidType,
    common_arithmetic_type,
)
from repro.ir.instructions import (
    AccSpace,
    BinOp,
    CJump,
    Call,
    Const,
    Copy,
    DomainCall,
    Extract,
    FrameAddr,
    GlobalAddr,
    ICall,
    Insert,
    Instr,
    Intrinsic,
    Jump,
    Load,
    Move,
    OffloadJoin,
    OffloadLaunch,
    Ret,
    Store,
    UnOp,
)
from repro.ir.module import IRFunction
from repro.compiler import wordaddr
from repro.compiler.wordaddr import DYNAMIC, WORD, AddrKind

if TYPE_CHECKING:
    from repro.compiler.driver import Compiler


# ---------------------------------------------------------------------------
# Value and storage descriptors
# ---------------------------------------------------------------------------


@dataclass
class EValue:
    """A lowered expression: register + static type + space metadata.

    ``space`` is meaningful for pointer-typed values (which memory the
    pointee lives in); None means "null/polymorphic".  ``addr_kind`` is
    the Section 5 address-kind on word-addressed targets.
    """

    reg: int
    type: Type
    space: Optional[MemSpace] = None
    addr_kind: AddrKind = WORD


@dataclass
class LValue:
    """A lowered assignable location.

    ``kind`` is ``"reg"`` (register-resident variable; ``reg`` is the
    variable's home register, ``symbol`` its symbol) or ``"mem"``
    (``reg`` holds a byte address into ``space``).
    """

    kind: str
    reg: int
    type: Type
    space: AccSpace = AccSpace.MAIN
    symbol: Optional[Symbol] = None
    addr_kind: AddrKind = WORD


@dataclass
class RegVar:
    reg: int


@dataclass
class FrameVar:
    offset: int


@dataclass
class CaptureVar:
    """A captured enclosing-function variable; ``reg`` holds its host
    address (passed to the offload entry as a parameter)."""

    reg: int


@dataclass
class AccessorVar:
    """An ``Array<T, N>`` accessor's compile-time state."""

    mode: str  # "staged" (local copy) or "direct" (shared memory)
    frame_offset: int
    base_reg: int
    element: Type = field(default_factory=lambda: INT)
    count: int = 0


VarSlot = object  # RegVar | FrameVar | CaptureVar | AccessorVar


_CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}


class FunctionLowerer:
    """Lowers one function instance (one space signature) to IR."""

    def __init__(
        self,
        compiler: "Compiler",
        decl: ast.FuncDecl,
        owner: Optional[ClassType],
        space: str,
        sig: str,
        offload: Optional[ast.OffloadExpr],
        mangled: str,
    ):
        self.compiler = compiler
        self.decl = decl
        self.owner = owner
        self.space = space  # "host" | "accel"
        self.sig = sig
        self.offload = offload
        self.mangled = mangled
        config = compiler.config
        self.cross_space = space == "accel" and not config.shared_memory
        self.word_target = config.word_addressed
        self.word_size = config.word_size
        self.emulate_bytes = (
            compiler.options.wordaddr_mode == "emulate" and self.word_target
        )
        self.code: list[Instr] = []
        self.labels: dict[str, int] = {}
        self._next_reg = 0
        self._next_label = 0
        self._frame_top = 0
        self.env: dict[Symbol, VarSlot] = {}
        self.ptr_space: dict[Symbol, MemSpace] = {}
        self.this_symbol: Optional[Symbol] = None
        self._break_labels: list[str] = []
        self._continue_labels: list[str] = []

    # ----------------------------------------------------------- plumbing

    def fail(self, code: str, message: str, span: Optional[SourceSpan]) -> None:
        raise CompileError.single(code, f"[{self.mangled}] {message}", span)

    def reg(self) -> int:
        self._next_reg += 1
        return self._next_reg - 1

    def emit(self, instr: Instr) -> Instr:
        self.code.append(instr)
        return instr

    def label(self, hint: str) -> str:
        self._next_label += 1
        return f".{hint}{self._next_label}"

    def place(self, label: str) -> None:
        self.labels[label] = len(self.code)

    def frame_alloc(self, size: int, alignment: int = 8) -> int:
        if self.word_target:
            alignment = max(alignment, self.word_size)
        self._frame_top = (
            (self._frame_top + alignment - 1) // alignment * alignment
        )
        offset = self._frame_top
        self._frame_top += size
        return offset

    # ------------------------------------------------------ space helpers

    @property
    def frame_acc_space(self) -> AccSpace:
        """Which memory a frame slot access touches."""
        return AccSpace.LOCAL if self.cross_space else AccSpace.MAIN

    @property
    def data_acc_space(self) -> AccSpace:
        """Which memory an access to main-memory data touches."""
        return AccSpace.OUTER if self.cross_space else AccSpace.MAIN

    def pointee_acc_space(self, ptr_space: Optional[MemSpace]) -> AccSpace:
        """Access space for dereferencing a pointer of the given space."""
        if ptr_space is MemSpace.LOCAL:
            if not self.cross_space:
                raise AssertionError("LOCAL pointer outside accelerator code")
            return AccSpace.LOCAL
        return self.data_acc_space

    def mem_space_of(self, acc: AccSpace) -> MemSpace:
        """The pointer space produced by taking an address in ``acc``."""
        return MemSpace.LOCAL if acc is AccSpace.LOCAL else MemSpace.HOST

    def sig_space(self, index: int) -> MemSpace:
        code = self.sig[index]
        return MemSpace.LOCAL if code == "L" else MemSpace.HOST

    # ----------------------------------------------------------- prologue

    def _ptr_param_indices(self) -> list[Optional[Symbol]]:
        """Pointer-typed parameters in signature order (this first)."""
        ordered: list[Optional[Symbol]] = []
        if self.owner is not None:
            ordered.append(self.this_symbol)
        for param in self.decl.params:
            assert param.symbol is not None
            if isinstance(param.symbol.type, PointerType):
                ordered.append(param.symbol)
        return ordered

    def compile(self) -> IRFunction:
        """Lower the whole function body."""
        param_names: list[str] = []
        param_syms: list[Symbol] = []
        if self.owner is not None:
            # Reuse sema's symbol so capture lists resolve by identity.
            self.this_symbol = self.decl.this_symbol  # type: ignore[attr-defined]
            assert self.this_symbol is not None
            param_names.append("this")
            param_syms.append(self.this_symbol)
        for param in self.decl.params:
            assert param.symbol is not None
            param_names.append(param.name)
            param_syms.append(param.symbol)
        # Parameters arrive in registers 0..n-1.
        self._next_reg = len(param_syms)
        # Assign spaces to pointer params from the signature.
        ptr_syms = [s for s in param_syms if isinstance(s.type, PointerType)]
        if self.space == "accel" and self.cross_space:
            if len(self.sig) != len(ptr_syms):
                raise AssertionError(
                    f"{self.mangled}: signature {self.sig!r} does not cover "
                    f"{len(ptr_syms)} pointer parameters"
                )
            for code, symbol in zip(self.sig, ptr_syms):
                self.ptr_space[symbol] = (
                    MemSpace.LOCAL if code == "L" else MemSpace.HOST
                )
        else:
            for symbol in ptr_syms:
                self.ptr_space[symbol] = MemSpace.HOST
        # Home each parameter: register by default, frame slot if its
        # address is taken or it is captured by an offload block.
        for index, symbol in enumerate(param_syms):
            needs_memory = symbol.address_taken or symbol.is_captured
            if needs_memory:
                offset = self.frame_alloc(
                    max(symbol.type.size(), 4), max(symbol.type.align(), 4)
                )
                addr = self.reg()
                self.emit(FrameAddr(dst=addr, offset=offset, comment=symbol.name))
                self._emit_store_scalar(
                    addr, index, symbol.type, self.frame_acc_space
                )
                self.env[symbol] = FrameVar(offset)
            else:
                self.env[symbol] = RegVar(index)
        assert self.decl.body is not None
        self.lower_block(self.decl.body)
        self.emit(Ret(src=None))
        function = IRFunction(
            name=self.mangled,
            params=param_names,
            space=self.space,
            source_name=self.decl.qualified_name,
            duplicate_id=self.sig,
            num_regs=self._next_reg,
            frame_size=self._frame_top,
            code=self.code,
            labels=self.labels,
        )
        return function

    # --------------------------------------------------------- statements

    def lower_block(self, block: ast.BlockStmt) -> None:
        for stmt in block.statements:
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.BlockStmt):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.VarDeclStmt):
            self.lower_var_decl(stmt)
        elif isinstance(stmt, ast.AssignStmt):
            self.lower_assign(stmt)
        elif isinstance(stmt, ast.IncDecStmt):
            self.lower_incdec(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.OffloadExpr):
                handle = self.lower_offload_launch(stmt.expr)
                self.emit(OffloadJoin(handle=handle.reg))
            else:
                self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self.lower_return(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            self.emit(Jump(label=self._break_labels[-1]))
        elif isinstance(stmt, ast.ContinueStmt):
            self.emit(Jump(label=self._continue_labels[-1]))
        elif isinstance(stmt, ast.JoinStmt):
            handle = self.lower_expr(stmt.handle)
            self.emit(OffloadJoin(handle=handle.reg))
        else:
            raise AssertionError(f"unhandled statement {stmt!r}")

    def lower_var_decl(self, stmt: ast.VarDeclStmt) -> None:
        symbol = stmt.symbol
        assert symbol is not None
        var_type = symbol.type
        if isinstance(var_type, AccessorType):
            self.lower_accessor_decl(stmt, symbol, var_type)
            return
        if isinstance(var_type, HandleType):
            assert isinstance(stmt.init, ast.OffloadExpr)
            handle = self.lower_offload_launch(stmt.init)
            self.env[symbol] = RegVar(handle.reg)
            return
        needs_memory = (
            symbol.address_taken
            or symbol.is_captured
            or isinstance(var_type, (ArrayType, ClassType))
        )
        init_value: Optional[EValue] = None
        if stmt.init is not None:
            init_value = self.lower_expr(stmt.init)
        if isinstance(var_type, PointerType):
            self._fix_pointer_space(symbol, var_type, init_value, stmt.span)
        if needs_memory:
            offset = self.frame_alloc(
                max(var_type.size(), 1), max(var_type.align(), 4)
            )
            self.env[symbol] = FrameVar(offset)
            self._init_frame_object(offset, var_type)
            if init_value is not None:
                addr = self.reg()
                self.emit(FrameAddr(dst=addr, offset=offset, comment=symbol.name))
                if isinstance(var_type, ClassType):
                    self.emit(
                        Copy(
                            dst_addr=addr,
                            src_addr=init_value.reg,
                            size=var_type.size(),
                            dst_space=self.frame_acc_space,
                            src_space=self._class_value_space(init_value),
                        )
                    )
                else:
                    coerced = self.coerce(init_value, var_type, stmt.span)
                    self._emit_store_scalar(
                        addr, coerced.reg, var_type, self.frame_acc_space
                    )
        else:
            home = self.reg()
            if init_value is not None:
                coerced = self.coerce(init_value, var_type, stmt.span)
                self.emit(Move(dst=home, src=coerced.reg, comment=symbol.name))
            else:
                self.emit(Const(dst=home, value=0, comment=symbol.name))
            self.env[symbol] = RegVar(home)

    def _class_value_space(self, value: EValue) -> AccSpace:
        """A class-typed EValue carries the object's address; map its
        pointer space to an access space."""
        return self.pointee_acc_space(value.space)

    def _init_frame_object(self, offset: int, var_type: Type) -> None:
        """Write vptrs for polymorphic objects freshly created in the
        frame (the constructor's job in real C++)."""
        if isinstance(var_type, ClassType) and var_type.has_vptr:
            vtable_addr = self.compiler.layout.vtables[var_type.name]
            value = self.reg()
            self.emit(Const(dst=value, value=vtable_addr, comment="vptr"))
            addr = self.reg()
            self.emit(FrameAddr(dst=addr, offset=offset))
            self.emit(
                Store(addr=addr, src=value, size=4, space=self.frame_acc_space)
            )
        elif isinstance(var_type, ArrayType):
            element = var_type.element
            if isinstance(element, ClassType) and element.has_vptr:
                for index in range(var_type.count):
                    self._init_frame_object(
                        offset + index * element.size(), element
                    )

    def _fix_pointer_space(
        self,
        symbol: Symbol,
        declared: PointerType,
        init: Optional[EValue],
        span: Optional[SourceSpan],
    ) -> None:
        """Bind the variable's space: explicit __outer wins, otherwise
        inferred from the initialiser (the paper's automatic
        qualification), defaulting to HOST."""
        if declared.space is MemSpace.HOST:
            space = MemSpace.HOST
            if init is not None and init.space is MemSpace.LOCAL:
                self.fail(
                    "E-space-assign",
                    f"cannot initialise __outer pointer {symbol.name!r} "
                    f"with a local-store address",
                    span,
                )
        elif init is not None and init.space is not None:
            space = init.space
        else:
            space = MemSpace.HOST
        self.ptr_space[symbol] = space
        if self.word_target and not self.emulate_bytes and init is not None:
            wordaddr.check_pointer_flow(
                declared,
                init.addr_kind,
                True,
                span,
                f"initialise {symbol.name!r}",
            )

    def lower_accessor_decl(
        self, stmt: ast.VarDeclStmt, symbol: Symbol, acc_type: AccessorType
    ) -> None:
        assert stmt.init is not None
        base = self.lower_expr(stmt.init)
        base = self.decay(base)
        if base.space is MemSpace.LOCAL:
            self.fail(
                "E-accessor-space",
                "Array<T, N> stages *outer* data; the bound array is "
                "already in local store",
                stmt.span,
            )
        element_size = acc_type.element.size()
        total = element_size * acc_type.count
        if self.cross_space:
            offset = self.frame_alloc(total, max(acc_type.element.align(), 16))
            local = self.reg()
            self.emit(FrameAddr(dst=local, offset=offset, comment=symbol.name))
            size_reg = self.reg()
            self.emit(Const(dst=size_reg, value=total))
            self.emit(
                Intrinsic(
                    dst=None,
                    name="acc_bulk_get",
                    args=[local, base.reg, size_reg],
                )
            )
            self.env[symbol] = AccessorVar(
                mode="staged",
                frame_offset=offset,
                base_reg=base.reg,
                element=acc_type.element,
                count=acc_type.count,
            )
        else:
            self.env[symbol] = AccessorVar(
                mode="direct",
                frame_offset=0,
                base_reg=base.reg,
                element=acc_type.element,
                count=acc_type.count,
            )

    def lower_assign(self, stmt: ast.AssignStmt) -> None:
        target = self.lower_lvalue(stmt.target)
        value = self.lower_expr(stmt.value)
        if stmt.op:
            current = self._read_lvalue(target)
            value = self._binary_values(
                stmt.op, current, value, stmt.target.type, stmt.span
            )
        self._write_lvalue(target, value, stmt.span)

    def lower_incdec(self, stmt: ast.IncDecStmt) -> None:
        target = self.lower_lvalue(stmt.target)
        current = self._read_lvalue(target)
        one = ast.IntLit(1)
        one.type = INT
        delta = EValue(self.reg(), INT)
        self.emit(Const(dst=delta.reg, value=1))
        op = "+" if stmt.delta > 0 else "-"
        result = self._binary_values(
            op, current, delta, stmt.target.type, stmt.span, index_expr=one
        )
        self._write_lvalue(target, result, stmt.span)

    def lower_if(self, stmt: ast.IfStmt) -> None:
        then_label = self.label("then")
        else_label = self.label("else")
        end_label = self.label("endif")
        self.lower_condition(stmt.condition, then_label, else_label)
        self.place(then_label)
        self.lower_stmt(stmt.then_body)
        self.emit(Jump(label=end_label))
        self.place(else_label)
        if stmt.else_body is not None:
            self.lower_stmt(stmt.else_body)
        self.place(end_label)

    def lower_while(self, stmt: ast.WhileStmt) -> None:
        cond_label = self.label("while")
        body_label = self.label("body")
        end_label = self.label("endwhile")
        self.place(cond_label)
        self.lower_condition(stmt.condition, body_label, end_label)
        self.place(body_label)
        self._break_labels.append(end_label)
        self._continue_labels.append(cond_label)
        self.lower_stmt(stmt.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        self.emit(Jump(label=cond_label))
        self.place(end_label)

    def lower_for(self, stmt: ast.ForStmt) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        cond_label = self.label("for")
        body_label = self.label("body")
        step_label = self.label("step")
        end_label = self.label("endfor")
        self.place(cond_label)
        if stmt.condition is not None:
            self.lower_condition(stmt.condition, body_label, end_label)
        else:
            self.emit(Jump(label=body_label))
        self.place(body_label)
        self._break_labels.append(end_label)
        self._continue_labels.append(step_label)
        self.lower_stmt(stmt.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        self.place(step_label)
        if stmt.step is not None:
            self.lower_stmt(stmt.step)
        self.emit(Jump(label=cond_label))
        self.place(end_label)

    def lower_return(self, stmt: ast.ReturnStmt) -> None:
        if stmt.value is None:
            self.emit(Ret(src=None))
            return
        value = self.lower_expr(stmt.value)
        expected = self.decl.resolved_return_type  # type: ignore[attr-defined]
        value = self.coerce(value, expected, stmt.span)
        if (
            isinstance(expected, PointerType)
            and value.space is MemSpace.LOCAL
        ):
            self.fail(
                "E-space-return",
                "returning a local-store pointer from an offloaded function "
                "would dangle once the frame is released",
                stmt.span,
            )
        self.emit(Ret(src=value.reg))

    # -------------------------------------------------------- conditions

    def lower_condition(
        self, expr: ast.Expr, true_label: str, false_label: str
    ) -> None:
        if isinstance(expr, ast.BinaryExpr) and expr.op == "&&":
            mid = self.label("and")
            self.lower_condition(expr.lhs, mid, false_label)
            self.place(mid)
            self.lower_condition(expr.rhs, true_label, false_label)
            return
        if isinstance(expr, ast.BinaryExpr) and expr.op == "||":
            mid = self.label("or")
            self.lower_condition(expr.lhs, true_label, mid)
            self.place(mid)
            self.lower_condition(expr.rhs, true_label, false_label)
            return
        if isinstance(expr, ast.UnaryExpr) and expr.op == "!":
            self.lower_condition(expr.operand, false_label, true_label)
            return
        value = self.lower_expr(expr)
        self.emit(
            CJump(cond=value.reg, then_label=true_label, else_label=false_label)
        )

    # ------------------------------------------------------- expressions

    def decay(self, value: EValue) -> EValue:
        """Array-to-pointer decay (the register already holds the
        array's address, so only the type changes)."""
        if isinstance(value.type, ArrayType):
            return EValue(
                value.reg,
                PointerType(value.type.element, value.space or MemSpace.HOST),
                value.space,
                value.addr_kind,
            )
        return value

    def lower_expr(self, expr: ast.Expr) -> EValue:
        if isinstance(expr, ast.IntLit):
            reg = self.reg()
            self.emit(Const(dst=reg, value=expr.value))
            assert expr.type is not None
            return EValue(reg, expr.type)
        if isinstance(expr, ast.FloatLit):
            reg = self.reg()
            self.emit(Const(dst=reg, value=float(expr.value)))
            return EValue(reg, FLOAT)
        if isinstance(expr, ast.BoolLit):
            reg = self.reg()
            self.emit(Const(dst=reg, value=1 if expr.value else 0))
            return EValue(reg, BOOL)
        if isinstance(expr, ast.NullLit):
            reg = self.reg()
            self.emit(Const(dst=reg, value=0))
            assert expr.type is not None
            return EValue(reg, expr.type, None)
        if isinstance(expr, ast.SizeofExpr):
            reg = self.reg()
            self.emit(Const(dst=reg, value=expr.folded_size))  # type: ignore[attr-defined]
            return EValue(reg, INT)
        if isinstance(expr, ast.NameExpr):
            return self.lower_name(expr)
        if isinstance(expr, ast.ThisExpr):
            return self.lower_this(expr)
        if isinstance(expr, ast.UnaryExpr):
            return self.lower_unary(expr)
        if isinstance(expr, ast.BinaryExpr):
            return self.lower_binary(expr)
        if isinstance(expr, (ast.IndexExpr, ast.MemberExpr)):
            lvalue = self.lower_lvalue(expr)
            return self._read_lvalue(lvalue)
        if isinstance(expr, ast.CallExpr):
            return self.lower_call(expr)
        if isinstance(expr, ast.CastExpr):
            return self.lower_cast(expr)
        if isinstance(expr, ast.OffloadExpr):
            return self.lower_offload_launch(expr)
        raise AssertionError(f"unhandled expression {expr!r}")

    def lower_name(self, expr: ast.NameExpr) -> EValue:
        symbol = expr.symbol
        assert symbol is not None
        if symbol.kind is SymbolKind.FIELD:
            return self._read_lvalue(self._field_lvalue_via_this(expr))
        slot = self.env.get(symbol)
        if slot is None:
            if symbol.kind is SymbolKind.GLOBAL:
                return self._read_lvalue(self._global_lvalue(symbol))
            raise AssertionError(f"no slot for {symbol!r} in {self.mangled}")
        if isinstance(slot, RegVar):
            reg = self.reg()
            self.emit(Move(dst=reg, src=slot.reg, comment=symbol.name))
            return EValue(
                reg,
                symbol.type,
                self.ptr_space.get(symbol),
                self._var_addr_kind(symbol),
            )
        if isinstance(slot, (FrameVar, CaptureVar)):
            return self._read_lvalue(self._var_lvalue(symbol, slot))
        if isinstance(slot, AccessorVar):
            self.fail(
                "E-accessor-use",
                f"accessor {symbol.name!r} can only be indexed or put_back",
                expr.span,
            )
        raise AssertionError

    def _var_addr_kind(self, symbol: Symbol) -> AddrKind:
        if isinstance(symbol.type, PointerType):
            return wordaddr.initial_kind(symbol.type, self.word_target)
        return WORD

    def lower_this(self, expr: ast.Expr) -> EValue:
        symbol = self.this_symbol
        assert symbol is not None, "'this' outside a method"
        slot = self.env[symbol]
        if isinstance(slot, RegVar):
            reg = self.reg()
            self.emit(Move(dst=reg, src=slot.reg, comment="this"))
            return EValue(reg, symbol.type, self.ptr_space.get(symbol))
        assert isinstance(slot, (FrameVar, CaptureVar))
        return self._read_lvalue(self._var_lvalue(symbol, slot))

    # Variable lvalues -----------------------------------------------------

    def _global_lvalue(self, symbol: Symbol) -> LValue:
        reg = self.reg()
        self.emit(GlobalAddr(dst=reg, name=symbol.name))
        return LValue(
            kind="mem",
            reg=reg,
            type=symbol.type,
            space=self.data_acc_space,
            symbol=symbol,
            addr_kind=WORD,
        )

    def _var_lvalue(self, symbol: Symbol, slot: VarSlot) -> LValue:
        if isinstance(slot, RegVar):
            return LValue(kind="reg", reg=slot.reg, type=symbol.type, symbol=symbol)
        if isinstance(slot, FrameVar):
            reg = self.reg()
            self.emit(FrameAddr(dst=reg, offset=slot.offset, comment=symbol.name))
            return LValue(
                kind="mem",
                reg=reg,
                type=symbol.type,
                space=self.frame_acc_space,
                symbol=symbol,
                addr_kind=WORD,
            )
        if isinstance(slot, CaptureVar):
            return LValue(
                kind="mem",
                reg=slot.reg,
                type=symbol.type,
                space=self.data_acc_space,
                symbol=symbol,
                addr_kind=WORD,
            )
        raise AssertionError(f"{symbol!r} is not a plain variable")

    def _field_lvalue_via_this(self, expr: ast.NameExpr) -> LValue:
        this_value = self.lower_this(expr)
        field_info = expr.symbol.decl if expr.symbol is not None else None
        from repro.lang.types import FieldInfo

        assert isinstance(field_info, FieldInfo)
        return self._member_lvalue_from(
            this_value, field_info, arrow=True, span=expr.span
        )

    # L-values -------------------------------------------------------------

    def lower_lvalue(self, expr: ast.Expr) -> LValue:
        if isinstance(expr, ast.NameExpr):
            symbol = expr.symbol
            assert symbol is not None
            if symbol.kind is SymbolKind.FIELD:
                return self._field_lvalue_via_this(expr)
            if symbol.kind is SymbolKind.GLOBAL:
                return self._global_lvalue(symbol)
            slot = self.env[symbol]
            if isinstance(slot, AccessorVar):
                self.fail(
                    "E-accessor-use",
                    f"accessor {symbol.name!r} is not assignable",
                    expr.span,
                )
            return self._var_lvalue(symbol, slot)
        if isinstance(expr, ast.UnaryExpr) and expr.op == "*":
            pointer = self.decay(self.lower_expr(expr.operand))
            assert isinstance(pointer.type, PointerType)
            return LValue(
                kind="mem",
                reg=pointer.reg,
                type=pointer.type.pointee,
                space=self.pointee_acc_space(pointer.space),
                addr_kind=pointer.addr_kind,
            )
        if isinstance(expr, ast.IndexExpr):
            return self.lower_index_lvalue(expr)
        if isinstance(expr, ast.MemberExpr):
            return self.lower_member_lvalue(expr)
        self.fail("E-lvalue", "expression is not assignable", expr.span)
        raise AssertionError

    def lower_index_lvalue(self, expr: ast.IndexExpr) -> LValue:
        base_type = expr.base.type
        index = self.lower_expr(expr.index)
        if isinstance(base_type, AccessorType):
            return self._accessor_index_lvalue(expr, index)
        if isinstance(base_type, ArrayType):
            base_lvalue = self.lower_lvalue(expr.base)
            assert base_lvalue.kind == "mem"
            element = base_type.element
            addr, kind = self._pointer_offset(
                base_lvalue.reg,
                base_lvalue.addr_kind,
                element,
                index,
                expr.index,
                expr.span,
            )
            return LValue(
                kind="mem",
                reg=addr,
                type=element,
                space=base_lvalue.space,
                addr_kind=kind,
            )
        pointer = self.decay(self.lower_expr(expr.base))
        assert isinstance(pointer.type, PointerType)
        element = pointer.type.pointee
        addr, kind = self._pointer_offset(
            pointer.reg, pointer.addr_kind, element, index, expr.index, expr.span
        )
        return LValue(
            kind="mem",
            reg=addr,
            type=element,
            space=self.pointee_acc_space(pointer.space),
            addr_kind=kind,
        )

    def _accessor_index_lvalue(
        self, expr: ast.IndexExpr, index: EValue
    ) -> LValue:
        assert isinstance(expr.base, ast.NameExpr)
        symbol = expr.base.symbol
        assert symbol is not None
        slot = self.env[symbol]
        assert isinstance(slot, AccessorVar)
        element_size = max(1, slot.element.size())
        scaled = self.reg()
        size_reg = self.reg()
        self.emit(Const(dst=size_reg, value=element_size))
        self.emit(
            BinOp(op="*", dst=scaled, a=index.reg, b=size_reg, signed=False)
        )
        addr = self.reg()
        if slot.mode == "staged":
            base = self.reg()
            self.emit(FrameAddr(dst=base, offset=slot.frame_offset))
            self.emit(BinOp(op="+", dst=addr, a=base, b=scaled, signed=False))
            space = AccSpace.LOCAL
        else:
            self.emit(
                BinOp(op="+", dst=addr, a=slot.base_reg, b=scaled, signed=False)
            )
            space = self.data_acc_space
        return LValue(kind="mem", reg=addr, type=slot.element, space=space)

    def lower_member_lvalue(self, expr: ast.MemberExpr) -> LValue:
        assert expr.field is not None, "member lvalue must be a field"
        if expr.arrow:
            base = self.decay(self.lower_expr(expr.base))
            return self._member_lvalue_from(base, expr.field, True, expr.span)
        base_lvalue = self.lower_lvalue(expr.base)
        assert base_lvalue.kind == "mem"
        field_info = expr.field
        addr = self.reg()
        offset_reg = self.reg()
        self.emit(Const(dst=offset_reg, value=field_info.offset))
        self.emit(
            BinOp(op="+", dst=addr, a=base_lvalue.reg, b=offset_reg, signed=False)
        )
        kind = base_lvalue.addr_kind
        if self.word_target:
            kind = wordaddr.add_offset(
                base_lvalue.addr_kind,
                field_info.offset,
                self.word_size,
                expr.span,
                f"field {field_info.name!r}",
            )
        return LValue(
            kind="mem",
            reg=addr,
            type=field_info.type,
            space=base_lvalue.space,
            addr_kind=kind,
        )

    def _member_lvalue_from(
        self, base: EValue, field_info: object, arrow: bool, span
    ) -> LValue:
        from repro.lang.types import FieldInfo

        assert isinstance(field_info, FieldInfo)
        assert isinstance(base.type, PointerType)
        addr = self.reg()
        offset_reg = self.reg()
        self.emit(Const(dst=offset_reg, value=field_info.offset))
        self.emit(BinOp(op="+", dst=addr, a=base.reg, b=offset_reg, signed=False))
        kind = base.addr_kind
        if self.word_target:
            kind = wordaddr.add_offset(
                base.addr_kind,
                field_info.offset,
                self.word_size,
                span,
                f"field {field_info.name!r}",
            )
        return LValue(
            kind="mem",
            reg=addr,
            type=field_info.type,
            space=self.pointee_acc_space(base.space),
            addr_kind=kind,
        )

    # Reads and writes ------------------------------------------------------

    def _read_lvalue(self, lvalue: LValue) -> EValue:
        if lvalue.kind == "reg":
            reg = self.reg()
            self.emit(Move(dst=reg, src=lvalue.reg))
            space = (
                self.ptr_space.get(lvalue.symbol)
                if lvalue.symbol is not None
                else None
            )
            kind = (
                self._var_addr_kind(lvalue.symbol)
                if lvalue.symbol is not None
                else WORD
            )
            return EValue(reg, lvalue.type, space, kind)
        value_type = lvalue.type
        if isinstance(value_type, (ClassType, ArrayType)):
            # Composite reads yield the address (used by Copy / decay).
            space = self.mem_space_of(lvalue.space)
            return EValue(lvalue.reg, value_type, space, lvalue.addr_kind)
        reg = self.reg()
        self._emit_load_scalar(reg, lvalue)
        space: Optional[MemSpace] = None
        kind: AddrKind = WORD
        if isinstance(value_type, PointerType):
            if lvalue.symbol is not None and lvalue.symbol in self.ptr_space:
                space = self.ptr_space[lvalue.symbol]
            else:
                space = MemSpace.HOST  # pointers at rest are host pointers
            kind = wordaddr.initial_kind(value_type, self.word_target)
        return EValue(reg, value_type, space, kind)

    def _write_lvalue(
        self, lvalue: LValue, value: EValue, span: Optional[SourceSpan]
    ) -> None:
        value = self.coerce(value, lvalue.type, span)
        if isinstance(lvalue.type, PointerType):
            self._check_pointer_write(lvalue, value, span)
        if lvalue.kind == "reg":
            self.emit(Move(dst=lvalue.reg, src=value.reg))
            return
        if isinstance(lvalue.type, ClassType):
            self.emit(
                Copy(
                    dst_addr=lvalue.reg,
                    src_addr=value.reg,
                    size=lvalue.type.size(),
                    dst_space=lvalue.space,
                    src_space=self._class_value_space(value),
                )
            )
            return
        self._emit_store_scalar_lv(lvalue, value.reg)

    def _check_pointer_write(
        self, lvalue: LValue, value: EValue, span: Optional[SourceSpan]
    ) -> None:
        declared = lvalue.type
        assert isinstance(declared, PointerType)
        if lvalue.symbol is not None and lvalue.symbol in self.ptr_space:
            expected = self.ptr_space[lvalue.symbol]
            if value.space is not None and value.space is not expected:
                self.fail(
                    "E-space-assign",
                    f"cannot assign a {value.space.value} pointer to "
                    f"{lvalue.symbol.name!r}, which points into "
                    f"{expected.value} memory (pointers never change "
                    f"memory space)",
                    span,
                )
        else:
            # Storing through arbitrary memory: local pointers must not
            # escape to host-visible storage.
            if value.space is MemSpace.LOCAL:
                self.fail(
                    "E-space-escape",
                    "a local-store pointer cannot be stored into memory "
                    "visible to other cores (it is meaningless outside "
                    "this accelerator)",
                    span,
                )
        if self.word_target and not self.emulate_bytes:
            wordaddr.check_pointer_flow(
                declared, value.addr_kind, True, span, "assign"
            )

    # Scalar load/store with word-addressing lowering ------------------------

    def _emit_load_scalar(self, dst: int, lvalue: LValue) -> None:
        value_type = lvalue.type
        size = max(1, value_type.size())
        signed = isinstance(value_type, ScalarType) and value_type.signed
        is_float = isinstance(value_type, ScalarType) and value_type.is_float_type
        if not self.word_target:
            self.emit(
                Load(
                    dst=dst,
                    addr=lvalue.reg,
                    size=size,
                    space=lvalue.space,
                    signed=signed,
                    is_float=is_float,
                )
            )
            return
        plan = self._word_plan(lvalue.addr_kind, size)
        if plan == "direct":
            addr = lvalue.reg
            if self.emulate_bytes:
                # Byte-pointer emulation converts the pointer on every
                # dereference (byte address -> word address): two ALU
                # operations the hybrid scheme avoids.
                addr = self._aligned_addr_reg(lvalue)
            self.emit(
                Load(
                    dst=dst,
                    addr=addr,
                    size=size,
                    space=lvalue.space,
                    signed=signed,
                    is_float=is_float,
                )
            )
            return
        word_reg, offset_info = self._load_containing_word(lvalue)
        const_offset, offset_reg = offset_info
        self.emit(
            Extract(
                dst=dst,
                word=word_reg,
                size=size,
                const_offset=const_offset,
                offset=offset_reg,
                signed=signed,
            )
        )

    def _emit_store_scalar_lv(self, lvalue: LValue, src: int) -> None:
        value_type = lvalue.type
        size = max(1, value_type.size())
        is_float = isinstance(value_type, ScalarType) and value_type.is_float_type
        if not self.word_target:
            self.emit(
                Store(
                    addr=lvalue.reg,
                    src=src,
                    size=size,
                    space=lvalue.space,
                    is_float=is_float,
                )
            )
            return
        plan = self._word_plan(lvalue.addr_kind, size)
        if plan == "direct":
            addr = lvalue.reg
            if self.emulate_bytes:
                addr = self._aligned_addr_reg(lvalue)
            self.emit(
                Store(
                    addr=addr,
                    src=src,
                    size=size,
                    space=lvalue.space,
                    is_float=is_float,
                )
            )
            return
        # Read-modify-write of the containing word.
        word_reg, (const_offset, offset_reg) = self._load_containing_word(lvalue)
        merged = self.reg()
        self.emit(
            Insert(
                dst=merged,
                word=word_reg,
                value=src,
                size=size,
                const_offset=const_offset,
                offset=offset_reg,
            )
        )
        aligned = self._aligned_addr_reg(lvalue)
        self.emit(
            Store(
                addr=aligned,
                src=merged,
                size=self.word_size,
                space=lvalue.space,
                is_float=False,
            )
        )

    def _word_plan(self, kind: AddrKind, size: int) -> str:
        if self.emulate_bytes:
            # All pointers are byte pointers; every access converts.
            return "dynamic-extract" if size < self.word_size else "direct"
        return wordaddr.deref_plan(kind, size, self.word_size)

    def _aligned_addr_reg(self, lvalue: LValue) -> int:
        """Register holding the word-aligned base of the access."""
        mask_reg = self.reg()
        self.emit(Const(dst=mask_reg, value=~(self.word_size - 1)))
        aligned = self.reg()
        self.emit(
            BinOp(op="&", dst=aligned, a=lvalue.reg, b=mask_reg, signed=False)
        )
        return aligned

    def _load_containing_word(
        self, lvalue: LValue
    ) -> tuple[int, tuple[Optional[int], int]]:
        """Load the word containing the byte access; returns the word
        register and (const_offset, offset_reg) for Extract/Insert."""
        aligned = self._aligned_addr_reg(lvalue)
        word_reg = self.reg()
        self.emit(
            Load(
                dst=word_reg,
                addr=aligned,
                size=self.word_size,
                space=lvalue.space,
                signed=False,
            )
        )
        if isinstance(lvalue.addr_kind, int) and not self.emulate_bytes:
            return word_reg, (lvalue.addr_kind % self.word_size, 0)
        if lvalue.addr_kind == WORD and not self.emulate_bytes:
            return word_reg, (0, 0)
        low_mask = self.reg()
        self.emit(Const(dst=low_mask, value=self.word_size - 1))
        offset_reg = self.reg()
        self.emit(
            BinOp(op="&", dst=offset_reg, a=lvalue.reg, b=low_mask, signed=False)
        )
        return word_reg, (None, offset_reg)

    def _emit_store_scalar(
        self, addr: int, src: int, value_type: Type, space: AccSpace
    ) -> None:
        """Store helper for internally generated, word-aligned addresses."""
        size = max(1, value_type.size())
        is_float = isinstance(value_type, ScalarType) and value_type.is_float_type
        if self.word_target and size < self.word_size:
            lvalue = LValue(
                kind="mem", reg=addr, type=value_type, space=space, addr_kind=WORD
            )
            self._emit_store_scalar_lv(lvalue, src)
            return
        self.emit(
            Store(addr=addr, src=src, size=size, space=space, is_float=is_float)
        )

    # Arithmetic -------------------------------------------------------------

    def lower_unary(self, expr: ast.UnaryExpr) -> EValue:
        if expr.op == "*":
            lvalue = self.lower_lvalue(expr)
            return self._read_lvalue(lvalue)
        if expr.op == "&" and hasattr(expr, "func_target"):
            # &free_function: the value is the host function id.
            decl = expr.func_target  # type: ignore[attr-defined]
            fid = self.compiler.layout.fid_by_name[decl.qualified_name]
            reg = self.reg()
            self.emit(Const(dst=reg, value=fid, comment=f"&{decl.name}"))
            assert expr.type is not None
            return EValue(reg, expr.type)
        if expr.op == "&":
            inner = self.lower_lvalue(expr.operand)
            if inner.kind != "mem":
                self.fail(
                    "E-lvalue",
                    "cannot take the address of a register variable "
                    "(compiler bug: sema should have forced frame storage)",
                    expr.span,
                )
            assert expr.type is not None
            return EValue(
                inner.reg,
                expr.type,
                self.mem_space_of(inner.space),
                inner.addr_kind,
            )
        operand = self.lower_expr(expr.operand)
        reg = self.reg()
        is_float = operand.type == FLOAT
        self.emit(UnOp(op=expr.op, dst=reg, a=operand.reg, float_op=is_float))
        assert expr.type is not None
        return EValue(reg, expr.type)

    def lower_binary(self, expr: ast.BinaryExpr) -> EValue:
        if expr.op in ("&&", "||"):
            return self._lower_logical_value(expr)
        lhs = self.lower_expr(expr.lhs)
        rhs = self.lower_expr(expr.rhs)
        assert expr.type is not None
        return self._binary_values(
            expr.op, lhs, rhs, expr.type, expr.span, index_expr=expr.rhs
        )

    def _lower_logical_value(self, expr: ast.BinaryExpr) -> EValue:
        result = self.reg()
        true_label = self.label("true")
        false_label = self.label("false")
        end_label = self.label("endlogic")
        self.lower_condition(expr, true_label, false_label)
        self.place(true_label)
        self.emit(Const(dst=result, value=1))
        self.emit(Jump(label=end_label))
        self.place(false_label)
        self.emit(Const(dst=result, value=0))
        self.place(end_label)
        return EValue(result, BOOL)

    def _binary_values(
        self,
        op: str,
        lhs: EValue,
        rhs: EValue,
        result_type: Optional[Type],
        span: Optional[SourceSpan],
        index_expr: Optional[ast.Expr] = None,
    ) -> EValue:
        lhs = self.decay(lhs)
        rhs = self.decay(rhs)
        # Pointer arithmetic.
        if isinstance(lhs.type, PointerType) and not isinstance(
            rhs.type, PointerType
        ):
            return self._pointer_add(lhs, rhs, op, index_expr, span)
        if (
            op == "+"
            and isinstance(rhs.type, PointerType)
            and not isinstance(lhs.type, PointerType)
        ):
            return self._pointer_add(rhs, lhs, op, index_expr, span)
        if isinstance(lhs.type, PointerType) and isinstance(rhs.type, PointerType):
            if op in _CMP_OPS:
                reg = self.reg()
                self.emit(
                    BinOp(op=op, dst=reg, a=lhs.reg, b=rhs.reg, signed=False)
                )
                return EValue(reg, BOOL)
            assert op == "-"
            diff = self.reg()
            self.emit(BinOp(op="-", dst=diff, a=lhs.reg, b=rhs.reg, signed=True))
            size_reg = self.reg()
            element_size = max(1, lhs.type.pointee.size())
            self.emit(Const(dst=size_reg, value=element_size))
            reg = self.reg()
            self.emit(BinOp(op="/", dst=reg, a=diff, b=size_reg, signed=True))
            return EValue(reg, INT)
        # Arithmetic / comparison with numeric promotion.
        common = common_arithmetic_type(
            self._decayed_scalar(lhs.type), self._decayed_scalar(rhs.type)
        )
        if common is None:
            common = INT
        lhs = self.coerce(lhs, common, span)
        rhs = self.coerce(rhs, common, span)
        is_float = common == FLOAT
        signed = not (common == UINT)
        reg = self.reg()
        self.emit(
            BinOp(op=op, dst=reg, a=lhs.reg, b=rhs.reg, float_op=is_float, signed=signed)
        )
        if op in _CMP_OPS:
            return EValue(reg, BOOL)
        return EValue(reg, result_type if result_type is not None else common)

    def _decayed_scalar(self, t: Type) -> Type:
        return t if isinstance(t, ScalarType) else INT

    def _pointer_offset(
        self,
        base_reg: int,
        base_kind: AddrKind,
        element: Type,
        index: EValue,
        index_expr: Optional[ast.Expr],
        span: Optional[SourceSpan],
    ) -> tuple[int, AddrKind]:
        """addr = base + index * sizeof(element); returns (reg, kind)."""
        element_size = max(1, element.size())
        kind: AddrKind = base_kind
        if self.word_target and not self.emulate_bytes:
            const_index = self._const_index_of(index_expr)
            delta = wordaddr.scaled_delta(
                element_size, const_index, self.word_size
            )
            if base_kind == DYNAMIC:
                kind = DYNAMIC
            else:
                kind = wordaddr.add_offset(
                    base_kind, delta, self.word_size, span, "pointer arithmetic"
                )
        elif self.emulate_bytes:
            kind = DYNAMIC
        size_reg = self.reg()
        self.emit(Const(dst=size_reg, value=element_size))
        scaled = self.reg()
        self.emit(
            BinOp(op="*", dst=scaled, a=index.reg, b=size_reg, signed=True)
        )
        addr = self.reg()
        self.emit(BinOp(op="+", dst=addr, a=base_reg, b=scaled, signed=False))
        return addr, kind

    def _const_index_of(self, expr: Optional[ast.Expr]) -> Optional[int]:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if (
            isinstance(expr, ast.UnaryExpr)
            and expr.op == "-"
            and isinstance(expr.operand, ast.IntLit)
        ):
            return -expr.operand.value
        return None

    def _pointer_add(
        self,
        pointer: EValue,
        index: EValue,
        op: str,
        index_expr: Optional[ast.Expr],
        span: Optional[SourceSpan],
    ) -> EValue:
        assert isinstance(pointer.type, PointerType)
        if op == "-":
            negated = self.reg()
            self.emit(UnOp(op="-", dst=negated, a=index.reg))
            index = EValue(negated, index.type)
            # A constant index is negated for the word-addressing check.
            if isinstance(index_expr, ast.IntLit):
                negative = ast.IntLit(-index_expr.value)
                negative.type = INT
                index_expr = negative
        addr, kind = self._pointer_offset(
            pointer.reg,
            pointer.addr_kind,
            pointer.type.pointee,
            index,
            index_expr,
            span,
        )
        return EValue(addr, pointer.type, pointer.space, kind)

    # Casts ------------------------------------------------------------------

    def lower_cast(self, expr: ast.CastExpr) -> EValue:
        target = expr.resolved_target  # type: ignore[attr-defined]
        operand = self.decay(self.lower_expr(expr.operand))
        if isinstance(target, PointerType):
            space = operand.space
            if target.space is MemSpace.HOST:
                space = MemSpace.HOST
            kind: AddrKind = operand.addr_kind
            if self.word_target:
                unit = wordaddr.declared_unit(target, True)
                if unit is not AddrUnit.BYTE:
                    # An explicit cast back to a word pointer is the
                    # programmer's assertion of alignment.
                    kind = WORD
            return EValue(operand.reg, target, space, kind)
        if isinstance(target, ScalarType):
            if target.is_float_type and operand.type != FLOAT:
                reg = self.reg()
                self.emit(UnOp(op="itof", dst=reg, a=operand.reg))
                return EValue(reg, target)
            if not target.is_float_type and operand.type == FLOAT:
                reg = self.reg()
                self.emit(UnOp(op="ftoi", dst=reg, a=operand.reg))
                return self._narrow(EValue(reg, INT), target)
            return self._narrow(
                EValue(operand.reg, operand.type), target
            )
        raise AssertionError(f"unhandled cast target {target}")

    def _narrow(self, value: EValue, target: ScalarType) -> EValue:
        if target.byte_size >= 4 or target.is_float_type:
            return EValue(value.reg, target)
        reg = self.reg()
        if target == BOOL:
            # bool conversion is truthiness, not bit truncation.
            zero = self.reg()
            self.emit(Const(dst=zero, value=0))
            self.emit(BinOp(op="!=", dst=reg, a=value.reg, b=zero))
            return EValue(reg, target)
        op = ("sext" if target.signed else "zext") + str(target.byte_size * 8)
        self.emit(UnOp(op=op, dst=reg, a=value.reg))
        return EValue(reg, target)

    def coerce(
        self, value: EValue, dest: Type, span: Optional[SourceSpan]
    ) -> EValue:
        """Implicit conversion of a lowered value to ``dest``."""
        value = self.decay(value)
        if isinstance(dest, ScalarType):
            if dest.is_float_type and value.type != FLOAT:
                reg = self.reg()
                self.emit(UnOp(op="itof", dst=reg, a=value.reg))
                return EValue(reg, dest)
            if not dest.is_float_type and value.type == FLOAT:
                self.fail(
                    "E-type-mismatch",
                    "float to integer conversion requires an explicit cast",
                    span,
                )
            if (
                not dest.is_float_type
                and dest.byte_size < 4
                and isinstance(value.type, ScalarType)
                and (
                    value.type.byte_size > dest.byte_size
                    or (dest == BOOL and value.type != BOOL)
                )
            ):
                return self._narrow(value, dest)
            return EValue(value.reg, dest, value.space, value.addr_kind)
        return EValue(value.reg, dest, value.space, value.addr_kind)

    # Calls -------------------------------------------------------------------

    def lower_call(self, expr: ast.CallExpr) -> EValue:
        target = expr.target
        if isinstance(target, str):
            if target == "accessor.put_back":
                return self.lower_put_back(expr)
            if target == "indirect":
                return self.lower_indirect_call(expr)
            return self.lower_intrinsic(expr, target)
        if isinstance(target, MethodInfo):
            return self.lower_method_call(expr, target)
        if isinstance(target, ast.FuncDecl):
            return self.lower_free_call(expr, target)
        raise AssertionError(f"unhandled call target {target!r}")

    def lower_intrinsic(self, expr: ast.CallExpr, name: str) -> EValue:
        args = [self.decay(self.lower_expr(a)) for a in expr.args]
        if name in ("dma_get", "dma_put"):
            return self.lower_dma_transfer(expr, name, args)
        if name == "dma_wait":
            if self.cross_space:
                self.emit(Intrinsic(dst=None, name="dma_wait", args=[args[0].reg]))
            return EValue(self._void_reg(), VoidType())
        dst = self.reg()
        self.emit(Intrinsic(dst=dst, name=name, args=[a.reg for a in args]))
        assert expr.type is not None
        return EValue(dst, expr.type)

    def _void_reg(self) -> int:
        reg = self.reg()
        self.emit(Const(dst=reg, value=0))
        return reg

    def lower_dma_transfer(
        self, expr: ast.CallExpr, name: str, args: list[EValue]
    ) -> EValue:
        local, outer, size, tag = args
        if self.cross_space:
            if local.space is not MemSpace.LOCAL:
                self.fail(
                    "E-dma-space",
                    f"{name}: the first operand must be a local-store "
                    f"address (got a {self._space_name(local.space)} pointer)",
                    expr.span,
                )
            if outer.space is MemSpace.LOCAL:
                self.fail(
                    "E-dma-space",
                    f"{name}: the second operand must be an outer (host "
                    f"memory) address",
                    expr.span,
                )
            self.emit(
                Intrinsic(
                    dst=None,
                    name=name,
                    args=[local.reg, outer.reg, size.reg, tag.reg],
                )
            )
        else:
            # Shared memory: DMA degrades to a plain copy (portability).
            dst, src = (
                (local, outer) if name == "dma_get" else (outer, local)
            )
            self.emit(
                Copy(
                    dst_addr=dst.reg,
                    src_addr=src.reg,
                    size=0,
                    dst_space=AccSpace.MAIN,
                    src_space=AccSpace.MAIN,
                    size_reg=size.reg,
                    comment=f"{name}(shared)",
                )
            )
        return EValue(self._void_reg(), VoidType())

    def _space_name(self, space: Optional[MemSpace]) -> str:
        return space.value if space is not None else "null"

    def lower_put_back(self, expr: ast.CallExpr) -> EValue:
        callee = expr.callee
        assert isinstance(callee, ast.MemberExpr)
        assert isinstance(callee.base, ast.NameExpr)
        symbol = callee.base.symbol
        assert symbol is not None
        slot = self.env[symbol]
        assert isinstance(slot, AccessorVar)
        if slot.mode == "staged":
            local = self.reg()
            self.emit(FrameAddr(dst=local, offset=slot.frame_offset))
            size_reg = self.reg()
            self.emit(
                Const(dst=size_reg, value=slot.element.size() * slot.count)
            )
            self.emit(
                Intrinsic(
                    dst=None,
                    name="acc_bulk_put",
                    args=[local, slot.base_reg, size_reg],
                )
            )
        return EValue(self._void_reg(), VoidType())

    def lower_indirect_call(self, expr: ast.CallExpr) -> EValue:
        """A call through a function-pointer variable: ICall on the
        host, domain dispatch on a cross-space accelerator."""
        from repro.lang.types import FuncPtrType

        callee = expr.callee
        assert isinstance(callee, ast.NameExpr)
        pointer = self.lower_expr(callee)
        func_type = expr.funcptr_type  # type: ignore[attr-defined]
        assert isinstance(func_type, FuncPtrType)
        args: list[EValue] = []
        for arg, param_type in zip(expr.args, func_type.param_types):
            value = self.decay(self.lower_expr(arg))
            args.append(self.coerce(value, param_type, arg.span))
        arg_regs = [a.reg for a in args]
        returns_value = not isinstance(expr.type, VoidType)
        dst = self.reg() if returns_value else None
        if self.cross_space:
            codes = [
                "L" if a.space is MemSpace.LOCAL else "O"
                for a in args
                if isinstance(a.type, PointerType)
            ]
            assert self.offload is not None
            self.emit(
                DomainCall(
                    dst=dst,
                    func_id=pointer.reg,
                    duplicate_id="".join(codes),
                    offload_id=self.offload.offload_id,
                    args=arg_regs,
                )
            )
        else:
            self.emit(ICall(dst=dst, func_id=pointer.reg, args=arg_regs))
        if dst is None:
            return EValue(self._void_reg(), VoidType())
        assert expr.type is not None
        space = MemSpace.HOST if isinstance(expr.type, PointerType) else None
        return EValue(dst, expr.type, space)

    def lower_free_call(self, expr: ast.CallExpr, decl: ast.FuncDecl) -> EValue:
        args: list[EValue] = []
        for arg, param in zip(expr.args, decl.params):
            assert param.symbol is not None
            value = self.decay(self.lower_expr(arg))
            value = self.coerce(value, param.symbol.type, arg.span)
            args.append(value)
        callee = self._static_callee(decl, None, args)
        return self._emit_call(callee, [a.reg for a in args], expr)

    def lower_method_call(self, expr: ast.CallExpr, method: MethodInfo) -> EValue:
        decl = method.decl
        assert isinstance(decl, ast.FuncDecl)
        # Evaluate the receiver.
        if getattr(expr, "implicit_this", False):
            receiver = self.lower_this(expr)
        else:
            callee = expr.callee
            assert isinstance(callee, ast.MemberExpr)
            if callee.arrow:
                receiver = self.decay(self.lower_expr(callee.base))
            else:
                base_lvalue = self.lower_lvalue(callee.base)
                assert base_lvalue.kind == "mem"
                receiver = EValue(
                    base_lvalue.reg,
                    PointerType(
                        base_lvalue.type, self.mem_space_of(base_lvalue.space)
                    ),
                    self.mem_space_of(base_lvalue.space),
                )
        args: list[EValue] = [receiver]
        for arg, param in zip(expr.args, decl.params):
            assert param.symbol is not None
            value = self.decay(self.lower_expr(arg))
            value = self.coerce(value, param.symbol.type, arg.span)
            args.append(value)
        arg_regs = [a.reg for a in args]
        if expr.is_virtual:
            return self._emit_virtual_call(expr, method, args)
        owner = self.compiler.info.classes[decl.owner]  # type: ignore[index]
        callee = self._static_callee(decl, owner, args)
        return self._emit_call(callee, arg_regs, expr)

    def _duplicate_sig(
        self, decl: ast.FuncDecl, args: list[EValue], has_this: bool
    ) -> str:
        """Signature letters for the pointer arguments of a call."""
        codes: list[str] = []
        index = 0
        if has_this:
            codes.append("L" if args[0].space is MemSpace.LOCAL else "O")
            index = 1
        for value in args[index:]:
            if isinstance(value.type, PointerType):
                codes.append("L" if value.space is MemSpace.LOCAL else "O")
        return "".join(codes)

    def _static_callee(
        self,
        decl: ast.FuncDecl,
        owner: Optional[ClassType],
        args: list[EValue],
    ) -> str:
        if not self.cross_space:
            return decl.qualified_name
        sig = self._duplicate_sig(decl, args, owner is not None)
        assert self.offload is not None
        return self.compiler.request_duplicate(decl, owner, sig, self.offload)

    def _emit_call(
        self, callee: str, arg_regs: list[int], expr: ast.CallExpr
    ) -> EValue:
        returns_value = not isinstance(expr.type, VoidType)
        dst = self.reg() if returns_value else None
        self.emit(Call(dst=dst, callee=callee, args=arg_regs))
        if dst is None:
            return EValue(self._void_reg(), VoidType())
        assert expr.type is not None
        space = MemSpace.HOST if isinstance(expr.type, PointerType) else None
        return EValue(dst, expr.type, space)

    def _emit_virtual_call(
        self,
        expr: ast.CallExpr,
        method: MethodInfo,
        args: list[EValue],
    ) -> EValue:
        assert method.vtable_index is not None
        receiver = args[0]
        arg_regs = [a.reg for a in args]
        # 1. Load the vptr from the object header.
        vptr = self.reg()
        receiver_space = self.pointee_acc_space(receiver.space)
        self.emit(
            Load(
                dst=vptr,
                addr=receiver.reg,
                size=4,
                space=receiver_space,
                signed=False,
                comment=f"vptr for {method.qualified_name}",
            )
        )
        # 2. Load the slot (vtables live in main memory).
        slot_addr = self.reg()
        slot_off = self.reg()
        self.emit(Const(dst=slot_off, value=4 * method.vtable_index))
        self.emit(
            BinOp(op="+", dst=slot_addr, a=vptr, b=slot_off, signed=False)
        )
        fid = self.reg()
        self.emit(
            Load(
                dst=fid,
                addr=slot_addr,
                size=4,
                space=self.data_acc_space,
                signed=False,
                comment="vtable slot",
            )
        )
        returns_value = not isinstance(expr.type, VoidType)
        dst = self.reg() if returns_value else None
        if self.cross_space:
            decl = method.decl
            assert isinstance(decl, ast.FuncDecl)
            sig = self._duplicate_sig(decl, args, has_this=True)
            assert self.offload is not None
            self.emit(
                DomainCall(
                    dst=dst,
                    func_id=fid,
                    duplicate_id=sig,
                    offload_id=self.offload.offload_id,
                    args=arg_regs,
                )
            )
        else:
            self.emit(ICall(dst=dst, func_id=fid, args=arg_regs))
        if dst is None:
            return EValue(self._void_reg(), VoidType())
        assert expr.type is not None
        space = MemSpace.HOST if isinstance(expr.type, PointerType) else None
        return EValue(dst, expr.type, space)

    # Offload launch -----------------------------------------------------------

    def lower_offload_launch(self, expr: ast.OffloadExpr) -> EValue:
        if self.space != "host":
            self.fail(
                "E-offload-nesting",
                "offload blocks cannot be launched from accelerator code",
                expr.span,
            )
        entry = self.compiler.request_offload_entry(expr)
        arg_regs: list[int] = []
        for symbol in expr.captures:
            slot = self.env.get(symbol)
            if not isinstance(slot, FrameVar):
                raise AssertionError(
                    f"captured variable {symbol.name!r} must live in the "
                    f"frame (got {slot!r})"
                )
            reg = self.reg()
            self.emit(
                FrameAddr(dst=reg, offset=slot.offset, comment=f"&{symbol.name}")
            )
            arg_regs.append(reg)
        handle = self.reg()
        self.emit(
            OffloadLaunch(
                dst=handle,
                entry=entry,
                offload_id=expr.offload_id,
                args=arg_regs,
            )
        )
        return EValue(handle, HandleType())


class OffloadEntryLowerer(FunctionLowerer):
    """Lowers an offload block body as an accelerator entry function.

    Parameters are the capture addresses (host pointers to the enclosing
    function's frame slots); block-local declarations land in the
    accelerator frame (= local store on cross-space targets).
    """

    def __init__(self, compiler: "Compiler", offload: ast.OffloadExpr, mangled: str):
        enclosing = offload.enclosing_function  # type: ignore[attr-defined]
        super().__init__(
            compiler,
            enclosing,
            None,
            "accel",
            "",
            offload,
            mangled,
        )
        self.offload_expr = offload

    def compile(self) -> IRFunction:
        captures = self.offload_expr.captures
        param_names = [s.name for s in captures]
        self._next_reg = len(captures)
        for index, symbol in enumerate(captures):
            self.env[symbol] = CaptureVar(index)
            if symbol.kind is SymbolKind.THIS:
                self.this_symbol = symbol
                self.ptr_space[symbol] = MemSpace.HOST
            elif isinstance(symbol.type, PointerType):
                self.ptr_space[symbol] = MemSpace.HOST
        self.lower_block(self.offload_expr.body)
        self.emit(Ret(src=None))
        return IRFunction(
            name=self.mangled,
            params=param_names,
            space="accel",
            source_name=f"__offload_{self.offload_expr.offload_id}",
            duplicate_id="",
            num_regs=self._next_reg,
            frame_size=self._frame_top,
            code=self.code,
            labels=self.labels,
        )

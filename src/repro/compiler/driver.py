"""The compiler driver: source text -> :class:`repro.ir.IRProgram`.

Pipeline: parse -> sema -> layout -> lower host instances -> process the
accelerator duplication worklist (offload entries and per-signature
function duplicates) -> build domain tables -> validate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.sema import SemanticInfo, analyze
from repro.lang.types import ClassType
from repro.ir.module import IRProgram, OffloadMeta
from repro.machine.config import MachineConfig
from repro.compiler import domains as domains_mod
from repro.compiler.layout import LayoutResult, apply_layout, compute_layout
from repro.compiler.lower import FunctionLowerer, OffloadEntryLowerer


@dataclass(frozen=True)
class CompileOptions:
    """Target-independent compiler knobs.

    Attributes:
        wordaddr_mode: ``"hybrid"`` — the paper's scheme (static errors
            for inefficient byte arithmetic, cheap constant extracts);
            ``"emulate"`` — the all-byte-pointers baseline that converts
            on every dereference (Section 5's rejected alternative,
            kept for the E8 benchmark).
        default_cache: Cache kind used by offload blocks without an
            explicit ``cache(...)`` annotation: "none" (raw per-access
            DMA), "direct", "setassoc" or "victim".
        optimize: Run the IR optimisation pipeline (constant folding,
            copy propagation, dead code elimination) on every function.
        demand_load: Compile an all-outer duplicate of *every* virtual
            method into every offload's domain, marked for on-demand
            code loading — the Section 4.1 "elaboration": no
            missing-duplicate exceptions for outer receivers, at a
            first-dispatch code-upload cost per accelerator.
        dump_ir: Attach a printable IR dump to the program (debugging).
    """

    wordaddr_mode: str = "hybrid"
    default_cache: str = "none"
    optimize: bool = False
    demand_load: bool = False
    dump_ir: bool = False

    def __post_init__(self) -> None:
        if self.wordaddr_mode not in ("hybrid", "emulate"):
            raise ValueError(
                f"wordaddr_mode must be 'hybrid' or 'emulate', "
                f"got {self.wordaddr_mode!r}"
            )
        if self.default_cache not in ("none", "direct", "setassoc", "victim"):
            raise ValueError(f"unknown default cache {self.default_cache!r}")


class Compiler:
    """Compiles one analysed program for one target machine config."""

    def __init__(
        self,
        info: SemanticInfo,
        config: MachineConfig,
        options: CompileOptions,
    ):
        self.info = info
        self.config = config
        self.options = options
        word_align = config.word_size if config.word_addressed else 1
        self.layout: LayoutResult = compute_layout(info, word_align)
        self.program = IRProgram(target_name=config.name)
        self._worklist: list[tuple] = []
        self._scheduled: set[str] = set()

    # ------------------------------------------------------------ requests

    def duplicate_name(
        self, decl: ast.FuncDecl, offload: ast.OffloadExpr, sig: str
    ) -> str:
        return f"{decl.qualified_name}@{offload.offload_id}${sig}"

    def request_duplicate(
        self,
        decl: ast.FuncDecl,
        owner: Optional[ClassType],
        sig: str,
        offload: ast.OffloadExpr,
    ) -> str:
        """Queue an accelerator duplicate; returns its mangled name."""
        name = self.duplicate_name(decl, offload, sig)
        if name not in self._scheduled:
            self._scheduled.add(name)
            self._worklist.append(("dup", decl, owner, sig, offload, name))
        return name

    def request_offload_entry(self, offload: ast.OffloadExpr) -> str:
        name = f"__offload_{offload.offload_id}"
        if name not in self._scheduled:
            self._scheduled.add(name)
            self._worklist.append(("entry", offload, name))
        return name

    # -------------------------------------------------------------- passes

    def _owner_of(self, decl: ast.FuncDecl) -> Optional[ClassType]:
        if decl.owner is None:
            return None
        return self.info.classes[decl.owner]

    def _lower_host_instances(self) -> None:
        for qname in sorted(self.info.functions):
            decl = self.info.functions[qname]
            lowerer = FunctionLowerer(
                self,
                decl,
                self._owner_of(decl),
                space="host",
                sig="",
                offload=None,
                mangled=qname,
            )
            self.program.functions[qname] = lowerer.compile()

    def _drain_worklist(self) -> None:
        while self._worklist:
            job = self._worklist.pop(0)
            if job[0] == "entry":
                _, offload, name = job
                lowerer = OffloadEntryLowerer(self, offload, name)
                self.program.functions[name] = lowerer.compile()
            else:
                _, decl, owner, sig, offload, name = job
                lowerer = FunctionLowerer(
                    self,
                    decl,
                    owner,
                    space="accel",
                    sig=sig,
                    offload=offload,
                    mangled=name,
                )
                self.program.functions[name] = lowerer.compile()

    def _build_offload_meta(self) -> None:
        for offload in self.info.offloads:
            entry = self.request_offload_entry(offload)
            table = domains_mod.build_domain_table(self, offload)
            if self.options.demand_load and not self.config.shared_memory:
                domains_mod.add_demand_entries(self, offload, table)
            cache_kind = offload.cache_kind or self.options.default_cache
            self.program.offload_meta[offload.offload_id] = OffloadMeta(
                offload_id=offload.offload_id,
                entry=entry,
                cache_kind=None if cache_kind == "none" else cache_kind,
                domain=table,
                annotation_count=len(offload.domain),
                capture_names=[s.name for s in offload.captures],
            )

    def compile(self) -> IRProgram:
        apply_layout(self.program, self.layout)
        self._build_offload_meta()
        self._lower_host_instances()
        self._drain_worklist()
        if self.options.optimize:
            from repro.compiler.optimize import optimize_program

            optimize_program(self.program.functions)
        self.program.validate()
        return self.program


def compile_program(
    source: str,
    config: MachineConfig,
    options: Optional[CompileOptions] = None,
    filename: str = "<input>",
) -> IRProgram:
    """Compile OffloadMini source text for a target machine.

    Raises :class:`repro.errors.CompileError` (or a subclass) on any
    lexical, syntactic, semantic or memory-space error.
    """
    program_ast = parse_program(source, filename)
    info = analyze(program_ast)
    compiler = Compiler(info, config, options or CompileOptions())
    return compiler.compile()


def analyze_source(source: str, filename: str = "<input>") -> SemanticInfo:
    """Parse and type-check only (used by analysis tooling)."""
    return analyze(parse_program(source, filename))

"""The compiler driver: source text -> :class:`repro.ir.IRProgram`.

The pipeline itself lives in :mod:`repro.compiler.passes` as an explicit
pass manager (parse -> sema -> layout -> domains -> offload-meta ->
lower-host -> drain-duplicates -> optimize -> validate -> analyze).  This module
keeps the pieces the passes share: :class:`CompileOptions`, the
:class:`Compiler` state object (layout, duplication worklist, the
growing program) and the public :func:`compile_program` entry point,
which consults the content-addressed compile cache
(:mod:`repro.compiler.cache`) before running the passes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.sema import SemanticInfo, analyze
from repro.lang.types import ClassType
from repro.ir.module import IRProgram
from repro.machine.config import MachineConfig, resolve_target
from repro.runtime.cachekinds import CACHE_KIND_CHOICES
from repro.compiler.layout import LayoutResult, compute_layout
from repro.compiler.lower import FunctionLowerer, OffloadEntryLowerer

if TYPE_CHECKING:
    from repro.compiler.cache import CompileCache


@dataclass(frozen=True)
class CompileOptions:
    """Target-independent compiler knobs.

    Attributes:
        wordaddr_mode: ``"hybrid"`` — the paper's scheme (static errors
            for inefficient byte arithmetic, cheap constant extracts);
            ``"emulate"`` — the all-byte-pointers baseline that converts
            on every dereference (Section 5's rejected alternative,
            kept for the E8 benchmark).
        default_cache: Cache kind used by offload blocks without an
            explicit ``cache(...)`` annotation: "none" (raw per-access
            DMA), "direct", "setassoc" or "victim" (the
            :data:`repro.runtime.cachekinds.CACHE_KIND_CHOICES`
            registry).
        optimize: Run the IR optimisation pipeline (constant folding,
            copy propagation, dead code elimination) on every function.
        demand_load: Compile an all-outer duplicate of *every* virtual
            method into every offload's domain, marked for on-demand
            code loading — the Section 4.1 "elaboration": no
            missing-duplicate exceptions for outer receivers, at a
            first-dispatch code-upload cost per accelerator.
        dump_ir: Attach a printable IR dump to the program (debugging).
        analyze: Run the whole-program static analyses (DMA discipline,
            local-store footprint, outer traffic, annotation coverage)
            as a pipeline pass; findings land on the pass context.
    """

    wordaddr_mode: str = "hybrid"
    default_cache: str = "none"
    optimize: bool = False
    demand_load: bool = False
    dump_ir: bool = False
    analyze: bool = False

    def __post_init__(self) -> None:
        if self.wordaddr_mode not in ("hybrid", "emulate"):
            raise ValueError(
                f"wordaddr_mode must be 'hybrid' or 'emulate', "
                f"got {self.wordaddr_mode!r}"
            )
        if self.default_cache not in CACHE_KIND_CHOICES:
            raise ValueError(f"unknown default cache {self.default_cache!r}")


def offload_entry_name(offload_id: int) -> str:
    """Mangled name of the IR entry function for one offload block."""
    return f"__offload_{offload_id}"


class Compiler:
    """Shared state while compiling one analysed program for one target.

    The pass manager drives the pipeline; this object carries what the
    passes and the lowerers both need: the layout, the automatic
    call-graph duplication worklist, and the program being built.
    """

    def __init__(
        self,
        info: SemanticInfo,
        config: MachineConfig,
        options: CompileOptions,
    ):
        self.info = info
        self.config = config
        self.options = options
        word_align = config.word_size if config.word_addressed else 1
        self.layout: LayoutResult = compute_layout(info, word_align)
        self.program = IRProgram(target_name=config.name)
        self._worklist: deque[tuple] = deque()
        self._scheduled: set[str] = set()

    # ------------------------------------------------------------ requests

    def duplicate_name(
        self, decl: ast.FuncDecl, offload: ast.OffloadExpr, sig: str
    ) -> str:
        return f"{decl.qualified_name}@{offload.offload_id}${sig}"

    def request_duplicate(
        self,
        decl: ast.FuncDecl,
        owner: Optional[ClassType],
        sig: str,
        offload: ast.OffloadExpr,
    ) -> str:
        """Queue an accelerator duplicate; returns its mangled name."""
        name = self.duplicate_name(decl, offload, sig)
        if name not in self._scheduled:
            self._scheduled.add(name)
            self._worklist.append(("dup", decl, owner, sig, offload, name))
        return name

    def request_offload_entry(self, offload: ast.OffloadExpr) -> str:
        name = offload_entry_name(offload.offload_id)
        if name not in self._scheduled:
            self._scheduled.add(name)
            self._worklist.append(("entry", offload, name))
        return name

    # -------------------------------------------------------- pass bodies

    def _owner_of(self, decl: ast.FuncDecl) -> Optional[ClassType]:
        if decl.owner is None:
            return None
        return self.info.classes[decl.owner]

    def lower_host_instances(self) -> None:
        """Lower every source function's host instance (``lower-host``)."""
        for qname in sorted(self.info.functions):
            decl = self.info.functions[qname]
            lowerer = FunctionLowerer(
                self,
                decl,
                self._owner_of(decl),
                space="host",
                sig="",
                offload=None,
                mangled=qname,
            )
            self.program.functions[qname] = lowerer.compile()

    def drain_worklist(self) -> None:
        """Lower queued offload entries and accelerator duplicates FIFO
        until none remain (``drain-duplicates``) — lowering one duplicate
        may enqueue more."""
        worklist = self._worklist
        while worklist:
            job = worklist.popleft()
            if job[0] == "entry":
                _, offload, name = job
                lowerer = OffloadEntryLowerer(self, offload, name)
                self.program.functions[name] = lowerer.compile()
            else:
                _, decl, owner, sig, offload, name = job
                lowerer = FunctionLowerer(
                    self,
                    decl,
                    owner,
                    space="accel",
                    sig=sig,
                    offload=offload,
                    mangled=name,
                )
                self.program.functions[name] = lowerer.compile()


def compile_program(
    source: str,
    config: "MachineConfig | str",
    options: Optional[CompileOptions] = None,
    filename: str = "<input>",
    cache: Optional["CompileCache"] = None,
) -> IRProgram:
    """Compile OffloadMini source text for a target machine.

    ``config`` is a :class:`MachineConfig` or a registered target name
    (``"cell"``, ``"apu"``, ... — resolved through
    :func:`repro.machine.config.resolve_target`, unknown names rejected
    with the known-name list before any compilation work happens).

    When a compile cache is available — passed explicitly, or activated
    process-wide by pointing ``REPRO_COMPILE_CACHE`` at a directory —
    the (source, target config, options) triple is hashed and a stored
    artifact is deserialized instead of re-running the pass pipeline.
    The resolved target config — cost model included — is part of the
    key, so one cache directory serves every target without collisions.
    Cached or fresh, the returned program is a freshly built object
    graph, never shared with earlier calls.

    Raises :class:`repro.errors.CompileError` (or a subclass) on any
    lexical, syntactic, semantic or memory-space error.
    """
    from repro.compiler.cache import compile_cache_key, resolve_cache
    from repro.compiler.passes import PassManager

    config = resolve_target(config, source="compile_program")
    options = options or CompileOptions()
    cache = resolve_cache(cache)
    key = None
    if cache is not None:
        key = compile_cache_key(source, config, options)
        cached = cache.load(key)
        if cached is not None:
            return cached
    ctx = PassManager.default().run(source, config, options, filename)
    if cache is not None and key is not None:
        cache.store(key, ctx.program)
    return ctx.program


def analyze_source(source: str, filename: str = "<input>") -> SemanticInfo:
    """Parse and type-check only (used by analysis tooling)."""
    return analyze(parse_program(source, filename))

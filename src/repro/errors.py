"""Diagnostic and error types shared across the repro toolchain.

Every user-facing failure in the compiler, runtime or simulated machine is
reported through one of the exception classes defined here, each carrying
enough structured information (source span, diagnostic code) for tests and
tools to assert on precisely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class SourceLocation:
    """A position within a source buffer (1-based line and column)."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


@dataclass(frozen=True)
class SourceSpan:
    """A half-open range of source text, used to anchor diagnostics."""

    start: SourceLocation
    end: SourceLocation

    def __str__(self) -> str:
        return str(self.start)


class ReproError(Exception):
    """Base class for all errors raised by the repro toolchain."""


@dataclass
class Diagnostic:
    """A single compiler diagnostic.

    Attributes:
        code: Stable machine-readable identifier, e.g. ``"E-space-assign"``.
        message: Human-readable description.
        span: Where in the source the problem was detected, if known.
        notes: Additional explanatory lines.
    """

    code: str
    message: str
    span: Optional[SourceSpan] = None
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        where = f"{self.span}: " if self.span is not None else ""
        text = f"{where}error[{self.code}]: {self.message}"
        for note in self.notes:
            text += f"\n  note: {note}"
        return text

    def __str__(self) -> str:
        return self.render()


class CompileError(ReproError):
    """Raised when compilation fails; carries all collected diagnostics."""

    def __init__(self, diagnostics: list[Diagnostic]):
        self.diagnostics = diagnostics
        super().__init__("\n".join(d.render() for d in diagnostics))

    @classmethod
    def single(
        cls,
        code: str,
        message: str,
        span: Optional[SourceSpan] = None,
        notes: Optional[list[str]] = None,
    ) -> "CompileError":
        return cls([Diagnostic(code, message, span, list(notes or []))])

    def has_code(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)


class LexError(CompileError):
    """Raised on malformed input at the token level."""


class ParseError(CompileError):
    """Raised on syntactically invalid input."""


class TypeCheckError(CompileError):
    """Raised when semantic analysis rejects a program."""


class MachineError(ReproError):
    """Raised on illegal operations against the simulated machine."""


class MemoryFault(MachineError):
    """An out-of-bounds or misaligned access to a simulated memory space."""

    def __init__(self, message: str, space: str, address: int):
        self.space = space
        self.address = address
        super().__init__(f"{message} (space={space!r}, address={address:#x})")


class LocalStoreOverflow(MachineError):
    """Raised when an accelerator's scratch-pad memory is exhausted."""


class DmaError(MachineError):
    """Raised on invalid DMA engine usage (bad tag, bad range, ...)."""


class DmaRaceError(MachineError):
    """Raised by the dynamic race checker when transfers conflict."""

    def __init__(self, message: str, first: object = None, second: object = None):
        self.first = first
        self.second = second
        super().__init__(message)


class RuntimeTrap(ReproError):
    """Raised when an executing program performs an illegal operation."""


class MissingDuplicateError(RuntimeTrap):
    """The Figure 3 failure mode: a dynamically dispatched call found no
    pre-compiled duplicate in the inner domain.

    The exception reports the method and memory-space signature so the
    programmer can extend the ``domain(...)`` annotation, exactly as the
    paper describes ("an exception is generated, providing information which
    the programmer can use to tell the compiler which methods should be
    pre-compiled").
    """

    def __init__(self, method_name: str, duplicate_id: str, known: list[str]):
        self.method_name = method_name
        self.duplicate_id = duplicate_id
        self.known = known
        known_text = ", ".join(known) if known else "<none>"
        super().__init__(
            f"no accelerator duplicate of {method_name!r} for signature "
            f"{duplicate_id!r}; duplicates present: {known_text}. "
            f"Add the method to the offload block's domain annotation."
        )

"""Dynamic DMA race detection.

The paper notes that "correct synchronization of DMA operations is
essential for software correctness, but difficult to achieve in
practice", citing both a static analyser (Scratch, TACAS 2010) and IBM's
dynamic Race Check Library.  This module is the dynamic side: it plugs
into a :class:`repro.machine.dma.DmaEngine` as its observer and flags
conflicting in-flight transfers at issue time.

Conflict rules (two transfers that have not been separated by a
``dma_wait`` on the earlier one's tag):

* ``put``/``put`` overlapping in main memory — nondeterministic final
  contents: race.
* ``get``/``put`` or ``put``/``get`` overlapping in main memory — the
  get may observe either side of the put: race.
* ``get``/``get`` overlapping in main memory — both only read outer
  memory: safe (this is exactly the Figure 1 idiom).
* Any two transfers overlapping in the *local store* where at least one
  writes it (gets write local; puts read local) — race.

The checker can either raise :class:`repro.errors.DmaRaceError`
immediately or record :class:`RaceRecord` entries for later inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DmaRaceError
from repro.machine.dma import GET, DmaEngine, DmaRequest


def _overlap(a: tuple[int, int], b: tuple[int, int]) -> bool:
    return a[0] < b[1] and b[0] < a[1]


@dataclass(frozen=True)
class RaceRecord:
    """One detected race between two in-flight transfers."""

    earlier: DmaRequest
    later: DmaRequest
    location: str  # "outer" or "local"

    def describe(self) -> str:
        return (
            f"DMA race in {self.location} memory between "
            f"[{self.earlier.describe()}] and [{self.later.describe()}]"
        )


class DmaRaceChecker:
    """Observes a DMA engine and detects unsynchronised conflicts.

    Args:
        mode: ``"raise"`` to throw :class:`DmaRaceError` at the issuing
            call site, or ``"record"`` to accumulate findings in
            :attr:`races`.
    """

    def __init__(self, mode: str = "raise"):
        if mode not in ("raise", "record"):
            raise ValueError(f"mode must be 'raise' or 'record', got {mode!r}")
        self.mode = mode
        self.races: list[RaceRecord] = []

    def attach(self, engine: DmaEngine) -> "DmaRaceChecker":
        """Install this checker as the engine's observer."""
        engine.observer = self.on_issue
        return self

    # ------------------------------------------------------------- checks

    def _conflict(self, earlier: DmaRequest, later: DmaRequest) -> str | None:
        """Return "outer"/"local" if the pair conflicts, else None."""
        if _overlap(earlier.outer_range(), later.outer_range()):
            if not (earlier.kind == GET and later.kind == GET):
                return "outer"
        if _overlap(earlier.local_range(), later.local_range()):
            # A get writes the local store; a put reads it.  Two puts
            # from the same local bytes only read: safe.  Any get in the
            # pair makes it a write/any conflict.
            if earlier.kind == GET or later.kind == GET:
                return "local"
        return None

    def on_issue(self, request: DmaRequest, in_flight: list[DmaRequest]) -> None:
        """Engine callback: check the new request against in-flight ones."""
        for earlier in in_flight:
            location = self._conflict(earlier, request)
            if location is None:
                continue
            record = RaceRecord(earlier=earlier, later=request, location=location)
            if self.mode == "raise":
                raise DmaRaceError(record.describe(), earlier, request)
            self.races.append(record)

    def clear(self) -> None:
        """Forget recorded races."""
        self.races.clear()

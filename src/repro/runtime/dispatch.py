"""Virtual dispatch across memory spaces: the Figure 3 machinery.

On a single-memory-space machine, ``obj->f(...)`` is a vtable load plus
an indirect call.  On a machine whose accelerator cores run a different
instruction set and own private local stores, the *host* function address
found in a vtable is useless to an accelerator; instead, after the vtable
lookup the Offload runtime performs a two-stage *domain* lookup:

1. The **outer domain** is an array of known host virtual-function
   addresses.  A linear search determines whether any duplicate of the
   routine is present in local store; the matching index carries over to
   stage 2.
2. The **inner domain** row at that index lists the duplicates that were
   actually compiled — ``(duplicate id, local function address)`` pairs,
   where the id is compiler-generated metadata describing the memory-space
   combination of the arguments.  Overloads are selectively compiled, so
   there is no guarantee a full set is present.

A lookup that fails at either stage raises
:class:`repro.errors.MissingDuplicateError`, whose message tells the
programmer which method to add to the offload's ``domain`` annotation —
exactly the diagnostic behaviour the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MissingDuplicateError
from repro.machine.cores import Core
from repro.obs.trace import EV_DISPATCH_HIT, EV_DISPATCH_MISS


@dataclass(frozen=True)
class InnerEntry:
    """One compiled duplicate: (memory-space signature id, local target).

    ``target`` is whatever the execution engine uses to name a compiled
    accelerator function — the IR interpreter uses mangled function
    names; unit tests use plain strings.

    ``demand`` marks a duplicate that is *not* annotated by the
    programmer but was compiled for on-demand code loading (the
    "elaboration" Section 4.1 sketches): the first dispatch to it on a
    given accelerator pays a code-upload cost.
    """

    duplicate_id: str
    target: object
    demand: bool = False


@dataclass
class DomainTable:
    """The paired outer/inner domains for one offload block.

    Attributes:
        outer: Host function addresses (vtable slot values) with a
            compiled presence in local store.  ``outer[i]`` corresponds
            to ``inner[i]``.
        inner: One row of :class:`InnerEntry` per outer entry.
        method_names: Human-readable method name per entry, used only
            for diagnostics (the paper's "information which the
            programmer can use").
    """

    outer: list[int] = field(default_factory=list)
    inner: list[list[InnerEntry]] = field(default_factory=list)
    method_names: list[str] = field(default_factory=list)

    def add(
        self, host_address: int, method_name: str, entries: list[InnerEntry]
    ) -> None:
        """Register a virtual method and its compiled duplicates."""
        if host_address in self.outer:
            index = self.outer.index(host_address)
            self.inner[index].extend(entries)
            return
        self.outer.append(host_address)
        self.inner.append(list(entries))
        self.method_names.append(method_name)

    def __len__(self) -> int:
        return len(self.outer)

    # ------------------------------------------------------------- lookup

    def lookup_entry(
        self, core: Core, host_address: int, duplicate_id: str, now: int
    ) -> tuple[InnerEntry, int]:
        """Resolve a dynamic call on ``core``; returns (entry, time).

        Charges one ``domain_probe`` per outer-domain comparison and one
        ``inner_domain_probe`` per inner-row entry examined, so the cost
        of dispatch grows with annotation-set size — the effect that made
        the Section 4.1 restructuring worthwhile.
        """
        cost = core.cost
        perf = core.perf
        trace = core.trace
        start = now
        perf.add("dispatch.domain_lookups")
        outer_probes = 0
        for index, address in enumerate(self.outer):
            now += cost.domain_probe
            outer_probes += 1
            perf.add("dispatch.outer_probes")
            if address != host_address:
                continue
            inner_probes = 0
            for entry in self.inner[index]:
                now += cost.inner_domain_probe
                inner_probes += 1
                perf.add("dispatch.inner_probes")
                if entry.duplicate_id == duplicate_id:
                    perf.add("dispatch.domain_hits")
                    if trace.enabled:
                        trace.emit(
                            start, core.name, EV_DISPATCH_HIT,
                            (outer_probes, inner_probes, now,
                             self.method_names[index]),
                        )
                    return entry, now
            perf.add("dispatch.missing_duplicates")
            if trace.enabled:
                trace.emit(
                    start, core.name, EV_DISPATCH_MISS,
                    (outer_probes, inner_probes, now, duplicate_id),
                )
            raise MissingDuplicateError(
                self.method_names[index],
                duplicate_id,
                [e.duplicate_id for e in self.inner[index]],
            )
        perf.add("dispatch.missing_duplicates")
        if trace.enabled:
            trace.emit(
                start, core.name, EV_DISPATCH_MISS,
                (outer_probes, 0, now, duplicate_id),
            )
        raise MissingDuplicateError(
            f"<host function @{host_address:#x}>",
            duplicate_id,
            [],
        )

    def lookup(
        self, core: Core, host_address: int, duplicate_id: str, now: int
    ) -> tuple[object, int]:
        """Like :meth:`lookup_entry` but returns the target directly."""
        entry, now = self.lookup_entry(core, host_address, duplicate_id, now)
        return entry.target, now

    def try_lookup(
        self, core: Core, host_address: int, duplicate_id: str, now: int
    ) -> tuple[object | None, int]:
        """Like :meth:`lookup` but returns ``(None, time)`` on a miss."""
        try:
            return self.lookup(core, host_address, duplicate_id, now)
        except MissingDuplicateError:
            # Probe costs were charged before the raise; the caller
            # decides what a miss means (e.g. fall back to host call).
            return None, now

"""The single registry of software-cache kind names.

The paper's ``cache(...)`` offload annotation, the compiler's
``--cache`` default, :class:`repro.ir.module.OffloadMeta` and the
runtime cache factory all speak the same small vocabulary of cache
organisations.  This module is the one place that vocabulary is defined;
everything else (sema's annotation check, ``CompileOptions`` validation,
argparse choices, :func:`repro.runtime.softcache.make_cache`) imports it
instead of repeating string literals.

It is deliberately dependency-free so that both the front end
(:mod:`repro.lang.sema`) and the runtime can import it without cycles.
"""

from __future__ import annotations

#: Cache organisations with an implementation in
#: :mod:`repro.runtime.softcache`, in canonical order.
SOFT_CACHE_KINDS: tuple[str, ...] = ("direct", "setassoc", "victim")

#: The raw per-access DMA strategy (no software cache at all).
NO_CACHE: str = "none"

#: Every spelling accepted by annotations and command-line flags.
CACHE_KIND_CHOICES: tuple[str, ...] = (NO_CACHE, *SOFT_CACHE_KINDS)


def is_cache_kind(kind: str) -> bool:
    """True when ``kind`` names a known cache choice (including "none")."""
    return kind in CACHE_KIND_CHOICES


def validate_cache_kind(kind: str) -> str:
    """Return ``kind`` unchanged, or raise ``ValueError`` naming the
    accepted spellings."""
    if kind not in CACHE_KIND_CHOICES:
        raise ValueError(
            f"unknown cache kind {kind!r}; choose from "
            f"{', '.join(CACHE_KIND_CHOICES)}"
        )
    return kind

"""The Offload runtime library.

Everything an offloaded program needs at run time on a machine with
multiple memory spaces:

* software caches over outer memory (:mod:`repro.runtime.softcache`),
* portable accessor classes for bulk and streamed transfers
  (:mod:`repro.runtime.accessors`),
* the outer/inner domain machinery for virtual dispatch across memory
  spaces (:mod:`repro.runtime.dispatch`),
* a dynamic DMA race checker (:mod:`repro.runtime.racecheck`).

These classes are used two ways, mirroring the paper: directly from
hand-written "intrinsics-style" host code (Figure 1), and as the lowering
targets of the Offload compiler (Sections 3-4).
"""

from repro.runtime.accessors import (
    ArrayAccessor,
    DirectAccessor,
    StreamAccessor,
    make_array_accessor,
)
from repro.runtime.dispatch import DomainTable, InnerEntry
from repro.runtime.racecheck import DmaRaceChecker, RaceRecord
from repro.runtime.softcache import (
    DirectMappedCache,
    SetAssociativeCache,
    SoftwareCache,
    VictimCache,
    make_cache,
)

__all__ = [
    "ArrayAccessor",
    "DirectAccessor",
    "DirectMappedCache",
    "DmaRaceChecker",
    "DomainTable",
    "InnerEntry",
    "RaceRecord",
    "SetAssociativeCache",
    "SoftwareCache",
    "StreamAccessor",
    "VictimCache",
    "make_array_accessor",
    "make_cache",
]

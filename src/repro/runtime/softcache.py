"""Software caches over outer memory.

On a machine without coherent caches between an accelerator and main
memory, every outer access would otherwise pay full DMA latency.  A
software cache keeps recently used lines of main memory in a region of
the local store and services repeated accesses from there.  The paper
notes that Codeplay ship *several* cache implementations "favouring
different types of application behaviour" and that choosing between them
is a profiling decision left to the programmer; this module provides
three with genuinely different behaviour:

* :class:`DirectMappedCache` — minimum probe cost, conflict-prone.
* :class:`SetAssociativeCache` — LRU within a set, fewer conflicts at a
  slightly higher probe cost.
* :class:`VictimCache` — direct-mapped plus a small fully associative
  victim buffer that absorbs ping-pong conflict misses.

All caches are write-back with per-line dirty bits, and must be
``flush``-ed before the host may observe stores (there is no coherence —
that is the point).
"""

from __future__ import annotations

from repro.errors import MachineError
from repro.machine.cores import AcceleratorCore
from repro.obs.trace import (
    EV_CACHE_EVICT,
    EV_CACHE_FILL,
    EV_CACHE_HIT,
    EV_CACHE_MISS,
    EV_CACHE_WRITEBACK,
)
from repro.runtime.cachekinds import SOFT_CACHE_KINDS


class _Line:
    """One cache line's metadata; data lives in the local store."""

    __slots__ = ("tag", "valid", "dirty", "last_used")

    def __init__(self) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.last_used = 0


class SoftwareCache:
    """Common machinery for the concrete cache organisations.

    Args:
        core: The accelerator this cache runs on.
        local_base: Byte address in the local store where line storage
            begins (``num_lines * line_size`` bytes are used).
        line_size: Bytes per line (power of two).
        num_lines: Total number of lines (power of two).
        write_through: When True, stores propagate to main memory
            immediately (lines are never dirty).
    """

    #: DMA tag reserved for cache traffic.
    CACHE_TAG = 30

    #: Organisation name, matching the cache-kind registry; stamped on
    #: fill events so traces show which implementation served a line.
    KIND = "base"

    def __init__(
        self,
        core: AcceleratorCore,
        local_base: int,
        line_size: int = 128,
        num_lines: int = 64,
        write_through: bool = False,
    ):
        if core.dma is None or core.local_store is None:
            raise MachineError(
                "software caches require an accelerator with a local store"
            )
        if line_size & (line_size - 1) or line_size <= 0:
            raise ValueError(f"line_size must be a power of two, got {line_size}")
        if num_lines & (num_lines - 1) or num_lines <= 0:
            raise ValueError(f"num_lines must be a power of two, got {num_lines}")
        if local_base + line_size * num_lines > core.local_store.size:
            raise MachineError("cache line storage does not fit in the local store")
        self.core = core
        self.local_base = local_base
        self.line_size = line_size
        self.num_lines = num_lines
        self.write_through = write_through
        self._lines = [_Line() for _ in range(num_lines)]
        self._access_counter = 0
        # line_size is a power of two, so address decomposition is a
        # shift and a mask on the hot path.
        self._line_shift = line_size.bit_length() - 1
        self._offset_mask = line_size - 1
        # Batched counters: the probe/hit/miss bookkeeping sits on every
        # cached outer access, so increments are plain ints drained into
        # the machine-wide PerfCounters on read.
        self._probes = core.perf.slot("softcache.probes")
        self._hits = core.perf.slot("softcache.hits")
        self._misses = core.perf.slot("softcache.misses")
        #: Pre-bound event sink + track name; one attribute check per
        #: access when tracing is disabled.
        self._trace = core.trace
        self._trace_track = f"{core.name}.cache"
        #: Pre-bound metrics sink and streak state.  Streak lengths are
        #: recorded into the ``softcache.hit_streak`` /
        #: ``softcache.miss_streak`` histograms when a streak *breaks*
        #: (a hit after misses or vice versa); the final open streak of
        #: a run is deliberately left unrecorded — ending it would need
        #: a teardown hook, and dropping it is equally deterministic.
        self._metrics = core.metrics
        self._streak_hits = 0
        self._streak_misses = 0

    # -------------------------------------------------------- organisation

    def _candidate_slots(self, line_number: int) -> list[int]:
        """Slots that may hold the given main-memory line number."""
        raise NotImplementedError

    def _victim_slot(self, line_number: int) -> int:
        """Slot to evict when all candidates are occupied."""
        raise NotImplementedError

    def _resident_slot(self, line_number: int) -> int | None:
        """The slot currently holding ``line_number``, or None.

        Pure lookup — no cycle charging, no counters.  Organisations
        with a single candidate slot override this to avoid building a
        candidate list per access (the probe fast path).
        """
        lines = self._lines
        for slot in self._candidate_slots(line_number):
            line = lines[slot]
            if line.valid and line.tag == line_number:
                return slot
        return None

    def _prepare_victim(self, line_number: int, now: int) -> tuple[int, int]:
        """Choose the eviction slot, doing any time-charged shuffling.

        Organisations that move lines around on eviction (the victim
        cache) override this; the default just picks a slot.
        """
        return self._victim_slot(line_number), now

    # ------------------------------------------------------------ internals

    def _streak(self, hit: bool) -> None:
        """Advance the hit/miss streak state (metrics-enabled path only)."""
        if hit:
            if self._streak_misses:
                self._metrics.observe(
                    "softcache.miss_streak", self._trace_track,
                    self._streak_misses,
                )
                self._streak_misses = 0
            self._streak_hits += 1
        else:
            if self._streak_hits:
                self._metrics.observe(
                    "softcache.hit_streak", self._trace_track,
                    self._streak_hits,
                )
                self._streak_hits = 0
            self._streak_misses += 1

    def _slot_local_addr(self, slot: int) -> int:
        return self.local_base + slot * self.line_size

    def _touch(self, line: _Line) -> None:
        self._access_counter += 1
        line.last_used = self._access_counter

    def _probe(self, line_number: int, now: int) -> tuple[int | None, int]:
        """Look the line up; returns (slot or None, time after probe)."""
        now += self.core.cost.cache_probe
        self._probes.count += 1
        slot = self._resident_slot(line_number)
        trace = self._trace
        metrics = self._metrics
        if slot is not None:
            self._touch(self._lines[slot])
            self._hits.count += 1
            if trace.enabled:
                trace.emit(
                    now, self._trace_track, EV_CACHE_HIT,
                    (line_number * self.line_size,),
                )
            if metrics.enabled:
                self._streak(True)
            return slot, now
        self._misses.count += 1
        if trace.enabled:
            trace.emit(
                now, self._trace_track, EV_CACHE_MISS,
                (line_number * self.line_size,),
            )
        if metrics.enabled:
            self._streak(False)
        return None, now

    def _writeback(self, slot: int, now: int) -> int:
        """Write a dirty line back to main memory (blocking)."""
        line = self._lines[slot]
        start = now
        dma = self.core.dma
        assert dma is not None
        now = dma.put(
            self.CACHE_TAG,
            self._slot_local_addr(slot),
            line.tag * self.line_size,
            self.line_size,
            now,
        )
        now = dma.wait(self.CACHE_TAG, now)
        self.core.perf.add("softcache.writebacks")
        line.dirty = False
        trace = self._trace
        if trace.enabled:
            trace.emit(
                start, self._trace_track, EV_CACHE_WRITEBACK,
                (line.tag * self.line_size, now),
            )
        return now

    def _fill(self, line_number: int, now: int) -> tuple[int, int]:
        """Bring a line in from main memory; returns (slot, time)."""
        start = now
        slot, now = self._prepare_victim(line_number, now)
        line = self._lines[slot]
        trace = self._trace
        if line.valid and trace.enabled:
            trace.emit(
                now, self._trace_track, EV_CACHE_EVICT,
                (line.tag * self.line_size,),
            )
        if line.valid and line.dirty:
            now = self._writeback(slot, now)
        dma = self.core.dma
        assert dma is not None
        now = dma.get(
            self.CACHE_TAG,
            self._slot_local_addr(slot),
            line_number * self.line_size,
            self.line_size,
            now,
        )
        now = dma.wait(self.CACHE_TAG, now)
        line.tag = line_number
        line.valid = True
        line.dirty = False
        self._touch(line)
        self.core.perf.add("softcache.fills")
        if trace.enabled:
            trace.emit(
                start, self._trace_track, EV_CACHE_FILL,
                (line_number * self.line_size, now, self.KIND),
            )
        return slot, now

    def _ensure(self, line_number: int, now: int) -> tuple[int, int]:
        slot, now = self._probe(line_number, now)
        if slot is None:
            slot, now = self._fill(line_number, now)
        return slot, now

    # --------------------------------------------------------------- API

    def load(self, outer_addr: int, size: int, now: int) -> tuple[bytes, int]:
        """Read ``size`` bytes of outer memory through the cache.

        Returns ``(data, time_after)``.  Accesses may span lines.
        """
        if size <= 0:
            raise ValueError(f"load size must be positive, got {size}")
        ls = self.core.local_store
        assert ls is not None
        offset = outer_addr & self._offset_mask
        if offset + size <= self.line_size:
            # Fast path: the access is within one line and — in the
            # common case — that line is resident, so the whole load is
            # one inlined probe plus a local-store read.
            line_number = outer_addr >> self._line_shift
            now += self.core.cost.cache_probe
            self._probes.count += 1
            slot = self._resident_slot(line_number)
            trace = self._trace
            metrics = self._metrics
            if slot is not None:
                self._touch(self._lines[slot])
                self._hits.count += 1
                if trace.enabled:
                    trace.emit(
                        now, self._trace_track, EV_CACHE_HIT,
                        (line_number * self.line_size,),
                    )
                if metrics.enabled:
                    self._streak(True)
            else:
                self._misses.count += 1
                if trace.enabled:
                    trace.emit(
                        now, self._trace_track, EV_CACHE_MISS,
                        (line_number * self.line_size,),
                    )
                if metrics.enabled:
                    self._streak(False)
                slot, now = self._fill(line_number, now)
            return (
                ls.read_unchecked(self._slot_local_addr(slot) + offset, size),
                now,
            )
        parts: list[bytes] = []
        addr = outer_addr
        remaining = size
        while remaining > 0:
            line_number = addr // self.line_size
            offset = addr % self.line_size
            chunk = min(remaining, self.line_size - offset)
            slot, now = self._ensure(line_number, now)
            parts.append(
                ls.read_unchecked(self._slot_local_addr(slot) + offset, chunk)
            )
            addr += chunk
            remaining -= chunk
        return b"".join(parts), now

    def store(self, outer_addr: int, data: bytes, now: int) -> int:
        """Write bytes to outer memory through the cache; returns time."""
        if not data:
            raise ValueError("store of zero bytes")
        ls = self.core.local_store
        assert ls is not None
        offset = outer_addr & self._offset_mask
        if offset + len(data) <= self.line_size:
            # Fast path mirroring load(): single line, no memoryview.
            slot, now = self._ensure(outer_addr >> self._line_shift, now)
            ls.write_unchecked(self._slot_local_addr(slot) + offset, data)
            line = self._lines[slot]
            line.dirty = True
            if self.write_through:
                now = self._writeback(slot, now)
            return now
        addr = outer_addr
        view = memoryview(data)
        while view:
            line_number = addr // self.line_size
            offset = addr % self.line_size
            chunk = min(len(view), self.line_size - offset)
            slot, now = self._ensure(line_number, now)
            ls.write_unchecked(
                self._slot_local_addr(slot) + offset, bytes(view[:chunk])
            )
            line = self._lines[slot]
            if self.write_through:
                line.dirty = True
                now = self._writeback(slot, now)
            else:
                line.dirty = True
            addr += chunk
            view = view[chunk:]
        return now

    def flush(self, now: int) -> int:
        """Write back every dirty line; returns the time when done."""
        for slot, line in enumerate(self._lines):
            if line.valid and line.dirty:
                now = self._writeback(slot, now)
        return now

    def invalidate(self) -> None:
        """Drop all cached lines without writing anything back."""
        for line in self._lines:
            line.valid = False
            line.dirty = False
            line.tag = -1

    def hit_rate(self) -> float:
        """Fraction of probes that hit, machine-wide since last reset."""
        return self.core.perf.ratio("softcache.hits", "softcache.probes")


class DirectMappedCache(SoftwareCache):
    """Each main-memory line maps to exactly one slot."""

    KIND = "direct"

    def _candidate_slots(self, line_number: int) -> list[int]:
        return [line_number % self.num_lines]

    def _victim_slot(self, line_number: int) -> int:
        return line_number % self.num_lines

    def _resident_slot(self, line_number: int) -> int | None:
        # Single candidate: no list allocation on the probe fast path
        # (num_lines is a power of two, so % is a mask).
        slot = line_number & (self.num_lines - 1)
        line = self._lines[slot]
        if line.valid and line.tag == line_number:
            return slot
        return None


class SetAssociativeCache(SoftwareCache):
    """N-way set associative with LRU replacement within a set."""

    KIND = "setassoc"

    def __init__(self, *args: object, ways: int = 4, **kwargs: object):
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        if ways <= 0 or self.num_lines % ways:
            raise ValueError(
                f"ways ({ways}) must divide num_lines ({self.num_lines})"
            )
        self.ways = ways
        self.num_sets = self.num_lines // ways

    def _set_slots(self, line_number: int) -> list[int]:
        set_index = line_number % self.num_sets
        return [set_index * self.ways + way for way in range(self.ways)]

    def _candidate_slots(self, line_number: int) -> list[int]:
        return self._set_slots(line_number)

    def _victim_slot(self, line_number: int) -> int:
        slots = self._set_slots(line_number)
        for slot in slots:
            if not self._lines[slot].valid:
                return slot
        return min(slots, key=lambda s: self._lines[s].last_used)


class VictimCache(DirectMappedCache):
    """Direct-mapped with a small fully associative victim buffer.

    The last ``victim_slots`` slots of line storage act as the victim
    buffer; lines evicted from the direct-mapped region move there
    instead of being dropped, so alternating accesses to two conflicting
    lines stop thrashing main memory.
    """

    KIND = "victim"

    def __init__(self, *args: object, victim_slots: int = 4, **kwargs: object):
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        if not 0 < victim_slots < self.num_lines:
            raise ValueError(
                f"victim_slots ({victim_slots}) must be in 1.."
                f"{self.num_lines - 1}"
            )
        self.victim_slots = victim_slots
        self.primary_lines = self.num_lines - victim_slots

    def _primary_slot(self, line_number: int) -> int:
        return line_number % self.primary_lines

    def _victim_range(self) -> range:
        return range(self.primary_lines, self.num_lines)

    def _candidate_slots(self, line_number: int) -> list[int]:
        return [self._primary_slot(line_number), *self._victim_range()]

    def _victim_slot(self, line_number: int) -> int:
        return self._primary_slot(line_number)

    def _resident_slot(self, line_number: int) -> int | None:
        # Not the direct-mapped fast path: the primary region is modulo
        # primary_lines (not a power of two) and the victim buffer must
        # be searched too.
        lines = self._lines
        slot = line_number % self.primary_lines
        line = lines[slot]
        if line.valid and line.tag == line_number:
            return slot
        for slot in self._victim_range():
            line = lines[slot]
            if line.valid and line.tag == line_number:
                return slot
        return None

    def _prepare_victim(self, line_number: int, now: int) -> tuple[int, int]:
        # Evict from the primary slot, but first move its current
        # occupant into the victim buffer (displacing the LRU victim,
        # which is written back if dirty *before* it is overwritten).
        primary = self._primary_slot(line_number)
        if self._lines[primary].valid:
            dest = min(
                self._victim_range(), key=lambda s: self._lines[s].last_used
            )
            dest_line = self._lines[dest]
            if dest_line.valid:
                trace = self._trace
                if trace.enabled:
                    trace.emit(
                        now, self._trace_track, EV_CACHE_EVICT,
                        (dest_line.tag * self.line_size,),
                    )
                if dest_line.dirty:
                    now = self._writeback(dest, now)
            self._move_line(primary, dest)
        return primary, now

    def _move_line(self, src_slot: int, dest_slot: int) -> None:
        ls = self.core.local_store
        assert ls is not None
        data = ls.read_unchecked(self._slot_local_addr(src_slot), self.line_size)
        ls.write_unchecked(self._slot_local_addr(dest_slot), data)
        src = self._lines[src_slot]
        dst = self._lines[dest_slot]
        dst.tag, dst.valid, dst.dirty, dst.last_used = (
            src.tag,
            src.valid,
            src.dirty,
            src.last_used,
        )
        src.valid = False
        src.dirty = False
        src.tag = -1
        self.core.perf.add("softcache.victim_moves")


#: Implementation of each kind in the shared
#: :data:`repro.runtime.cachekinds.SOFT_CACHE_KINDS` registry.
CACHE_CLASSES: dict[str, type] = {
    "direct": DirectMappedCache,
    "setassoc": SetAssociativeCache,
    "victim": VictimCache,
}
assert tuple(CACHE_CLASSES) == SOFT_CACHE_KINDS, (
    "softcache implementations out of sync with the cache-kind registry"
)


def make_cache(
    kind: str,
    core: AcceleratorCore,
    local_base: int,
    line_size: int = 128,
    num_lines: int = 64,
    **kwargs: object,
) -> SoftwareCache:
    """Construct a cache by name: ``direct``, ``setassoc`` or ``victim``.

    This is the programmer-facing selection knob the paper describes:
    "The programmer must decide, based on profiling, which cache is most
    suitable for a given offload."
    """
    if kind not in CACHE_CLASSES:
        raise ValueError(
            f"unknown cache kind {kind!r}; choose from "
            f"{sorted(CACHE_CLASSES)}"
        )
    return CACHE_CLASSES[kind](core, local_base, line_size, num_lines, **kwargs)

"""Portable accessor classes.

Section 4.2 of the paper interposes an ``Array`` accessor between an
outer array and the code using it: one efficient bulk DMA pulls the whole
array into fast local store, after which indexing is a local access; on a
shared-memory system the same accessor degrades to direct access, which
is what keeps the *source* portable while the *cost* adapts to the
architecture.

This module provides:

* :class:`ArrayAccessor` — the paper's ``Array<T,N>``: bulk get on
  construction, local-cost indexing, optional ``put_back``.
* :class:`StreamAccessor` — chunked, multi-buffered streaming over a
  large outer region; with ``depth >= 2`` the next chunk's DMA overlaps
  processing of the current one (the "double buffered transfers" of
  Section 4.1).
* :class:`DirectAccessor` — the shared-memory implementation.
* :func:`make_array_accessor` — picks the right implementation for the
  core it is given, which is the portability story in one function.

Element granularity: accessors move raw bytes; callers index by element
using an ``element_size``.
"""

from __future__ import annotations

from repro.errors import MachineError
from repro.machine.cores import AcceleratorCore, Core


class ArrayAccessor:
    """Bulk-transfer accessor over ``count`` elements of outer memory.

    Args:
        core: Accelerator core to run on (must have a local store).
        outer_addr: Base byte address of the array in main memory.
        element_size: Bytes per element.
        count: Number of elements.
        local_addr: Destination base address in the local store.
        now: Issue time; the constructor performs the bulk get and the
            resulting ready time is available as :attr:`ready_time`.
        tag: DMA tag to use.
        writeback: Whether :meth:`put_back` is expected (purely
            informational; a read-only accessor never pays the put).
    """

    def __init__(
        self,
        core: AcceleratorCore,
        outer_addr: int,
        element_size: int,
        count: int,
        local_addr: int,
        now: int,
        tag: int = 28,
        writeback: bool = False,
    ):
        if core.dma is None or core.local_store is None:
            raise MachineError("ArrayAccessor requires a local store; use "
                               "make_array_accessor for portable code")
        if element_size <= 0 or count <= 0:
            raise ValueError("element_size and count must be positive")
        self.core = core
        self.outer_addr = outer_addr
        self.element_size = element_size
        self.count = count
        self.local_addr = local_addr
        self.tag = tag
        self.writeback = writeback
        self.size = element_size * count
        now = core.dma.get(tag, local_addr, outer_addr, self.size, now)
        self.ready_time = core.dma.wait(tag, now)
        core.perf.add("accessor.bulk_gets")
        core.perf.add("accessor.bytes_in", self.size)

    def _element_addr(self, index: int) -> int:
        if not 0 <= index < self.count:
            raise IndexError(
                f"accessor index {index} out of range 0..{self.count - 1}"
            )
        return self.local_addr + index * self.element_size

    def read(self, index: int, now: int) -> tuple[bytes, int]:
        """Read element ``index``; returns (bytes, time_after)."""
        ls = self.core.local_store
        assert ls is not None
        data = ls.read_unchecked(self._element_addr(index), self.element_size)
        return data, now + self.core.cost.local_access

    def write(self, index: int, data: bytes, now: int) -> int:
        """Overwrite element ``index`` in the local copy."""
        if len(data) != self.element_size:
            raise ValueError(
                f"element is {self.element_size} bytes, got {len(data)}"
            )
        ls = self.core.local_store
        assert ls is not None
        ls.write_unchecked(self._element_addr(index), data)
        return now + self.core.cost.local_access

    def put_back(self, now: int) -> int:
        """Write the whole local copy back to outer memory (blocking)."""
        dma = self.core.dma
        assert dma is not None
        now = dma.put(self.tag, self.local_addr, self.outer_addr, self.size, now)
        now = dma.wait(self.tag, now)
        self.core.perf.add("accessor.bulk_puts")
        self.core.perf.add("accessor.bytes_out", self.size)
        return now


class DirectAccessor:
    """Shared-memory implementation of the array accessor interface.

    Construction is free (no transfer); every access pays the core's
    main-memory cost.  Works on the host core and on shared-memory
    accelerators.
    """

    def __init__(
        self,
        core: Core,
        outer_addr: int,
        element_size: int,
        count: int,
        now: int,
    ):
        if element_size <= 0 or count <= 0:
            raise ValueError("element_size and count must be positive")
        self.core = core
        self.outer_addr = outer_addr
        self.element_size = element_size
        self.count = count
        self.ready_time = now
        self._memory = getattr(core, "main_memory")

    def _element_addr(self, index: int) -> int:
        if not 0 <= index < self.count:
            raise IndexError(
                f"accessor index {index} out of range 0..{self.count - 1}"
            )
        return self.outer_addr + index * self.element_size

    def read(self, index: int, now: int) -> tuple[bytes, int]:
        data = self._memory.read_unchecked(
            self._element_addr(index), self.element_size
        )
        return data, now + self.core.cost.host_mem_access

    def write(self, index: int, data: bytes, now: int) -> int:
        if len(data) != self.element_size:
            raise ValueError(
                f"element is {self.element_size} bytes, got {len(data)}"
            )
        self._memory.write_unchecked(self._element_addr(index), data)
        return now + self.core.cost.host_mem_access

    def put_back(self, now: int) -> int:
        """No-op: writes already hit main memory directly."""
        return now


def make_array_accessor(
    core: Core,
    outer_addr: int,
    element_size: int,
    count: int,
    now: int,
    local_addr: int = 0,
    tag: int = 28,
    writeback: bool = False,
) -> ArrayAccessor | DirectAccessor:
    """Build the right accessor for ``core``.

    On an accelerator with a private local store this is the bulk-DMA
    :class:`ArrayAccessor`; on the host, or on a shared-memory
    accelerator, it is a :class:`DirectAccessor`.  Calling code is
    identical either way — the paper's source-level portability.
    """
    if isinstance(core, AcceleratorCore) and core.local_store is not None:
        return ArrayAccessor(
            core, outer_addr, element_size, count, local_addr, now,
            tag=tag, writeback=writeback,
        )
    return DirectAccessor(core, outer_addr, element_size, count, now)


class StreamAccessor:
    """Multi-buffered streaming over a large outer region.

    Splits ``count`` elements into chunks of ``chunk_elements`` and hands
    them out in order.  With ``depth >= 2`` the accessor prefetches ahead:
    while the caller processes chunk *i*, the DMA engine is already
    transferring chunk *i+1* under a different tag, so transfer latency
    is hidden behind computation — the double-buffering idiom that
    uniform-type object grouping enables (Section 4.1).

    Usage::

        stream = StreamAccessor(acc, base, esize, n, local_base, depth=2)
        now = start
        for chunk in range(stream.num_chunks):
            local, count, now = stream.acquire(chunk, now)
            ... process `count` elements at local store address `local`
            now = stream.release(chunk, now)   # writes back if writeback
    """

    FIRST_TAG = 20

    def __init__(
        self,
        core: AcceleratorCore,
        outer_addr: int,
        element_size: int,
        count: int,
        local_addr: int,
        chunk_elements: int,
        depth: int = 2,
        writeback: bool = False,
    ):
        if core.dma is None or core.local_store is None:
            raise MachineError("StreamAccessor requires a local store")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if chunk_elements <= 0:
            raise ValueError("chunk_elements must be positive")
        self.core = core
        self.outer_addr = outer_addr
        self.element_size = element_size
        self.count = count
        self.local_addr = local_addr
        self.chunk_elements = chunk_elements
        self.depth = depth
        self.writeback = writeback
        self.num_chunks = -(-count // chunk_elements)
        self._chunk_bytes = chunk_elements * element_size
        self._prefetched_through = -1

    def _chunk_count(self, chunk: int) -> int:
        start = chunk * self.chunk_elements
        return min(self.chunk_elements, self.count - start)

    def _chunk_outer(self, chunk: int) -> int:
        return self.outer_addr + chunk * self._chunk_bytes

    def _chunk_local(self, chunk: int) -> int:
        return self.local_addr + (chunk % self.depth) * self._chunk_bytes

    def _chunk_tag(self, chunk: int) -> int:
        return self.FIRST_TAG + (chunk % self.depth)

    def _prefetch(self, chunk: int, now: int) -> int:
        dma = self.core.dma
        assert dma is not None
        size = self._chunk_count(chunk) * self.element_size
        if self.writeback and chunk >= self.depth:
            # The buffer being refilled may still be draining its
            # previous occupant's writeback under the same tag; fence it
            # before reuse or the get would race the put.
            now = dma.wait(self._chunk_tag(chunk), now)
        now = dma.get(
            self._chunk_tag(chunk),
            self._chunk_local(chunk),
            self._chunk_outer(chunk),
            size,
            now,
        )
        self.core.perf.add("stream.prefetches")
        self._prefetched_through = chunk
        return now

    def acquire(self, chunk: int, now: int) -> tuple[int, int, int]:
        """Make chunk ``chunk`` resident; returns (local_addr, count, time).

        Issues any outstanding prefetches up to ``chunk + depth - 1``
        first (so later transfers overlap this chunk's processing), then
        blocks until this chunk's own transfer completes.
        """
        if not 0 <= chunk < self.num_chunks:
            raise IndexError(f"chunk {chunk} out of range 0..{self.num_chunks - 1}")
        dma = self.core.dma
        assert dma is not None
        horizon = min(chunk + self.depth - 1, self.num_chunks - 1)
        next_fetch = self._prefetched_through + 1
        for ahead in range(next_fetch, horizon + 1):
            now = self._prefetch(ahead, now)
        if chunk > self._prefetched_through:
            now = self._prefetch(chunk, now)
        now = dma.wait(self._chunk_tag(chunk), now)
        return self._chunk_local(chunk), self._chunk_count(chunk), now

    def release(self, chunk: int, now: int) -> int:
        """Finish with a chunk; issues (non-blocking) writeback if asked."""
        if not self.writeback:
            return now
        dma = self.core.dma
        assert dma is not None
        size = self._chunk_count(chunk) * self.element_size
        now = dma.put(
            self._chunk_tag(chunk),
            self._chunk_local(chunk),
            self._chunk_outer(chunk),
            size,
            now,
        )
        self.core.perf.add("stream.writebacks")
        return now

    def drain(self, now: int) -> int:
        """Wait for every outstanding transfer (end of the stream)."""
        dma = self.core.dma
        assert dma is not None
        return dma.wait_all(now)

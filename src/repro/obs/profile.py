"""The offload profiler: per-offload-block aggregates over a trace.

Answers the questions the paper's Section 4 case studies keep asking of
a timeline: how long did each offload block run, how many bytes did it
move, and how much of its time was spent *stalled* on ``dma.wait`` —
the quantity double buffering exists to hide.  Also computes per
function self/total cycles from the ``vm.enter``/``vm.exit`` spans,
split between host code and each offload block.

Works on the raw event list; tolerant of ring-buffer truncation
(unmatched exits are ignored, unclosed enters are discarded).
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.obs.metrics import Histogram
from repro.obs.trace import (
    EV_DMA_WAIT,
    EV_DMA_XFER,
    EV_ENTER,
    EV_EXIT,
    EV_OFFLOAD_BEGIN,
    EV_OFFLOAD_END,
    Event,
    TraceRecorder,
)


def _accel_index(track: str) -> Optional[int]:
    """The accelerator index a track belongs to, or None for host-side
    tracks (``acc0`` / ``dma0`` / ``acc0.cache`` all map to 0)."""
    for prefix in ("acc", "dma"):
        if track.startswith(prefix):
            digits = track[len(prefix):].split(".", 1)[0]
            if digits.isdigit():
                return int(digits)
    return None


class _FuncStats:
    __slots__ = ("calls", "total", "self")

    def __init__(self) -> None:
        self.calls = 0
        self.total = 0
        self.self = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "calls": self.calls,
            "total_cycles": self.total,
            "self_cycles": self.self,
        }


class _OffloadStats:
    __slots__ = (
        "entry", "launches", "total_cycles", "bytes_get", "bytes_put",
        "dma_transfers", "dma_stall_cycles", "dma_waits", "functions",
    )

    def __init__(self, entry: str) -> None:
        self.entry = entry
        self.launches = 0
        self.total_cycles = 0
        self.bytes_get = 0
        self.bytes_put = 0
        self.dma_transfers = 0
        self.dma_stall_cycles = 0
        #: Per-wait stall distribution (only *stalling* waits count; a
        #: wait satisfied by already-complete transfers costs nothing).
        self.dma_waits = Histogram("dma_wait")
        self.functions: dict[str, _FuncStats] = {}

    def as_dict(self) -> dict:
        waits = self.dma_waits
        return {
            "entry": self.entry,
            "launches": self.launches,
            "total_cycles": self.total_cycles,
            "bytes_get": self.bytes_get,
            "bytes_put": self.bytes_put,
            "dma_transfers": self.dma_transfers,
            "dma_stall_cycles": self.dma_stall_cycles,
            "dma_wait_p50": waits.percentile(0.5) if waits.count else 0,
            "dma_wait_p90": waits.percentile(0.9) if waits.count else 0,
            "dma_wait_max": waits.max if waits.count else 0,
            "functions": {
                name: stats.as_dict()
                for name, stats in sorted(self.functions.items())
            },
        }


def offload_profile(
    events: Union[Iterable[Event], TraceRecorder],
) -> dict:
    """Aggregate a trace into a per-offload-block profile.

    Returns a plain dict (JSON-ready)::

        {
          "offloads": {offload_id: {entry, launches, total_cycles,
                                    bytes_get, bytes_put, dma_transfers,
                                    dma_stall_cycles, functions: {...}}},
          "host": {"functions": {...}},
        }

    Events on an accelerator (or its DMA channel / cache) between an
    ``offload.begin`` and its ``offload.end`` are attributed to that
    offload id; stream order is authoritative (the simulator runs
    offload threads eagerly, so windows never interleave per core).
    """
    if isinstance(events, TraceRecorder):
        events = events.events()

    offloads: dict[int, _OffloadStats] = {}
    host_functions: dict[str, _FuncStats] = {}
    # Per accelerator: (stats, begin_cycle) of the open offload window.
    open_window: dict[int, tuple[_OffloadStats, int]] = {}
    # Per track: stack of [function, enter_cycle, child_cycles].
    call_stacks: dict[str, list[list]] = {}

    def window_stats(track: str) -> Optional[_OffloadStats]:
        accel = _accel_index(track)
        if accel is None:
            return None
        window = open_window.get(accel)
        return window[0] if window is not None else None

    for _seq, cycle, track, kind, args in events:
        if kind == EV_OFFLOAD_BEGIN:
            offload_id, entry = args
            stats = offloads.get(offload_id)
            if stats is None:
                stats = offloads[offload_id] = _OffloadStats(str(entry))
            stats.launches += 1
            accel = _accel_index(track)
            if accel is not None:
                open_window[accel] = (stats, cycle)
        elif kind == EV_OFFLOAD_END:
            accel = _accel_index(track)
            window = open_window.pop(accel, None) if accel is not None else None
            if window is not None:
                stats, begin_cycle = window
                stats.total_cycles += cycle - begin_cycle
        elif kind == EV_DMA_XFER:
            stats = window_stats(track)
            if stats is not None:
                stats.dma_transfers += 1
                if args[0] == "get":
                    stats.bytes_get += args[4]
                else:
                    stats.bytes_put += args[4]
        elif kind == EV_DMA_WAIT:
            stats = window_stats(track)
            if stats is not None:
                stall = args[1] - cycle
                if stall > 0:
                    stats.dma_stall_cycles += stall
                    stats.dma_waits.observe(stall)
        elif kind == EV_ENTER:
            call_stacks.setdefault(track, []).append([args[0], cycle, 0])
        elif kind == EV_EXIT:
            stack = call_stacks.get(track)
            if not stack or stack[-1][0] != args[0]:
                continue  # truncated trace: unmatched exit
            name, enter_cycle, child_cycles = stack.pop()
            total = cycle - enter_cycle
            if stack:
                stack[-1][2] += total
            window = window_stats(track)
            table = window.functions if window is not None else host_functions
            stats_f = table.get(name)
            if stats_f is None:
                stats_f = table[name] = _FuncStats()
            stats_f.calls += 1
            stats_f.total += total
            stats_f.self += total - child_cycles

    return {
        "offloads": {
            offload_id: stats.as_dict()
            for offload_id, stats in sorted(offloads.items())
        },
        "host": {
            "functions": {
                name: stats.as_dict()
                for name, stats in sorted(host_functions.items())
            }
        },
    }


def format_profile(profile: dict, top: int = 10) -> str:
    """Render :func:`offload_profile` output as a text report."""
    lines: list[str] = []
    for offload_id, stats in profile["offloads"].items():
        stall = stats["dma_stall_cycles"]
        total = stats["total_cycles"]
        share = (100.0 * stall / total) if total else 0.0
        lines.append(
            f"offload {offload_id} ({stats['entry']}): "
            f"{stats['launches']} launch(es), {total} cycles"
        )
        lines.append(
            f"  dma: {stats['dma_transfers']} transfer(s), "
            f"{stats['bytes_get']}B in, {stats['bytes_put']}B out, "
            f"{stall} stall cycles ({share:.1f}% of block)"
        )
        if stall:
            lines.append(
                f"  dma wait: p50~{stats['dma_wait_p50']} "
                f"p90~{stats['dma_wait_p90']} "
                f"max={stats['dma_wait_max']} cycles"
            )
        lines.extend(_function_rows(stats["functions"], top))
    host = profile["host"]["functions"]
    if host:
        lines.append("host:")
        lines.extend(_function_rows(host, top))
    return "\n".join(lines) + "\n"


def _function_rows(functions: dict, top: int) -> list[str]:
    rows = sorted(
        functions.items(), key=lambda kv: (-kv[1]["self_cycles"], kv[0])
    )[:top]
    out = []
    if rows:
        out.append(
            f"  {'function':40s} {'calls':>7s} {'self':>10s} {'total':>10s}"
        )
    for name, stats in rows:
        out.append(
            f"  {name:40s} {stats['calls']:7d} "
            f"{stats['self_cycles']:10d} {stats['total_cycles']:10d}"
        )
    return out

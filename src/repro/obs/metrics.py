"""Typed metrics: gauges and fixed-bucket histograms over simulated runs.

:class:`~repro.machine.perf.PerfCounters` answer "how many"; the trace
(:mod:`repro.obs.trace`) answers "when".  This module answers the
*distributional* questions in between — how big are the DMA transfers,
how long does a core stall per wait, how deep do the ready queues get,
how streaky is the software cache — without retaining per-event state.

A :class:`MetricsHub` attached to a machine
(:meth:`repro.machine.machine.Machine.attach_metrics`) collects:

* **histograms** — fixed-bucket, integer-valued distributions.  The
  bucket bounds are compile-time constants, so two runs (or two
  engines) that observe the same simulated values produce *identical*
  histogram state — the property that makes run reports
  (:mod:`repro.obs.report`) byte-comparable.
* **gauges** — last-written point-in-time values (heap high water,
  dropped trace events, queue high water).

Instrumentation sites follow the exact pattern the tracing layer
established in PR 3: pre-bind the hub (machines default to the shared
:data:`NULL_METRICS`) and guard every observation with a single
``if metrics.enabled:`` attribute check, so the disabled path costs one
attribute load per site.  ``benchmarks/test_obs_overhead.py`` includes
these guards in its <3% budget.

Every metric family lives in the :data:`METRICS` registry; the table in
``docs/observability.md`` mirrors it and a test keeps the two in sync
(the same contract ``repro.analysis.diagnostics.CODES`` has with its
docs table).  Families that exist per unit (one histogram per DMA
channel, per software cache) are stored under ``family[label]`` keys,
e.g. ``dma.xfer_bytes[dma0]``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, NamedTuple, Optional


class MetricInfo(NamedTuple):
    """Registry entry for one metric family."""

    kind: str  # "histogram" or "gauge"
    labelled: bool  # True when instances exist per unit (dma0, acc1.cache)
    description: str


#: The metric-name registry: single source of truth for what the
#: simulator records.  ``docs/observability.md`` carries a mirror table
#: kept in sync by ``tests/obs/test_metrics.py``.
METRICS: dict[str, MetricInfo] = {
    "dma.xfer_bytes": MetricInfo(
        "histogram", True, "DMA transfer sizes in bytes, per channel"
    ),
    "dma.wait_cycles": MetricInfo(
        "histogram", True,
        "Cycles a core stalled per blocking DMA wait, per channel",
    ),
    "sched.queue_occupancy": MetricInfo(
        "histogram", False,
        "Ready-queue occupancy observed at each job start",
    ),
    "sched.stall_cycles": MetricInfo(
        "histogram", False,
        "Host backpressure stall durations in cycles",
    ),
    "softcache.hit_streak": MetricInfo(
        "histogram", True,
        "Consecutive-hit run lengths at each streak break, per cache",
    ),
    "softcache.miss_streak": MetricInfo(
        "histogram", True,
        "Consecutive-miss run lengths at each streak break, per cache",
    ),
    "offload.body_cycles": MetricInfo(
        "histogram", False,
        "Offload block body durations in cycles (upload excluded)",
    ),
    "heap.allocated_bytes": MetricInfo(
        "gauge", False, "Main-memory heap bytes allocated by the end of the run"
    ),
    "trace.dropped_events": MetricInfo(
        "gauge", False, "Trace events lost to ring wrap-around"
    ),
    "sched.queue_high_water": MetricInfo(
        "gauge", False, "Deepest ready-queue occupancy seen over the run"
    ),
    # The farm lane (:mod:`repro.farm`): host-level batch-execution
    # metrics recorded by the driver, not the simulator.  They are
    # wall-clock quantities, so they live in farm batch summaries —
    # never in per-job RunReports, which stay byte-deterministic.
    "farm.job_wall_ms": MetricInfo(
        "histogram", False,
        "Host wall-clock per completed farm job in milliseconds",
    ),
    "farm.queue_occupancy": MetricInfo(
        "histogram", False,
        "Pending farm jobs observed at each dispatch to a worker",
    ),
    "farm.worker_jobs": MetricInfo(
        "gauge", True, "Jobs completed per farm worker over one batch"
    ),
    "farm.worker_busy_ms": MetricInfo(
        "gauge", True,
        "Host milliseconds each farm worker spent executing jobs",
    ),
    "farm.compiles": MetricInfo(
        "gauge", False,
        "Full compile-pipeline runs the batch paid (cold compiles)",
    ),
    "farm.warm_jobs": MetricInfo(
        "gauge", False,
        "Jobs served entirely from warm programs (zero compile/codegen)",
    ),
}

#: Shared bucket upper bounds (inclusive), in whatever unit the family
#: uses (bytes, cycles, jobs, probes).  Power-of-two-ish spacing covers
#: single-word transfers through megacycle stalls in 16 buckets; one
#: implicit overflow bucket catches the rest.  These are part of the
#: report schema: changing them changes every serialized histogram, so
#: bump :data:`repro.obs.report.REPORT_SCHEMA_VERSION` alongside.
DEFAULT_BUCKET_BOUNDS: tuple[int, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
    1024, 4096, 16384, 65536, 262144, 1048576,
)


def metric_key(family: str, label: Optional[str]) -> str:
    """The storage key of one metric instance: ``family`` or
    ``family[label]``."""
    return family if label is None else f"{family}[{label}]"


def family_of(key: str) -> str:
    """Invert :func:`metric_key`: strip a ``[label]`` suffix if present."""
    return key.split("[", 1)[0]


class Histogram:
    """A fixed-bucket integer histogram.

    Buckets are half-open ranges ending at each bound in ``bounds``
    (inclusive), plus one overflow bucket.  Alongside the bucket counts
    it tracks exact ``count``/``total``/``min``/``max``, so coarse
    buckets never lose the extremes — :meth:`percentile` clamps its
    bucket-bound estimate to the observed max.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, bounds: Iterable[int] = DEFAULT_BUCKET_BOUNDS
    ):
        self.name = name
        self.bounds = tuple(bounds)
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram bounds must be strictly increasing, "
                f"got {self.bounds!r}"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0

    def observe(self, value: int) -> None:
        """Record one sample.  Hot path: one bisect, one list store."""
        self.counts[bisect_left(self.bounds, value)] += 1
        if self.count == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += 1
        self.total += value

    def percentile(self, q: float) -> int:
        """The q-quantile (0 < q <= 1) estimated from the buckets.

        Returns the upper bound of the bucket containing the quantile,
        clamped to the exact observed max (so ``percentile(1.0)`` is
        always the true maximum); 0 when empty.
        """
        if self.count == 0:
            return 0
        target = max(1, -(-int(self.count * q * 1000) // 1000))  # ceil
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= target:
                if index >= len(self.bounds):
                    return self.max
                return min(self.bounds[index], self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """A JSON-ready snapshot.  Buckets are ``[bound, count]`` pairs
        with zero buckets omitted (the overflow bucket's bound is -1)."""
        buckets = [
            [self.bounds[i] if i < len(self.bounds) else -1, c]
            for i, c in enumerate(self.counts)
            if c
        ]
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.5),
            "p90": self.percentile(0.9),
            "buckets": buckets,
        }

    def __repr__(self) -> str:
        return (
            f"Histogram(name={self.name!r}, count={self.count}, "
            f"min={self.min}, max={self.max})"
        )


class NullMetrics:
    """The disabled hub: every machine's default.

    Instrumentation sites pre-bind a hub reference and guard each
    observation with ``if metrics.enabled:``, so with this hub attached
    the whole metrics subsystem costs one attribute check per site.
    """

    enabled = False

    def observe(self, family: str, label: Optional[str], value: int) -> None:
        """Discard the sample (never called on guarded sites)."""

    def gauge_set(self, family: str, value: int,
                  label: Optional[str] = None) -> None:
        """Discard the gauge write."""

    def histograms_dict(self) -> dict:
        return {}

    def gauges_dict(self) -> dict:
        return {}

    def as_dict(self) -> dict:
        return {"gauges": {}, "histograms": {}}


#: The shared disabled hub.  Never mutated; safe to alias widely.
NULL_METRICS = NullMetrics()


class MetricsHub:
    """A bag of named histograms and gauges for one run.

    Attach to a machine with
    :meth:`repro.machine.machine.Machine.attach_metrics` *before*
    building an execution engine, exactly like a trace recorder.
    """

    enabled = True

    def __init__(self) -> None:
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, int] = {}

    # -------------------------------------------------------------- writing

    def observe(self, family: str, label: Optional[str], value: int) -> None:
        """Record one histogram sample under ``family`` (+ ``label``)."""
        assert METRICS.get(family, _MISSING).kind == "histogram", family
        key = metric_key(family, label)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(key)
        histogram.observe(value)

    def gauge_set(self, family: str, value: int,
                  label: Optional[str] = None) -> None:
        """Set a gauge to ``value`` (last write wins)."""
        assert METRICS.get(family, _MISSING).kind == "gauge", family
        self._gauges[metric_key(family, label)] = value

    # --------------------------------------------------------------- reading

    def histogram(self, family: str,
                  label: Optional[str] = None) -> Optional[Histogram]:
        """The histogram for ``family`` (+ ``label``), or None."""
        return self._histograms.get(metric_key(family, label))

    def gauge(self, family: str, label: Optional[str] = None) -> Optional[int]:
        """The gauge value, or None when never set."""
        return self._gauges.get(metric_key(family, label))

    def histograms_dict(self) -> dict:
        """All histograms as plain dicts, sorted by key."""
        return {
            key: h.as_dict() for key, h in sorted(self._histograms.items())
        }

    def gauges_dict(self) -> dict:
        """All gauges, sorted by key."""
        return dict(sorted(self._gauges.items()))

    def as_dict(self) -> dict:
        return {
            "gauges": self.gauges_dict(),
            "histograms": self.histograms_dict(),
        }

    def __repr__(self) -> str:
        return (
            f"MetricsHub(histograms={len(self._histograms)}, "
            f"gauges={len(self._gauges)})"
        )


#: Sentinel for registry lookups in asserts (unknown family -> loud fail).
_MISSING = MetricInfo("<unknown>", False, "")


# ------------------------------------------------------------ derived metrics


def derived_metrics(
    counters: dict[str, int],
    cycles: int,
    instructions: int = 0,
    sched: Optional[dict] = None,
    accelerators: int = 0,
) -> dict[str, float]:
    """Post-run metrics computed from counters and scheduler stats.

    All inputs are simulated integers, so the rounded floats are
    deterministic across engines and repeats.  Quantities whose inputs
    are absent (no DMA on unified-memory targets, no uploads in compat
    mode) are omitted rather than reported as zero.

    ``sched`` accepts either the ``SchedStats.as_dict()`` form or a
    ``SchedStats`` instance directly.
    """
    if sched is not None and not isinstance(sched, dict):
        sched = sched.as_dict()
    out: dict[str, float] = {}
    if cycles > 0:
        dma_bytes = counters.get("dma.bytes_get", 0) + counters.get(
            "dma.bytes_put", 0
        )
        out["outer_bus_bytes_per_kcycle"] = round(
            dma_bytes * 1000 / cycles, 4
        )
    if instructions > 0 and cycles > 0:
        out["cycles_per_instruction"] = round(cycles / instructions, 4)
    if sched is not None and cycles > 0 and accelerators > 0:
        busy = sched.get("busy_cycles", 0)
        out["accelerator_utilization_pct"] = round(
            100.0 * busy / (cycles * accelerators), 4
        )
        uploads = sched.get("uploads", 0)
        jobs = sched.get("jobs", 0)
        if uploads > 0:
            # Jobs served per cold code upload: the quantity locality
            # placement maximises (greedy re-uploads every rotation).
            out["upload_amortization"] = round(jobs / uploads, 4)
    return out

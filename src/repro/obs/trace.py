"""Cycle-accurate event recording.

Events are plain tuples ``(seq, cycle, track, kind, args)``:

* ``seq`` — global emission order (monotonic int), so exports are
  stable even when two events share a cycle stamp.
* ``cycle`` — *simulated* time on the emitting core's timeline.  The
  one exception is :data:`EV_PASS` (compile-pass spans), which is
  stamped with wall-clock microseconds because compilation happens
  outside simulated time.
* ``track`` — the timeline the event belongs to: a core name
  (``host``, ``acc0``), a DMA channel (``dma0``), a cache
  (``acc0.cache``) or ``compile``.
* ``kind`` — one of the ``EV_*`` constants below.
* ``args`` — a kind-specific tuple (schemas in :data:`EVENT_SCHEMAS`).

Everything in an event is an int or a str, so traces serialize
canonically and two engines that behave identically produce
byte-identical exports — the property ``tests/test_vm_equivalence.py``
enforces.

The recorder is a preallocated ring buffer: when more events are
emitted than ``capacity``, the oldest are overwritten and
:attr:`TraceRecorder.dropped` counts the loss (exports surface it
rather than silently truncating).
"""

from __future__ import annotations

from typing import Iterable, Optional

#: One event: (seq, cycle, track, kind, args).
Event = tuple[int, int, str, str, tuple]

# --------------------------------------------------------------- event kinds

#: One DMA transfer, issue through completion.
#: args: (kind, tag, local_addr, outer_addr, size, complete_cycle, serial)
EV_DMA_XFER = "dma.xfer"
#: A core blocking on a tag group.  args: (tag, resume_cycle); tag is -1
#: for ``wait_all``.
EV_DMA_WAIT = "dma.wait"

#: Software-cache probe outcomes.  args: (line_base_addr,)
EV_CACHE_HIT = "cache.hit"
EV_CACHE_MISS = "cache.miss"
#: A line brought in from main memory.
#: args: (line_base_addr, end_cycle, organisation)
EV_CACHE_FILL = "cache.fill"
#: A dirty line written back.  args: (line_base_addr, end_cycle)
EV_CACHE_WRITEBACK = "cache.writeback"
#: A valid line displaced.  args: (line_base_addr,)
EV_CACHE_EVICT = "cache.evict"

#: One Figure 3 domain lookup that found its duplicate.
#: args: (outer_probes, inner_probes, end_cycle, method_name)
EV_DISPATCH_HIT = "dispatch.hit"
#: A lookup that raised MissingDuplicateError.
#: args: (outer_probes, inner_probes, end_cycle, duplicate_id)
EV_DISPATCH_MISS = "dispatch.miss"
#: On-demand code upload of a non-annotated duplicate.
#: args: (function, code_bytes, end_cycle)
EV_CODE_UPLOAD = "vm.code_upload"

#: Function activation on a core.  args: (function,)
EV_ENTER = "vm.enter"
EV_EXIT = "vm.exit"
#: Frame boundary: entry into a function matching the recorder's
#: ``frame_marker``.  args: (function,)
EV_FRAME = "vm.frame"

#: Offload block running on an accelerator.  args: (offload_id, entry)
EV_OFFLOAD_BEGIN = "offload.begin"
EV_OFFLOAD_END = "offload.end"
#: Host-side issue / join of an offload.  args: (offload_id, accel_index,
#: handle) / (handle, finish_cycle)
EV_OFFLOAD_LAUNCH = "offload.launch"
EV_OFFLOAD_JOIN = "offload.join"

#: Scheduler lane (explicit scheduling mode only; the ``sched`` track).
#: Host-side submission of one job to the scheduler.
#: args: (job, offload_id, policy)
EV_SCHED_SUBMIT = "sched.submit"
#: The scheduler's placement decision for one job.
#: args: (job, accel_index, queued)
EV_SCHED_DISPATCH = "sched.dispatch"
#: Host blocked by admission control on a full ready queue.
#: args: (accel_index, resume_cycle)
EV_SCHED_STALL = "sched.stall"
#: Cold code-image upload before a block's first run on an accelerator
#: (emitted on the accelerator's track).
#: args: (offload_id, code_bytes, end_cycle)
EV_SCHED_UPLOAD = "sched.upload"

#: One compile pass (wall-clock!).  args: (pass_name, duration_us, ran)
EV_PASS = "pass.span"

#: One static analysis over one function/offload (wall-clock, like
#: :data:`EV_PASS`).  args: (analysis, function, duration_us)
EV_ANALYSIS = "analysis.span"

#: Argument schema per kind, for documentation and validation.
EVENT_SCHEMAS: dict[str, tuple[str, ...]] = {
    EV_DMA_XFER: (
        "kind", "tag", "local_addr", "outer_addr", "size",
        "complete_cycle", "serial",
    ),
    EV_DMA_WAIT: ("tag", "resume_cycle"),
    EV_CACHE_HIT: ("line_base_addr",),
    EV_CACHE_MISS: ("line_base_addr",),
    EV_CACHE_FILL: ("line_base_addr", "end_cycle", "organisation"),
    EV_CACHE_WRITEBACK: ("line_base_addr", "end_cycle"),
    EV_CACHE_EVICT: ("line_base_addr",),
    EV_DISPATCH_HIT: ("outer_probes", "inner_probes", "end_cycle", "method"),
    EV_DISPATCH_MISS: (
        "outer_probes", "inner_probes", "end_cycle", "duplicate_id",
    ),
    EV_CODE_UPLOAD: ("function", "code_bytes", "end_cycle"),
    EV_ENTER: ("function",),
    EV_EXIT: ("function",),
    EV_FRAME: ("function",),
    EV_OFFLOAD_BEGIN: ("offload_id", "entry"),
    EV_OFFLOAD_END: ("offload_id", "entry"),
    EV_OFFLOAD_LAUNCH: ("offload_id", "accel_index", "handle"),
    EV_OFFLOAD_JOIN: ("handle", "finish_cycle"),
    EV_SCHED_SUBMIT: ("job", "offload_id", "policy"),
    EV_SCHED_DISPATCH: ("job", "accel_index", "queued"),
    EV_SCHED_STALL: ("accel_index", "resume_cycle"),
    EV_SCHED_UPLOAD: ("offload_id", "code_bytes", "end_cycle"),
    EV_PASS: ("pass_name", "duration_us", "ran"),
    EV_ANALYSIS: ("analysis", "function", "duration_us"),
}


class NullRecorder:
    """The disabled recorder: every machine's default.

    Instrumentation sites pre-bind a recorder reference and guard each
    emission with ``if trace.enabled:``, so with this recorder attached
    the whole tracing subsystem costs one attribute check per site.
    """

    enabled = False
    #: No frame-marker matching when disabled.
    frame_marker: Optional[str] = None

    def emit(self, cycle: int, track: str, kind: str, args: tuple = ()) -> None:
        """Discard the event (never called on guarded sites)."""

    def events(self) -> list[Event]:
        return []

    def __len__(self) -> int:
        return 0


#: The shared disabled recorder.  Never mutated; safe to alias widely.
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """A preallocated ring buffer of typed, cycle-stamped events.

    Args:
        capacity: Ring size in events.  Oldest events are overwritten
            once exceeded; :attr:`dropped` counts the overwritten ones.
        frame_marker: Function-name suffix whose activations also emit
            :data:`EV_FRAME` (frame boundaries in the game workloads,
            where each frame is one ``doFrame`` call).  ``None``
            disables frame marking.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 1 << 20,
        frame_marker: Optional[str] = "doFrame",
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._buf: list[Optional[Event]] = [None] * capacity
        self._n = 0
        self.frame_marker = frame_marker

    # -------------------------------------------------------------- emission

    def emit(self, cycle: int, track: str, kind: str, args: tuple = ()) -> None:
        """Record one event.  Hot path: one tuple build, one list store."""
        n = self._n
        self._buf[n % self._capacity] = (n, cycle, track, kind, args)
        self._n = n + 1

    # --------------------------------------------------------------- reading

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def dropped(self) -> int:
        """Events overwritten by ring wrap-around."""
        return max(0, self._n - self._capacity)

    def __len__(self) -> int:
        """Events currently held (≤ capacity)."""
        return min(self._n, self._capacity)

    def events(self) -> list[Event]:
        """The retained events in emission order (a copy)."""
        n, cap = self._n, self._capacity
        if n <= cap:
            return list(self._buf[:n])  # type: ignore[arg-type]
        head = n % cap
        return list(self._buf[head:]) + list(self._buf[:head])  # type: ignore[arg-type]

    def clear(self) -> None:
        """Forget every event (capacity is retained)."""
        self._buf = [None] * self._capacity
        self._n = 0

    def __repr__(self) -> str:
        return (
            f"TraceRecorder(events={len(self)}, dropped={self.dropped}, "
            f"capacity={self._capacity})"
        )


def tracks(events: Iterable[Event]) -> list[str]:
    """Distinct track names, sorted (deterministic export order)."""
    return sorted({event[2] for event in events})

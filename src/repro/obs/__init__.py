"""Observability: event tracing, timeline export, offload profiling.

The simulator's :class:`~repro.machine.perf.PerfCounters` answer *how
much* happened over a whole run; this package answers *when*.  A
:class:`~repro.obs.trace.TraceRecorder` attached to a machine
(:meth:`repro.machine.machine.Machine.attach_trace`) collects typed,
cycle-stamped events from every layer — DMA transfers and waits,
software-cache probes, domain-dispatch searches, demand code uploads,
function enter/exit, offload-block begin/end, compile-pass spans — into
a preallocated ring buffer of plain tuples.  Exporters render the
buffer as a Chrome/Perfetto ``trace_event`` JSON file, a flat text
timeline, or a per-offload-block profile.

The default recorder on every machine is the shared
:data:`~repro.obs.trace.NULL_RECORDER`; with it, every instrumentation
site costs a single attribute check (``if trace.enabled:``), guarded by
``benchmarks/test_obs_overhead.py``.
"""

from repro.obs.trace import (  # noqa: F401
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
)
from repro.obs.export import (  # noqa: F401
    chrome_trace,
    chrome_trace_json,
    format_timeline,
    validate_chrome_trace,
)
from repro.obs.profile import format_profile, offload_profile  # noqa: F401

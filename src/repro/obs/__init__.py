"""Observability: event tracing, timeline export, offload profiling.

The simulator's :class:`~repro.machine.perf.PerfCounters` answer *how
much* happened over a whole run; this package answers *when*.  A
:class:`~repro.obs.trace.TraceRecorder` attached to a machine
(:meth:`repro.machine.machine.Machine.attach_trace`) collects typed,
cycle-stamped events from every layer — DMA transfers and waits,
software-cache probes, domain-dispatch searches, demand code uploads,
function enter/exit, offload-block begin/end, compile-pass spans — into
a preallocated ring buffer of plain tuples.  Exporters render the
buffer as a Chrome/Perfetto ``trace_event`` JSON file, a flat text
timeline, or a per-offload-block profile.

Alongside traces, :mod:`repro.obs.metrics` provides typed histograms
and gauges (a :class:`~repro.obs.metrics.MetricsHub` attached via
:meth:`~repro.machine.machine.Machine.attach_metrics`), and
:mod:`repro.obs.report` snapshots a whole run — counters, histograms,
scheduler stats, derived metrics — into a canonical, versioned JSON
:class:`~repro.obs.report.RunReport` that ``repro.tools.report`` can
render, diff and trend.

The default recorder on every machine is the shared
:data:`~repro.obs.trace.NULL_RECORDER`; with it, every instrumentation
site costs a single attribute check (``if trace.enabled:``), guarded by
``benchmarks/test_obs_overhead.py``.  The default metrics sink,
:data:`~repro.obs.metrics.NULL_METRICS`, follows the same pattern.
"""

from repro.obs.trace import (  # noqa: F401
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
)
from repro.obs.export import (  # noqa: F401
    chrome_trace,
    chrome_trace_json,
    format_timeline,
    validate_chrome_trace,
)
from repro.obs.metrics import (  # noqa: F401
    METRICS,
    NULL_METRICS,
    Histogram,
    MetricsHub,
    NullMetrics,
    derived_metrics,
)
from repro.obs.profile import format_profile, offload_profile  # noqa: F401
from repro.obs.report import (  # noqa: F401
    REPORT_KIND,
    REPORT_SCHEMA_VERSION,
    ReportError,
    RunReport,
    collect_report,
    diff_reports,
    load_report,
    report_json,
    save_report,
    validate_report,
)

"""Canonical run reports: one versioned JSON snapshot per execution.

A :class:`RunReport` captures everything a run produced that is worth
comparing over time — workload/target/engine/policy identity, simulated
cycle and instruction totals, the machine-wide
:class:`~repro.machine.perf.PerfCounters`, every histogram and gauge
from an attached :class:`~repro.obs.metrics.MetricsHub`, scheduler
statistics, derived metrics (bus bandwidth, utilization, CPI), and the
fingerprints of any diagnostics.  Every simulated quantity in the
report is an integer or a deterministically rounded float, so
:func:`report_json` is **byte-identical** across the reference,
compiled and codegen engines and across repeat runs; only
``wall_seconds`` (opt-in, default 0) is host-dependent.

The JSON form is canonical — sorted keys, no whitespace — which makes
reports diffable as artifacts: commit one as a baseline and let CI run
:mod:`repro.tools.report` ``diff`` against it.  :func:`diff_reports`
flattens both reports into dotted metric paths
(``counters.dma.gets``, ``histograms.dma.wait_cycles[dma0].p90``,
``sched.stalls``) and compares each with a per-metric tolerance
(default: exact).  ``wall_seconds`` is exempt by default — wall clock
is the one quantity the simulator does not control.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.obs.metrics import derived_metrics

#: Bump when the report layout changes shape (adding optional fields
#: is allowed without a bump; renaming or retyping is not).
REPORT_SCHEMA_VERSION = 1

#: The ``kind`` discriminator in every report file.
REPORT_KIND = "repro-run-report"

#: Metric paths whose differences are informational by default:
#: wall clock is host noise, not a simulated quantity.
DEFAULT_IGNORE = ("wall_seconds",)


@dataclass
class RunReport:
    """One run, snapshotted for comparison.

    All fields except ``wall_seconds`` derive from the deterministic
    simulation.  ``histograms``/``gauges`` are empty when no
    :class:`~repro.obs.metrics.MetricsHub` was attached — counters-only
    reports are still valid and diffable.
    """

    workload: str
    target: str
    engine: str
    policy: str
    queue_depth: int
    simulated_cycles: int
    host_cycles: int
    instructions: int
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    derived: dict = field(default_factory=dict)
    sched: dict = field(default_factory=dict)
    #: Sorted diagnostic fingerprints (stable finding identity).
    diagnostics: list = field(default_factory=list)
    wall_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "kind": REPORT_KIND,
            "schema_version": REPORT_SCHEMA_VERSION,
            "workload": self.workload,
            "target": self.target,
            "engine": self.engine,
            "policy": self.policy,
            "queue_depth": self.queue_depth,
            "simulated_cycles": self.simulated_cycles,
            "host_cycles": self.host_cycles,
            "instructions": self.instructions,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                k: self.histograms[k] for k in sorted(self.histograms)
            },
            "derived": dict(sorted(self.derived.items())),
            "sched": self.sched,
            "diagnostics": sorted(self.diagnostics),
            "wall_seconds": round(self.wall_seconds, 6),
        }


def collect_report(
    result,
    workload: str,
    hub=None,
    wall_seconds: float = 0.0,
    engine: str = "",
    target: str = "",
) -> RunReport:
    """Build a :class:`RunReport` from a finished run.

    Args:
        result: The :class:`~repro.vm.interpreter.RunResult`.
        workload: Human-readable workload name (e.g. ``"figure2"``).
        hub: The :class:`~repro.obs.metrics.MetricsHub` attached for
            the run, if any; its histograms and gauges are embedded.
        wall_seconds: Host wall-clock of the run.  Leave at 0 when the
            report must be byte-reproducible.
        engine: Engine name (``RunResult`` does not record it).
        target: Registry target name; defaults to the machine's config
            name (e.g. ``"cell-like"`` rather than ``"cell"``).

    Gauges that describe end-of-run state are computed here rather
    than pushed through the hub: ``heap.allocated_bytes`` from the
    machine's allocator, ``trace.dropped_events`` from an attached
    recorder, ``sched.queue_high_water`` from the scheduler stats.
    """
    # Imported here, not at module scope: the diagnostics module pulls
    # in the frontend, which pulls in the machine layer, which imports
    # repro.obs.metrics — a cycle at package-import time.
    from repro.analysis.diagnostics import fingerprint

    machine = result.machine
    sched = result.sched
    counters = machine.perf.as_dict() if machine is not None else {}
    gauges: dict = {}
    if machine is not None:
        gauges["heap.allocated_bytes"] = machine.heap.used
        if machine.trace.enabled:
            gauges["trace.dropped_events"] = machine.trace.dropped
    if sched is not None:
        gauges["sched.queue_high_water"] = sched.queue_high_water
    if hub is not None and hub.enabled:
        gauges.update(hub.gauges_dict())
    cycles = result.cycles
    accelerators = len(machine.accelerators) if machine is not None else 0
    return RunReport(
        workload=workload,
        target=target
        or (machine.config.name if machine is not None else ""),
        engine=engine,
        policy=sched.policy if sched is not None else "",
        queue_depth=sched.queue_depth if sched is not None else 0,
        simulated_cycles=cycles,
        host_cycles=result.host_cycles,
        instructions=result.instructions,
        counters=counters,
        gauges=dict(sorted(gauges.items())),
        histograms=(
            hub.histograms_dict() if hub is not None and hub.enabled else {}
        ),
        derived=derived_metrics(
            counters, cycles, result.instructions, sched, accelerators
        ),
        sched=sched.as_dict(cycles) if sched is not None else {},
        diagnostics=sorted(fingerprint(f) for f in result.diagnostics),
        wall_seconds=wall_seconds,
    )


# ----------------------------------------------------------- serialization


def report_json(report: RunReport) -> str:
    """Canonical JSON: sorted keys, no whitespace, trailing newline."""
    return (
        json.dumps(report.as_dict(), sort_keys=True, separators=(",", ":"))
        + "\n"
    )


def save_report(report: RunReport, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(report_json(report))


def validate_report(obj: object) -> list[str]:
    """Problems with a loaded report dict; empty list means valid."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"report must be a JSON object, got {type(obj).__name__}"]
    if obj.get("kind") != REPORT_KIND:
        problems.append(
            f"kind must be {REPORT_KIND!r}, got {obj.get('kind')!r}"
        )
    version = obj.get("schema_version")
    if version != REPORT_SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {REPORT_SCHEMA_VERSION}, got {version!r}"
        )
    for key, kinds in (
        ("workload", str),
        ("target", str),
        ("engine", str),
        ("policy", str),
        ("simulated_cycles", int),
        ("host_cycles", int),
        ("instructions", int),
        ("counters", dict),
        ("gauges", dict),
        ("histograms", dict),
        ("derived", dict),
        ("sched", dict),
        ("diagnostics", list),
    ):
        if key not in obj:
            problems.append(f"missing field {key!r}")
        elif not isinstance(obj[key], kinds):
            problems.append(
                f"field {key!r} must be {kinds.__name__}, "
                f"got {type(obj[key]).__name__}"
            )
    return problems


def load_report(path: str) -> dict:
    """Load and validate one report file.

    Raises:
        ReportError: On unreadable, unparsable or malformed input.
    """
    try:
        with open(path) as handle:
            obj = json.load(handle)
    except OSError as exc:
        raise ReportError(f"cannot read report {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReportError(f"report {path!r} is not JSON: {exc}") from exc
    problems = validate_report(obj)
    if problems:
        raise ReportError(
            f"report {path!r} is malformed: " + "; ".join(problems)
        )
    return obj


class ReportError(Exception):
    """A report file could not be loaded or is malformed."""


# ------------------------------------------------------------------- diffing


def flatten_report(obj: dict) -> dict:
    """Flatten a report dict into dotted metric paths -> scalar values.

    Nested dicts join with ``.``; histogram bucket lists collapse to a
    canonical string so a pure distribution shift (same count/total,
    different buckets) still registers.  ``diagnostics`` collapses to a
    comma-joined string.  ``kind`` and ``schema_version`` are dropped —
    a version mismatch is a load error, not a metric regression.
    """
    flat: dict = {}

    def walk(prefix: str, value: object) -> None:
        if isinstance(value, dict):
            for key in sorted(value):
                walk(f"{prefix}.{key}" if prefix else str(key), value[key])
        elif isinstance(value, list):
            flat[prefix] = json.dumps(value, separators=(",", ":"))
        else:
            flat[prefix] = value

    for key in sorted(obj):
        if key in ("kind", "schema_version"):
            continue
        walk(key, obj[key])
    return flat


@dataclass
class DiffEntry:
    """One metric that differs between the baseline and the new report."""

    metric: str
    base: object
    new: object
    #: Relative change in percent, or None for non-numeric values and
    #: metrics present on only one side.
    pct: Optional[float]
    #: The tolerance (percent) this metric was allowed; exceeded.
    tolerance: float

    def describe(self) -> str:
        if self.pct is None:
            return f"{self.metric}: {self.base!r} -> {self.new!r}"
        sign = "+" if self.pct >= 0 else ""
        return (
            f"{self.metric}: {self.base} -> {self.new} "
            f"({sign}{self.pct:.2f}%, tolerance {self.tolerance:g}%)"
        )


def _tolerance_for(
    metric: str, thresholds: dict, default: float
) -> Optional[float]:
    """Tolerance (percent) for a metric path; None means ignored.

    Thresholds match on the longest prefix: ``counters`` covers every
    counter, ``counters.dma.gets`` just the one.  The pseudo-value
    ``"ignore"`` (or a negative number) exempts the subtree.
    """
    best_len = -1
    best = default
    for pattern, value in thresholds.items():
        if metric == pattern or metric.startswith(pattern + "."):
            if len(pattern) > best_len:
                best_len = len(pattern)
                best = value
    if isinstance(best, str) or (isinstance(best, (int, float)) and best < 0):
        return None
    return float(best)


def diff_reports(
    base: dict,
    new: dict,
    thresholds: Optional[dict] = None,
    default_tolerance: float = 0.0,
    ignore: Iterable[str] = DEFAULT_IGNORE,
) -> list[DiffEntry]:
    """Metrics that changed beyond their tolerance, sorted by path.

    Args:
        base, new: Loaded report dicts (see :func:`load_report`).
        thresholds: Metric-path prefix -> tolerance in percent
            (``{"counters": 0, "derived": 1.5}``); ``"ignore"`` or a
            negative value exempts the subtree.
        default_tolerance: Tolerance for paths with no threshold entry.
        ignore: Paths exempted outright (default: ``wall_seconds``).

    A metric present on only one side always counts as a difference
    (unless ignored) — reports being compared should have the same
    shape, and a vanished histogram is a finding, not noise.
    """
    thresholds = dict(thresholds or {})
    for path in ignore:
        thresholds.setdefault(path, "ignore")
    flat_base = flatten_report(base)
    flat_new = flatten_report(new)
    entries: list[DiffEntry] = []
    for metric in sorted(set(flat_base) | set(flat_new)):
        tolerance = _tolerance_for(metric, thresholds, default_tolerance)
        if tolerance is None:
            continue
        a = flat_base.get(metric)
        b = flat_new.get(metric)
        if a == b:
            continue
        if (
            isinstance(a, (int, float))
            and isinstance(b, (int, float))
            and not isinstance(a, bool)
            and not isinstance(b, bool)
        ):
            if a == 0:
                pct = math.inf if b else 0.0
            else:
                pct = 100.0 * (b - a) / abs(a)
            if abs(pct) <= tolerance:
                continue
            entries.append(DiffEntry(metric, a, b, pct, tolerance))
        else:
            # Non-numeric or one-sided: tolerance cannot apply.
            entries.append(DiffEntry(metric, a, b, None, tolerance))
    return entries


# -------------------------------------------------------------------- trend


def trend_rows(
    reports: list[tuple[str, dict]], metric: str = "simulated_cycles"
) -> list[dict]:
    """Per-report values of one metric path, with deltas vs previous.

    Args:
        reports: ``(name, report dict)`` pairs in presentation order
            (callers typically sort by filename — encode run order
            there).
        metric: Flattened metric path (see :func:`flatten_report`).
    """
    rows: list[dict] = []
    previous: Optional[float] = None
    for name, obj in reports:
        value = flatten_report(obj).get(metric)
        row: dict = {"name": name, "value": value}
        if (
            isinstance(value, (int, float))
            and isinstance(previous, (int, float))
            and previous != 0
        ):
            row["delta_pct"] = round(
                100.0 * (value - previous) / abs(previous), 4
            )
        if isinstance(value, (int, float)):
            previous = value
        rows.append(row)
    return rows


def load_report_dir(directory: str) -> list[tuple[str, dict]]:
    """All ``*.json`` report files in a directory, sorted by filename."""
    names = sorted(
        entry for entry in os.listdir(directory) if entry.endswith(".json")
    )
    out = []
    for name in names:
        out.append((name, load_report(os.path.join(directory, name))))
    return out

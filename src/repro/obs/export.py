"""Trace exporters.

Three renderings of one event buffer:

* :func:`chrome_trace` / :func:`chrome_trace_json` — the Chrome
  ``trace_event`` format (the JSON flavour Perfetto and ``chrome://
  tracing`` both load).  One thread-track per core, plus DMA-channel
  and software-cache tracks.  Simulated cycles are written as the
  ``ts`` microsecond field one-to-one, so "1 us" in the viewer is one
  simulated cycle.
* :func:`format_timeline` — a flat, line-per-event text timeline; the
  format tests assert against.
* :func:`validate_chrome_trace` — a structural validator for the JSON
  (used by tests and the CI trace job; not a full schema, but enough to
  guarantee Perfetto will load the file).

Exports are **canonical**: given equal event sequences they are
byte-identical (sorted keys, fixed separators, no wall-clock metadata),
which is what lets the differential suite compare engines at the
serialized-trace level.
"""

from __future__ import annotations

import json
from typing import Iterable, Union

from repro.obs.trace import (
    EV_ANALYSIS,
    EV_CACHE_EVICT,
    EV_CACHE_FILL,
    EV_CACHE_HIT,
    EV_CACHE_MISS,
    EV_CACHE_WRITEBACK,
    EV_CODE_UPLOAD,
    EV_DISPATCH_HIT,
    EV_DISPATCH_MISS,
    EV_DMA_WAIT,
    EV_DMA_XFER,
    EV_ENTER,
    EV_EXIT,
    EV_FRAME,
    EV_OFFLOAD_BEGIN,
    EV_OFFLOAD_END,
    EV_OFFLOAD_JOIN,
    EV_OFFLOAD_LAUNCH,
    EV_PASS,
    EV_SCHED_DISPATCH,
    EV_SCHED_STALL,
    EV_SCHED_SUBMIT,
    EV_SCHED_UPLOAD,
    EVENT_SCHEMAS,
    Event,
    TraceRecorder,
    tracks,
)

_PID = 1

#: Kinds rendered as complete ("X") events; maps kind -> index of the
#: end-cycle field in the event args.
_SPAN_END_INDEX = {
    EV_CACHE_FILL: 1,
    EV_CACHE_WRITEBACK: 1,
    EV_DISPATCH_HIT: 2,
    EV_DISPATCH_MISS: 2,
    EV_CODE_UPLOAD: 2,
    EV_DMA_WAIT: 1,
    EV_SCHED_STALL: 1,
    EV_SCHED_UPLOAD: 2,
}


def _args_dict(kind: str, args: tuple) -> dict:
    schema = EVENT_SCHEMAS.get(kind)
    if schema is None:
        return {f"arg{i}": value for i, value in enumerate(args)}
    return dict(zip(schema, args))


def _name_for(kind: str, args: tuple) -> str:
    if kind == EV_DMA_XFER:
        return f"{args[0]} tag{args[1]}"
    if kind == EV_DMA_WAIT:
        return "wait all" if args[0] == -1 else f"wait tag{args[0]}"
    if kind in (EV_ENTER, EV_EXIT, EV_FRAME):
        return str(args[0])
    if kind in (EV_OFFLOAD_BEGIN, EV_OFFLOAD_END):
        return f"offload{args[0]} {args[1]}"
    if kind == EV_CODE_UPLOAD:
        return f"upload {args[0]}"
    if kind == EV_SCHED_SUBMIT:
        return f"submit offload{args[1]}"
    if kind == EV_SCHED_DISPATCH:
        return f"dispatch job{args[0]} -> acc{args[1]}"
    if kind == EV_SCHED_STALL:
        return f"stall acc{args[0]}"
    if kind == EV_SCHED_UPLOAD:
        return f"upload offload{args[0]}"
    if kind == EV_PASS:
        return f"pass {args[0]}"
    if kind == EV_ANALYSIS:
        return f"{args[0]} {args[1]}"
    return kind


def _resolve(events: Union[Iterable[Event], TraceRecorder]) -> tuple[list[Event], int]:
    if isinstance(events, TraceRecorder):
        return events.events(), events.dropped
    return list(events), 0


def chrome_trace(events: Union[Iterable[Event], TraceRecorder]) -> dict:
    """Render events as a Chrome ``trace_event`` JSON object (a dict).

    Accepts a recorder (dropped-event count is surfaced in
    ``otherData``) or a plain event iterable.
    """
    event_list, dropped = _resolve(events)
    tids = {track: i + 1 for i, track in enumerate(tracks(event_list))}
    trace_events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro simulated machine"},
        }
    ]
    for track, tid in tids.items():
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )

    for _seq, cycle, track, kind, args in event_list:
        tid = tids[track]
        base = {
            "pid": _PID,
            "tid": tid,
            "ts": cycle,
            "name": _name_for(kind, args),
            "cat": kind.split(".", 1)[0],
            "args": _args_dict(kind, args),
        }
        if kind == EV_ENTER:
            base["ph"] = "B"
        elif kind == EV_EXIT:
            base["ph"] = "E"
        elif kind == EV_OFFLOAD_BEGIN:
            base["ph"] = "B"
        elif kind == EV_OFFLOAD_END:
            base["ph"] = "E"
        elif kind == EV_DMA_XFER:
            base["ph"] = "X"
            base["dur"] = args[5] - cycle
        elif kind == EV_PASS:
            base["ph"] = "X"
            base["dur"] = args[1]
        elif kind == EV_ANALYSIS:
            base["ph"] = "X"
            base["dur"] = args[2]
        elif kind in _SPAN_END_INDEX:
            base["ph"] = "X"
            base["dur"] = args[_SPAN_END_INDEX[kind]] - cycle
        else:
            # Instants: cache hits/misses/evictions, frame markers,
            # host-side launch/join, anything future.
            base["ph"] = "i"
            base["s"] = "t"
        trace_events.append(base)

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "time_unit": "1 trace us = 1 simulated cycle",
            "dropped_events": dropped,
        },
    }


def chrome_trace_json(events: Union[Iterable[Event], TraceRecorder]) -> str:
    """Canonical (byte-stable) JSON text of :func:`chrome_trace`."""
    return json.dumps(
        chrome_trace(events), sort_keys=True, separators=(",", ":")
    ) + "\n"


def format_timeline(
    events: Union[Iterable[Event], TraceRecorder],
    kinds: Union[set, frozenset, None] = None,
) -> str:
    """A flat text timeline, one event per line.

    ``kinds`` filters to a subset of event kinds (e.g. only cache
    events for a miss timeline).
    """
    event_list, dropped = _resolve(events)
    lines = []
    if dropped:
        lines.append(f"# {dropped} oldest events dropped (ring wrapped)")
    for _seq, cycle, track, kind, args in event_list:
        if kinds is not None and kind not in kinds:
            continue
        detail = " ".join(
            f"{key}={value}"
            for key, value in _args_dict(kind, args).items()
        )
        lines.append(f"{cycle:>12} {track:<12} {kind:<16} {detail}".rstrip())
    return "\n".join(lines) + "\n"


_VALID_PHASES = {"B", "E", "X", "i", "M"}
_VALID_SCOPES = {"g", "p", "t"}


def validate_chrome_trace(trace: object) -> list[str]:
    """Structurally validate a Chrome trace object; returns problems.

    An empty list means the trace will load in Perfetto / Chrome
    tracing.  Checks the container shape, per-event required fields,
    phase-specific fields, and that every event's (pid, tid) has a
    ``thread_name`` metadata record.  A capture whose recorder dropped
    events (``otherData.dropped_events``) is also reported: the file
    renders fine but silently misses the start of the run.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"top level must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    other = trace.get("otherData")
    if isinstance(other, dict):
        dropped = other.get("dropped_events", 0)
        if isinstance(dropped, int) and dropped > 0:
            problems.append(
                f"capture truncated: {dropped} oldest events dropped "
                f"(recorder ring wrapped; re-capture with a larger "
                f"capacity)"
            )
    named_threads: set[tuple[int, int]] = set()
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            problems.append(f"{where}: missing int 'pid'/'tid'")
            continue
        if phase == "M":
            if event["name"] == "thread_name":
                named_threads.add((event["pid"], event["tid"]))
            continue
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            problems.append(f"{where}: missing non-negative int 'ts'")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"{where}: 'X' needs non-negative int 'dur'")
        if phase == "i" and event.get("s") not in _VALID_SCOPES:
            problems.append(f"{where}: 'i' needs scope 's' in g/p/t")
    for index, event in enumerate(events):
        if (
            isinstance(event, dict)
            and event.get("ph") in ("B", "E", "X", "i")
            and (event.get("pid"), event.get("tid")) not in named_threads
        ):
            problems.append(
                f"traceEvents[{index}]: (pid, tid) has no thread_name "
                f"metadata"
            )
            break
    return problems

"""Recursive-descent parser for OffloadMini.

The grammar is a C++-like subset.  Declaration/expression ambiguity at
statement level is resolved the classic way: the parser tracks the set
of declared type names (classes/structs must be declared before use,
single translation unit), so ``Foo * bar;`` parses as a declaration
exactly when ``Foo`` is a known type.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import Diagnostic, ParseError, SourceSpan
from repro.lang import ast
from repro.lang.source import SourceFile
from repro.lang.tokens import Token, TokenKind

_TYPE_KEYWORDS = {
    TokenKind.KW_VOID,
    TokenKind.KW_BOOL,
    TokenKind.KW_CHAR,
    TokenKind.KW_INT,
    TokenKind.KW_UINT,
    TokenKind.KW_FLOAT,
    TokenKind.KW_HANDLE,
    TokenKind.KW_ARRAY,
}

_ASSIGN_OPS = {
    TokenKind.ASSIGN: "",
    TokenKind.PLUS_ASSIGN: "+",
    TokenKind.MINUS_ASSIGN: "-",
    TokenKind.STAR_ASSIGN: "*",
    TokenKind.SLASH_ASSIGN: "/",
}

# Binary operator precedence, loosest first.
_BINARY_LEVELS: list[list[tuple[TokenKind, str]]] = [
    [(TokenKind.PIPEPIPE, "||")],
    [(TokenKind.AMPAMP, "&&")],
    [(TokenKind.PIPE, "|")],
    [(TokenKind.CARET, "^")],
    [(TokenKind.AMP, "&")],
    [(TokenKind.EQEQ, "=="), (TokenKind.NOTEQ, "!=")],
    [
        (TokenKind.LT, "<"),
        (TokenKind.LE, "<="),
        (TokenKind.GT, ">"),
        (TokenKind.GE, ">="),
    ],
    [(TokenKind.LSHIFT, "<<"), (TokenKind.RSHIFT, ">>")],
    [(TokenKind.PLUS, "+"), (TokenKind.MINUS, "-")],
    [(TokenKind.STAR, "*"), (TokenKind.SLASH, "/"), (TokenKind.PERCENT, "%")],
]


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens: list[Token], source: SourceFile):
        self._tokens = tokens
        self._source = source
        self._pos = 0
        self._type_names: set[str] = set()

    # ------------------------------------------------------------- cursor

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, kind: TokenKind, ahead: int = 0) -> bool:
        return self._peek(ahead).kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str = "") -> Token:
        if self._at(kind):
            return self._advance()
        got = self._peek()
        where = f" while parsing {context}" if context else ""
        raise self._error(
            f"expected {kind.value!r}, found {got.kind.value!r}{where}", got.span
        )

    def _error(self, message: str, span: Optional[SourceSpan]) -> ParseError:
        return ParseError([Diagnostic("E-parse", message, span)])

    # ------------------------------------------------------------ type refs

    def _starts_type(self, ahead: int = 0) -> bool:
        token = self._peek(ahead)
        if token.kind in _TYPE_KEYWORDS:
            return True
        if token.kind is TokenKind.KW_OUTER:
            return True
        if token.kind in (TokenKind.KW_STRUCT, TokenKind.KW_CLASS):
            return True
        return token.kind is TokenKind.IDENT and token.value in self._type_names

    def _parse_base_type(self) -> ast.TypeRef:
        token = self._peek()
        simple = {
            TokenKind.KW_VOID: "void",
            TokenKind.KW_BOOL: "bool",
            TokenKind.KW_CHAR: "char",
            TokenKind.KW_INT: "int",
            TokenKind.KW_UINT: "uint",
            TokenKind.KW_FLOAT: "float",
        }
        if token.kind in simple:
            self._advance()
            return ast.NamedTypeRef(simple[token.kind], span=token.span)
        if token.kind is TokenKind.KW_HANDLE:
            self._advance()
            return ast.HandleTypeRef(span=token.span)
        if token.kind is TokenKind.KW_ARRAY:
            self._advance()
            self._expect(TokenKind.LT, "Array<T, N>")
            element = self._parse_type()
            self._expect(TokenKind.COMMA, "Array<T, N>")
            # Additive precedence only, so the closing '>' is not eaten
            # as a comparison operator.
            count = self._parse_binary(8)
            self._expect(TokenKind.GT, "Array<T, N>")
            return ast.AccessorTypeRef(element, count, span=token.span)
        if token.kind in (TokenKind.KW_STRUCT, TokenKind.KW_CLASS):
            # Elaborated type: `struct T` as a type spec.
            self._advance()
            name = self._expect(TokenKind.IDENT, "type name")
            return ast.NamedTypeRef(str(name.value), span=name.span)
        if token.kind is TokenKind.IDENT and token.value in self._type_names:
            self._advance()
            return ast.NamedTypeRef(str(token.value), span=token.span)
        raise self._error(
            f"expected a type, found {token.kind.value!r}", token.span
        )

    def _parse_type(self) -> ast.TypeRef:
        """Parse a full type spec: qualifiers, base and pointer levels."""
        leading_outer = self._accept(TokenKind.KW_OUTER) is not None
        base = self._parse_base_type()
        first_level = True
        while True:
            outer = leading_outer and first_level
            addressing: Optional[str] = None
            # Qualifiers written between the base/previous star and this
            # star: `char __byte * p`, `int __outer * p`.
            while True:
                if self._accept(TokenKind.KW_BYTE_ATTR):
                    addressing = "byte"
                elif self._accept(TokenKind.KW_WORD_ATTR):
                    addressing = "word"
                elif self._accept(TokenKind.KW_OUTER):
                    outer = True
                else:
                    break
            if self._accept(TokenKind.STAR):
                base = ast.PointerTypeRef(
                    base, outer=outer, addressing=addressing, span=base.span
                )
                first_level = False
                continue
            if addressing is not None or (outer and not first_level):
                token = self._peek()
                raise self._error(
                    "pointer qualifier must be followed by '*'", token.span
                )
            if leading_outer and first_level:
                token = self._peek()
                raise self._error(
                    "'__outer' must qualify a pointer type", token.span
                )
            return base

    # ---------------------------------------------------------- expressions

    def _parse_expression(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        lhs = self._parse_binary(level + 1)
        while True:
            matched = None
            for kind, op in _BINARY_LEVELS[level]:
                if self._at(kind):
                    matched = (kind, op)
                    break
            if matched is None:
                return lhs
            token = self._advance()
            rhs = self._parse_binary(level + 1)
            lhs = ast.BinaryExpr(matched[1], lhs, rhs, span=token.span)

    def _is_cast_ahead(self) -> bool:
        """After an '(' at the cursor, does a cast follow?"""
        if not self._at(TokenKind.LPAREN):
            return False
        if not self._starts_type(1):
            return False
        # Scan forward past the type spec to check for the closing ')'.
        saved = self._pos
        try:
            self._advance()  # (
            self._parse_type()
            is_cast = self._at(TokenKind.RPAREN)
        except ParseError:
            is_cast = False
        finally:
            self._pos = saved
        return is_cast

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        unary_ops = {
            TokenKind.MINUS: "-",
            TokenKind.BANG: "!",
            TokenKind.TILDE: "~",
            TokenKind.STAR: "*",
            TokenKind.AMP: "&",
        }
        if token.kind in unary_ops:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryExpr(unary_ops[token.kind], operand, span=token.span)
        if self._is_cast_ahead():
            lparen = self._advance()
            target = self._parse_type()
            self._expect(TokenKind.RPAREN, "cast")
            operand = self._parse_unary()
            return ast.CastExpr(target, operand, span=lparen.span)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind is TokenKind.LBRACKET:
                self._advance()
                index = self._parse_expression()
                self._expect(TokenKind.RBRACKET, "index expression")
                expr = ast.IndexExpr(expr, index, span=token.span)
            elif token.kind in (TokenKind.DOT, TokenKind.ARROW):
                self._advance()
                name = self._expect(TokenKind.IDENT, "member name")
                member = ast.MemberExpr(
                    expr,
                    str(name.value),
                    arrow=token.kind is TokenKind.ARROW,
                    span=name.span,
                )
                if self._at(TokenKind.LPAREN):
                    args = self._parse_call_args()
                    expr = ast.CallExpr(member, args, span=name.span)
                else:
                    expr = member
            else:
                return expr

    def _parse_call_args(self) -> list[ast.Expr]:
        self._expect(TokenKind.LPAREN, "call")
        args: list[ast.Expr] = []
        if not self._at(TokenKind.RPAREN):
            args.append(self._parse_expression())
            while self._accept(TokenKind.COMMA):
                args.append(self._parse_expression())
        self._expect(TokenKind.RPAREN, "call")
        return args

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLit(int(token.value), span=token.span)  # type: ignore[arg-type]
        if token.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLit(float(token.value), span=token.span)  # type: ignore[arg-type]
        if token.kind is TokenKind.CHAR_LIT:
            self._advance()
            return ast.IntLit(int(token.value), suffix="char", span=token.span)  # type: ignore[arg-type]
        if token.kind is TokenKind.KW_TRUE:
            self._advance()
            return ast.BoolLit(True, span=token.span)
        if token.kind is TokenKind.KW_FALSE:
            self._advance()
            return ast.BoolLit(False, span=token.span)
        if token.kind is TokenKind.KW_NULL:
            self._advance()
            return ast.NullLit(span=token.span)
        if token.kind is TokenKind.KW_THIS:
            self._advance()
            return ast.ThisExpr(span=token.span)
        if token.kind is TokenKind.KW_SIZEOF:
            self._advance()
            self._expect(TokenKind.LPAREN, "sizeof")
            target = self._parse_type()
            self._expect(TokenKind.RPAREN, "sizeof")
            return ast.SizeofExpr(target, span=token.span)
        if token.kind is TokenKind.KW_OFFLOAD:
            return self._parse_offload()
        if token.kind is TokenKind.LPAREN:
            self._advance()
            inner = self._parse_expression()
            self._expect(TokenKind.RPAREN, "parenthesised expression")
            return inner
        if token.kind is TokenKind.IDENT:
            self._advance()
            name = ast.NameExpr(str(token.value), span=token.span)
            if self._at(TokenKind.LPAREN):
                args = self._parse_call_args()
                return ast.CallExpr(name, args, span=token.span)
            return name
        raise self._error(
            f"expected an expression, found {token.kind.value!r}", token.span
        )

    # -------------------------------------------------------------- offload

    def _parse_domain_item(self) -> ast.DomainItem:
        first = self._expect(TokenKind.IDENT, "domain annotation")
        class_name: Optional[str] = None
        method_name = str(first.value)
        if self._accept(TokenKind.COLONCOLON):
            class_name = method_name
            method = self._expect(TokenKind.IDENT, "domain annotation")
            method_name = str(method.value)
        this_space = "outer"
        if self._accept(TokenKind.AT):
            space = self._expect(TokenKind.IDENT, "domain @space")
            if space.value not in ("local", "outer"):
                raise self._error(
                    f"domain space must be 'local' or 'outer', "
                    f"got {space.value!r}",
                    space.span,
                )
            this_space = str(space.value)
        return ast.DomainItem(class_name, method_name, this_space, first.span)

    def _parse_offload(self) -> ast.OffloadExpr:
        keyword = self._expect(TokenKind.KW_OFFLOAD, "offload block")
        domain: list[ast.DomainItem] = []
        cache_kind: Optional[str] = None
        if self._accept(TokenKind.LBRACKET):
            while not self._at(TokenKind.RBRACKET):
                if self._accept(TokenKind.KW_DOMAIN):
                    self._expect(TokenKind.LPAREN, "domain annotation")
                    domain.append(self._parse_domain_item())
                    while self._accept(TokenKind.COMMA):
                        domain.append(self._parse_domain_item())
                    self._expect(TokenKind.RPAREN, "domain annotation")
                elif self._accept(TokenKind.KW_CACHE):
                    self._expect(TokenKind.LPAREN, "cache annotation")
                    kind = self._expect(TokenKind.IDENT, "cache kind")
                    cache_kind = str(kind.value)
                    self._expect(TokenKind.RPAREN, "cache annotation")
                else:
                    token = self._peek()
                    raise self._error(
                        f"unknown offload annotation {token.text!r}", token.span
                    )
                self._accept(TokenKind.COMMA)
            self._expect(TokenKind.RBRACKET, "offload annotations")
        body = self._parse_block()
        return ast.OffloadExpr(domain, cache_kind, body, span=keyword.span)

    # ------------------------------------------------------------ statements

    def _parse_block(self) -> ast.BlockStmt:
        open_brace = self._expect(TokenKind.LBRACE, "block")
        statements: list[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.EOF):
                raise self._error("unterminated block", open_brace.span)
            statements.append(self._parse_statement())
        self._expect(TokenKind.RBRACE, "block")
        return ast.BlockStmt(statements, span=open_brace.span)

    def _parse_funcptr_declarator(
        self, return_type: ast.TypeRef
    ) -> tuple[ast.TypeRef, Token]:
        """Parse ``(*name)(param-types)`` after the return type."""
        self._expect(TokenKind.LPAREN, "function-pointer declarator")
        self._expect(TokenKind.STAR, "function-pointer declarator")
        name = self._expect(TokenKind.IDENT, "function-pointer name")
        self._expect(TokenKind.RPAREN, "function-pointer declarator")
        self._expect(TokenKind.LPAREN, "function-pointer parameter list")
        params: list[ast.TypeRef] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                if self._at(TokenKind.KW_VOID) and self._at(TokenKind.RPAREN, 1):
                    self._advance()
                    break
                params.append(self._parse_type())
                # Parameter names are optional in declarators.
                self._accept(TokenKind.IDENT)
                if not self._accept(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN, "function-pointer parameter list")
        return (
            ast.FuncPtrTypeRef(return_type, params, span=name.span),
            name,
        )

    def _at_funcptr_declarator(self) -> bool:
        return self._at(TokenKind.LPAREN) and self._at(TokenKind.STAR, 1)

    def _parse_var_decl(self) -> ast.VarDeclStmt:
        declared = self._parse_type()
        if self._at_funcptr_declarator():
            declared, name = self._parse_funcptr_declarator(declared)
            init: Optional[ast.Expr] = None
            if self._accept(TokenKind.ASSIGN):
                init = self._parse_expression()
            self._expect(TokenKind.SEMI, "declaration")
            return ast.VarDeclStmt(declared, str(name.value), init, span=name.span)
        name = self._expect(TokenKind.IDENT, "variable name")
        # Array suffixes bind to the declarator: `T a[N][M]`.
        dims: list[ast.Expr] = []
        while self._accept(TokenKind.LBRACKET):
            dims.append(self._parse_expression())
            self._expect(TokenKind.RBRACKET, "array extent")
        for dim in reversed(dims):
            declared = ast.ArrayTypeRef(declared, dim, span=declared.span)
        init: Optional[ast.Expr] = None
        if self._accept(TokenKind.ASSIGN):
            init = self._parse_expression()
        elif self._at(TokenKind.LPAREN) and isinstance(
            declared, ast.AccessorTypeRef
        ):
            # Accessor construction binds an outer array expression:
            # `Array<T, N> a(outer_objects);`
            args = self._parse_call_args()
            if len(args) != 1:
                raise self._error(
                    "Array<T, N> takes exactly one constructor argument "
                    "(the outer array to stage)",
                    name.span,
                )
            init = args[0]
        self._expect(TokenKind.SEMI, "declaration")
        return ast.VarDeclStmt(declared, str(name.value), init, span=name.span)

    def _parse_simple_statement(self) -> ast.Stmt:
        """A declaration, assignment, inc/dec or expression, plus ';'."""
        if self._starts_type():
            return self._parse_var_decl()
        expr = self._parse_expression()
        token = self._peek()
        if token.kind in _ASSIGN_OPS:
            self._advance()
            value = self._parse_expression()
            self._expect(TokenKind.SEMI, "assignment")
            return ast.AssignStmt(expr, _ASSIGN_OPS[token.kind], value, span=token.span)
        if token.kind is TokenKind.PLUSPLUS:
            self._advance()
            self._expect(TokenKind.SEMI, "increment")
            return ast.IncDecStmt(expr, 1, span=token.span)
        if token.kind is TokenKind.MINUSMINUS:
            self._advance()
            self._expect(TokenKind.SEMI, "decrement")
            return ast.IncDecStmt(expr, -1, span=token.span)
        self._expect(TokenKind.SEMI, "expression statement")
        return ast.ExprStmt(expr, span=expr.span)

    def _parse_for_clause(self) -> Optional[ast.Stmt]:
        """An init/step clause of a for statement, without the ';'."""
        if self._starts_type():
            declared = self._parse_type()
            name = self._expect(TokenKind.IDENT, "variable name")
            init: Optional[ast.Expr] = None
            if self._accept(TokenKind.ASSIGN):
                init = self._parse_expression()
            return ast.VarDeclStmt(declared, str(name.value), init, span=name.span)
        expr = self._parse_expression()
        token = self._peek()
        if token.kind in _ASSIGN_OPS:
            self._advance()
            value = self._parse_expression()
            return ast.AssignStmt(expr, _ASSIGN_OPS[token.kind], value, span=token.span)
        if token.kind is TokenKind.PLUSPLUS:
            self._advance()
            return ast.IncDecStmt(expr, 1, span=token.span)
        if token.kind is TokenKind.MINUSMINUS:
            self._advance()
            return ast.IncDecStmt(expr, -1, span=token.span)
        return ast.ExprStmt(expr, span=expr.span)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind is TokenKind.LBRACE:
            return self._parse_block()
        if token.kind is TokenKind.KW_IF:
            self._advance()
            self._expect(TokenKind.LPAREN, "if")
            condition = self._parse_expression()
            self._expect(TokenKind.RPAREN, "if")
            then_body = self._parse_statement()
            else_body: Optional[ast.Stmt] = None
            if self._accept(TokenKind.KW_ELSE):
                else_body = self._parse_statement()
            return ast.IfStmt(condition, then_body, else_body, span=token.span)
        if token.kind is TokenKind.KW_WHILE:
            self._advance()
            self._expect(TokenKind.LPAREN, "while")
            condition = self._parse_expression()
            self._expect(TokenKind.RPAREN, "while")
            body = self._parse_statement()
            return ast.WhileStmt(condition, body, span=token.span)
        if token.kind is TokenKind.KW_FOR:
            self._advance()
            self._expect(TokenKind.LPAREN, "for")
            init: Optional[ast.Stmt] = None
            if not self._at(TokenKind.SEMI):
                init = self._parse_for_clause()
            self._expect(TokenKind.SEMI, "for")
            condition: Optional[ast.Expr] = None
            if not self._at(TokenKind.SEMI):
                condition = self._parse_expression()
            self._expect(TokenKind.SEMI, "for")
            step: Optional[ast.Stmt] = None
            if not self._at(TokenKind.RPAREN):
                step = self._parse_for_clause()
            self._expect(TokenKind.RPAREN, "for")
            body = self._parse_statement()
            return ast.ForStmt(init, condition, step, body, span=token.span)
        if token.kind is TokenKind.KW_RETURN:
            self._advance()
            value: Optional[ast.Expr] = None
            if not self._at(TokenKind.SEMI):
                value = self._parse_expression()
            self._expect(TokenKind.SEMI, "return")
            return ast.ReturnStmt(value, span=token.span)
        if token.kind is TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMI, "break")
            return ast.BreakStmt(span=token.span)
        if token.kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMI, "continue")
            return ast.ContinueStmt(span=token.span)
        if token.kind is TokenKind.KW_OFFLOAD_JOIN:
            self._advance()
            self._expect(TokenKind.LPAREN, "__offload_join")
            handle = self._parse_expression()
            self._expect(TokenKind.RPAREN, "__offload_join")
            self._expect(TokenKind.SEMI, "__offload_join")
            return ast.JoinStmt(handle, span=token.span)
        if token.kind is TokenKind.KW_OFFLOAD:
            # Bare offload statement: launch and join immediately.
            offload = self._parse_offload()
            self._accept(TokenKind.SEMI)
            return ast.ExprStmt(offload, span=token.span)
        return self._parse_simple_statement()

    # ----------------------------------------------------------- top level

    def _parse_class(self) -> ast.ClassDecl:
        keyword = self._advance()  # class / struct
        is_class = keyword.kind is TokenKind.KW_CLASS
        name = self._expect(TokenKind.IDENT, "class name")
        self._type_names.add(str(name.value))
        base: Optional[str] = None
        if self._accept(TokenKind.COLON):
            base_tok = self._expect(TokenKind.IDENT, "base class name")
            base = str(base_tok.value)
        self._expect(TokenKind.LBRACE, "class body")
        fields: list[ast.FieldDecl] = []
        methods: list[ast.FuncDecl] = []
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.EOF):
                raise self._error("unterminated class body", keyword.span)
            is_virtual = self._accept(TokenKind.KW_VIRTUAL) is not None
            declared = self._parse_type()
            member = self._expect(TokenKind.IDENT, "member name")
            if self._at(TokenKind.LPAREN):
                params = self._parse_params()
                body = self._parse_block()
                methods.append(
                    ast.FuncDecl(
                        str(member.value),
                        declared,
                        params,
                        body,
                        is_virtual=is_virtual,
                        owner=str(name.value),
                        span=member.span,
                    )
                )
            else:
                if is_virtual:
                    raise self._error("fields cannot be virtual", member.span)
                dims: list[ast.Expr] = []
                while self._accept(TokenKind.LBRACKET):
                    dims.append(self._parse_expression())
                    self._expect(TokenKind.RBRACKET, "array extent")
                for dim in reversed(dims):
                    declared = ast.ArrayTypeRef(declared, dim, span=declared.span)
                self._expect(TokenKind.SEMI, "field")
                fields.append(
                    ast.FieldDecl(declared, str(member.value), member.span)
                )
        self._expect(TokenKind.RBRACE, "class body")
        self._accept(TokenKind.SEMI)
        return ast.ClassDecl(
            str(name.value), base, fields, methods, is_class, keyword.span
        )

    def _parse_params(self) -> list[ast.ParamDecl]:
        self._expect(TokenKind.LPAREN, "parameter list")
        params: list[ast.ParamDecl] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                if self._at(TokenKind.KW_VOID) and self._at(TokenKind.RPAREN, 1):
                    self._advance()
                    break
                declared = self._parse_type()
                name = self._expect(TokenKind.IDENT, "parameter name")
                params.append(ast.ParamDecl(declared, str(name.value), name.span))
                if not self._accept(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN, "parameter list")
        return params

    def parse_program(self) -> ast.Program:
        """Parse the whole translation unit."""
        program = ast.Program()
        while not self._at(TokenKind.EOF):
            token = self._peek()
            if token.kind in (TokenKind.KW_CLASS, TokenKind.KW_STRUCT):
                # Could be a class definition or an elaborated global
                # declaration; a definition has '{' after the name (or
                # after ': Base').
                if self._is_class_definition():
                    program.classes.append(self._parse_class())
                    continue
            declared = self._parse_type()
            if self._at_funcptr_declarator():
                declared, fp_name = self._parse_funcptr_declarator(declared)
                init: Optional[ast.Expr] = None
                if self._accept(TokenKind.ASSIGN):
                    init = self._parse_expression()
                self._expect(TokenKind.SEMI, "global declaration")
                program.globals.append(
                    ast.GlobalVarDecl(
                        declared, str(fp_name.value), init, fp_name.span
                    )
                )
                continue
            name = self._expect(TokenKind.IDENT, "declaration name")
            if self._at(TokenKind.LPAREN):
                params = self._parse_params()
                body = self._parse_block()
                program.functions.append(
                    ast.FuncDecl(
                        str(name.value), declared, params, body, span=name.span
                    )
                )
            else:
                dims: list[ast.Expr] = []
                while self._accept(TokenKind.LBRACKET):
                    dims.append(self._parse_expression())
                    self._expect(TokenKind.RBRACKET, "array extent")
                for dim in reversed(dims):
                    declared = ast.ArrayTypeRef(declared, dim, span=declared.span)
                init: Optional[ast.Expr] = None
                if self._accept(TokenKind.ASSIGN):
                    init = self._parse_expression()
                self._expect(TokenKind.SEMI, "global declaration")
                program.globals.append(
                    ast.GlobalVarDecl(declared, str(name.value), init, name.span)
                )
        return program

    def _is_class_definition(self) -> bool:
        """class/struct IDENT followed by '{' or ': Base {' is a definition."""
        if not self._at(TokenKind.IDENT, 1):
            return False
        return self._peek(2).kind is TokenKind.LBRACE or (
            self._peek(2).kind is TokenKind.COLON
            and self._peek(3).kind is TokenKind.IDENT
        )


def parse_program(text: str, filename: str = "<input>") -> ast.Program:
    """Lex and parse OffloadMini source text."""
    from repro.lang.lexer import Lexer

    source = SourceFile(text, filename)
    tokens = Lexer(source).tokens()
    return Parser(tokens, source).parse_program()

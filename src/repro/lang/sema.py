"""Semantic analysis for OffloadMini.

Responsibilities:

* build :class:`~repro.lang.types.ClassType` objects (layout, vtables,
  override checking),
* resolve every name and type every expression (annotations are written
  onto the AST in place),
* fold constant expressions (array extents, ``sizeof``),
* analyse offload blocks: assign ids, compute the capture set, resolve
  ``domain(...)`` annotations to method implementations,
* check intrinsic usage (DMA operations only inside offload blocks).

Memory-*space* checking is deliberately not done here: spaces become
concrete only when functions are duplicated per space signature, so the
space type-checks happen in ``repro.compiler.lower`` where the paper's
compiler also performs them.  Sema types all unqualified pointers as
``GENERIC`` space and records explicit ``__outer`` annotations.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import Diagnostic, SourceSpan, TypeCheckError
from repro.lang import ast
from repro.runtime.cachekinds import CACHE_KIND_CHOICES, is_cache_kind
from repro.lang.symbols import Scope, Symbol, SymbolKind
from repro.lang.types import (
    BOOL,
    CHAR,
    FLOAT,
    INT,
    UINT,
    VOID,
    AccessorType,
    AddrUnit,
    ArrayType,
    ClassType,
    FuncPtrType,
    HandleType,
    MemSpace,
    MethodInfo,
    PointerType,
    ScalarType,
    Type,
    VoidType,
    common_arithmetic_type,
    is_arithmetic,
    is_integer,
)

#: Intrinsic signatures.  "ptr" matches any pointer type.
INTRINSICS: dict[str, tuple[list[object], Type]] = {
    "print_int": ([INT], VOID),
    "print_float": ([FLOAT], VOID),
    "print_char": ([CHAR], VOID),
    "dma_get": (["ptr", "ptr", INT, INT], VOID),
    "dma_put": (["ptr", "ptr", INT, INT], VOID),
    "dma_wait": ([INT], VOID),
    "sqrtf": ([FLOAT], FLOAT),
    "fabsf": ([FLOAT], FLOAT),
    "iabs": ([INT], INT),
    "imin": ([INT, INT], INT),
    "imax": ([INT, INT], INT),
    "fminf": ([FLOAT, FLOAT], FLOAT),
    "fmaxf": ([FLOAT, FLOAT], FLOAT),
}

#: Intrinsics that require an accelerator context (an offload block).
OFFLOAD_ONLY_INTRINSICS = {"dma_get", "dma_put", "dma_wait"}


class ResolvedDomainItem:
    """A ``domain(...)`` entry resolved to its implementation.

    Either a virtual method (``class_type``/``method`` set) or a free
    function reachable through a function pointer (``func`` set).
    """

    def __init__(
        self,
        class_type: "ClassType | None" = None,
        method: "MethodInfo | None" = None,
        this_space: str = "outer",
        func: object = None,
    ):
        self.class_type = class_type
        self.method = method
        self.this_space = this_space
        self.func = func  # ast.FuncDecl for free functions

    @property
    def qualified_name(self) -> str:
        if self.method is not None:
            return self.method.qualified_name
        assert self.func is not None
        return self.func.qualified_name  # type: ignore[attr-defined]

    @property
    def decl(self) -> object:
        if self.method is not None:
            return self.method.decl
        return self.func

    @property
    def has_this(self) -> bool:
        return self.method is not None

    def display(self) -> str:
        suffix = "@local" if self.this_space == "local" else ""
        return f"{self.qualified_name}{suffix}"


class SemanticInfo:
    """Everything later compiler stages need, keyed off the checked AST."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.classes: dict[str, ClassType] = {}
        self.functions: dict[str, ast.FuncDecl] = {}
        self.globals: list[ast.GlobalVarDecl] = []
        self.offloads: list[ast.OffloadExpr] = []


class SemanticAnalyzer:
    """Single-pass (plus pre-passes) checker; raises TypeCheckError."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.info = SemanticInfo(program)
        self._global_scope = Scope()
        self._current_function: Optional[ast.FuncDecl] = None
        self._current_class: Optional[ClassType] = None
        self._current_offload: Optional[ast.OffloadExpr] = None
        self._enclosing_offload_scope: Optional[Scope] = None
        self._this_symbol: Optional[Symbol] = None
        self._loop_depth = 0
        self._next_offload_id = 0

    # ------------------------------------------------------------ utilities

    def _fail(self, code: str, message: str, span: Optional[SourceSpan]) -> None:
        raise TypeCheckError([Diagnostic(code, message, span)])

    def _const_int(self, expr: ast.Expr) -> int:
        """Evaluate a compile-time integer constant expression."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return int(expr.value)
        if isinstance(expr, ast.SizeofExpr):
            return self._resolve_typeref(expr.target_type).size()
        if isinstance(expr, ast.UnaryExpr) and expr.op == "-":
            return -self._const_int(expr.operand)
        if isinstance(expr, ast.BinaryExpr):
            lhs = self._const_int(expr.lhs)
            rhs = self._const_int(expr.rhs)
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a // b if b else 0,
                "%": lambda a, b: a % b if b else 0,
                "<<": lambda a, b: a << b,
                ">>": lambda a, b: a >> b,
            }
            if expr.op in ops:
                return ops[expr.op](lhs, rhs)
        self._fail(
            "E-const",
            "expected a compile-time integer constant expression",
            expr.span,
        )
        raise AssertionError  # unreachable

    # --------------------------------------------------------- type refs

    def _resolve_typeref(self, ref: ast.TypeRef) -> Type:
        if isinstance(ref, ast.NamedTypeRef):
            scalars: dict[str, Type] = {
                "void": VOID,
                "bool": BOOL,
                "char": CHAR,
                "int": INT,
                "uint": UINT,
                "float": FLOAT,
            }
            if ref.name in scalars:
                return scalars[ref.name]
            if ref.name in self.info.classes:
                return self.info.classes[ref.name]
            self._fail("E-unknown-type", f"unknown type {ref.name!r}", ref.span)
        if isinstance(ref, ast.PointerTypeRef):
            pointee = self._resolve_typeref(ref.pointee)
            space = MemSpace.HOST if ref.outer else MemSpace.GENERIC
            addressing = {
                None: AddrUnit.DEFAULT,
                "byte": AddrUnit.BYTE,
                "word": AddrUnit.WORD,
            }[ref.addressing]
            return PointerType(pointee, space, addressing)
        if isinstance(ref, ast.ArrayTypeRef):
            element = self._resolve_typeref(ref.element)
            count = self._const_int(ref.size)
            if count <= 0:
                self._fail(
                    "E-array-extent",
                    f"array extent must be positive, got {count}",
                    ref.span,
                )
            return ArrayType(element, count)
        if isinstance(ref, ast.AccessorTypeRef):
            element = self._resolve_typeref(ref.element)
            count = self._const_int(ref.count)
            if count <= 0:
                self._fail(
                    "E-array-extent",
                    f"Array<T, N> extent must be positive, got {count}",
                    ref.span,
                )
            return AccessorType(element, count)
        if isinstance(ref, ast.HandleTypeRef):
            return HandleType()
        if isinstance(ref, ast.FuncPtrTypeRef):
            return_type = self._resolve_typeref(ref.return_type)
            params = tuple(
                self._decay(self._resolve_typeref(p)) for p in ref.params
            )
            return FuncPtrType(return_type, params)
        raise AssertionError(f"unhandled type ref {ref!r}")

    # ------------------------------------------------------- conversions

    def _decay(self, expr_type: Type) -> Type:
        """Array-to-pointer decay (space stays GENERIC until lowering)."""
        if isinstance(expr_type, ArrayType):
            return PointerType(expr_type.element, MemSpace.GENERIC)
        return expr_type

    def _can_assign(self, dest: Type, src: Type) -> bool:
        """Implicit-conversion check, space-agnostic (see module doc)."""
        src = self._decay(src)
        if isinstance(dest, PointerType) and isinstance(src, PointerType):
            if isinstance(dest.pointee, VoidType) or isinstance(
                src.pointee, VoidType
            ):
                return True
            if (
                isinstance(dest.pointee, ClassType)
                and isinstance(src.pointee, ClassType)
                and src.pointee.is_subclass_of(dest.pointee)
            ):
                return True
            return self._same_pointee(dest.pointee, src.pointee)
        if isinstance(dest, PointerType) and isinstance(src, VoidType):
            return False
        if isinstance(dest, PointerType):
            return False  # null literal handled by caller
        if isinstance(dest, HandleType):
            return isinstance(src, HandleType)
        if is_arithmetic(dest) and is_arithmetic(src):
            assert isinstance(dest, ScalarType) and isinstance(src, ScalarType)
            if src.is_float_type and not dest.is_float_type:
                return False  # float -> int needs an explicit cast
            return True
        if isinstance(dest, ClassType) and isinstance(src, ClassType):
            return src.is_subclass_of(dest)
        return dest == src

    def _same_pointee(self, a: Type, b: Type) -> bool:
        """Structural equality ignoring space/addressing qualifiers."""
        if isinstance(a, PointerType) and isinstance(b, PointerType):
            return self._same_pointee(a.pointee, b.pointee)
        if isinstance(a, ClassType) or isinstance(b, ClassType):
            return a is b
        return a == b

    def _require_assignable(
        self, dest: Type, src_expr: ast.Expr, span: Optional[SourceSpan], what: str
    ) -> None:
        if isinstance(src_expr, ast.NullLit) and isinstance(
            dest, (PointerType, FuncPtrType)
        ):
            src_expr.type = dest
            return
        src = src_expr.type
        assert src is not None
        if not self._can_assign(dest, src):
            self._fail(
                "E-type-mismatch",
                f"cannot {what}: expected {dest}, got {src}",
                span,
            )

    def _is_truthy(self, t: Type) -> bool:
        return is_arithmetic(t) or isinstance(t, PointerType)

    # ----------------------------------------------------------- classes

    def _collect_classes(self) -> None:
        for decl in self.program.classes:
            if decl.name in self.info.classes:
                self._fail(
                    "E-redefined", f"type {decl.name!r} redefined", decl.span
                )
            base: Optional[ClassType] = None
            if decl.base is not None:
                base = self.info.classes.get(decl.base)
                if base is None:
                    self._fail(
                        "E-unknown-type",
                        f"unknown base class {decl.base!r} "
                        f"(classes must be declared before use)",
                        decl.span,
                    )
            class_type = ClassType(decl.name, base)
            self.info.classes[decl.name] = class_type
            # Methods first (finalize assigns vtable slots from them).
            for method in decl.methods:
                if method.name in class_type.methods:
                    self._fail(
                        "E-redefined",
                        f"method {decl.name}::{method.name} redefined "
                        f"(no overloading)",
                        method.span,
                    )
                class_type.methods[method.name] = MethodInfo(
                    name=method.name,
                    qualified_name=f"{decl.name}::{method.name}",
                    decl=method,
                    is_virtual=method.is_virtual
                    or self._base_virtual(base, method.name),
                )
            own_fields: list[tuple[str, Type]] = []
            for field_decl in decl.fields:
                field_type = self._resolve_typeref(field_decl.declared_type)
                if isinstance(field_type, (VoidType, HandleType, AccessorType)):
                    self._fail(
                        "E-field-type",
                        f"field {field_decl.name!r} cannot have type "
                        f"{field_type}",
                        field_decl.span,
                    )
                own_fields.append((field_decl.name, field_type))
            try:
                class_type.finalize(own_fields)
            except ValueError as exc:
                self._fail("E-layout", str(exc), decl.span)
            self._check_overrides(decl, class_type)

    def _base_virtual(self, base: Optional[ClassType], name: str) -> bool:
        if base is None:
            return False
        method = base.find_method(name)
        return method is not None and method.is_virtual

    def _check_overrides(self, decl: ast.ClassDecl, class_type: ClassType) -> None:
        if class_type.base is None:
            return
        for method in decl.methods:
            base_method = class_type.base.find_method(method.name)
            if base_method is None:
                continue
            base_decl = base_method.decl
            assert isinstance(base_decl, ast.FuncDecl)
            if len(base_decl.params) != len(method.params):
                self._fail(
                    "E-override-mismatch",
                    f"{class_type.name}::{method.name} overrides "
                    f"{base_method.qualified_name} with a different "
                    f"parameter count",
                    method.span,
                )

    # ----------------------------------------------------------- globals

    def _collect_globals(self) -> None:
        for decl in self.program.globals:
            global_type = self._resolve_typeref(decl.declared_type)
            if isinstance(global_type, (VoidType, HandleType, AccessorType)):
                self._fail(
                    "E-global-type",
                    f"global {decl.name!r} cannot have type {global_type}",
                    decl.span,
                )
            symbol = Symbol(decl.name, SymbolKind.GLOBAL, global_type, decl)
            if not self._global_scope.define(symbol):
                self._fail(
                    "E-redefined", f"global {decl.name!r} redefined", decl.span
                )
            decl.symbol = symbol
            if decl.init is not None:
                if not isinstance(global_type, ScalarType):
                    self._fail(
                        "E-global-init",
                        "only scalar globals may have initializers",
                        decl.span,
                    )
                # Fold now; the loader writes the value into memory.
                if isinstance(decl.init, ast.FloatLit):
                    decl.folded_init = decl.init.value  # type: ignore[attr-defined]
                else:
                    decl.folded_init = self._const_int(decl.init)  # type: ignore[attr-defined]
            else:
                decl.folded_init = 0  # type: ignore[attr-defined]
            self.info.globals.append(decl)

    # --------------------------------------------------------- functions

    def _collect_functions(self) -> None:
        for func in self.program.functions:
            qname = func.qualified_name
            if qname in self.info.functions:
                self._fail(
                    "E-redefined",
                    f"function {qname!r} redefined (no overloading)",
                    func.span,
                )
            self.info.functions[qname] = func
            symbol = Symbol(
                func.name,
                SymbolKind.FUNCTION,
                self._resolve_typeref(func.return_type),
                func,
            )
            func.symbol = symbol
            self._global_scope.define(symbol)
        for class_decl in self.program.classes:
            for method in class_decl.methods:
                self.info.functions[method.qualified_name] = method

    def _check_all_bodies(self) -> None:
        for func in self.program.functions:
            self._check_function(func, None)
        for class_decl in self.program.classes:
            class_type = self.info.classes[class_decl.name]
            for method in class_decl.methods:
                self._check_function(method, class_type)

    def _check_function(
        self, func: ast.FuncDecl, owner: Optional[ClassType]
    ) -> None:
        self._current_function = func
        self._current_class = owner
        self._current_offload = None
        scope = Scope(self._global_scope)
        if owner is not None:
            this_type = PointerType(owner, MemSpace.GENERIC)
            self._this_symbol = Symbol("this", SymbolKind.THIS, this_type, func)
            scope.define(self._this_symbol)
        else:
            self._this_symbol = None
        func.this_symbol = self._this_symbol  # type: ignore[attr-defined]
        func.resolved_return_type = self._resolve_typeref(func.return_type)  # type: ignore[attr-defined]
        if isinstance(
            func.resolved_return_type, (ClassType, ArrayType, AccessorType)  # type: ignore[attr-defined]
        ):
            self._fail(
                "E-return-type",
                f"{func.qualified_name} cannot return "
                f"{func.resolved_return_type} by value (return a pointer)",  # type: ignore[attr-defined]
                func.span,
            )
        for param in func.params:
            param_type = self._resolve_typeref(param.declared_type)
            param_type = self._decay(param_type)
            if isinstance(
                param_type, (VoidType, AccessorType, ClassType)
            ) or isinstance(param_type, ArrayType):
                self._fail(
                    "E-param-type",
                    f"parameter {param.name!r} cannot have type {param_type} "
                    f"(pass classes and arrays by pointer)",
                    param.span,
                )
            symbol = Symbol(param.name, SymbolKind.PARAM, param_type, param)
            if not scope.define(symbol):
                self._fail(
                    "E-redefined",
                    f"parameter {param.name!r} redefined",
                    param.span,
                )
            param.symbol = symbol
        if func.body is not None:
            self._check_block(func.body, Scope(scope))
        self._current_function = None
        self._current_class = None

    # -------------------------------------------------------- statements

    def _check_block(self, block: ast.BlockStmt, scope: Scope) -> None:
        for stmt in block.statements:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.BlockStmt):
            self._check_block(stmt, Scope(scope))
        elif isinstance(stmt, ast.VarDeclStmt):
            self._check_var_decl(stmt, scope)
        elif isinstance(stmt, ast.AssignStmt):
            self._check_assign(stmt, scope)
        elif isinstance(stmt, ast.IncDecStmt):
            target_type = self._check_expr(stmt.target, scope)
            if not self._is_lvalue(stmt.target):
                self._fail("E-lvalue", "++/-- target is not assignable", stmt.span)
            if not (is_integer(target_type) or isinstance(target_type, PointerType)):
                self._fail(
                    "E-type-mismatch",
                    f"cannot increment value of type {target_type}",
                    stmt.span,
                )
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.IfStmt):
            cond = self._check_expr(stmt.condition, scope)
            if not self._is_truthy(cond):
                self._fail(
                    "E-condition", f"condition has type {cond}", stmt.span
                )
            self._check_stmt(stmt.then_body, Scope(scope))
            if stmt.else_body is not None:
                self._check_stmt(stmt.else_body, Scope(scope))
        elif isinstance(stmt, ast.WhileStmt):
            cond = self._check_expr(stmt.condition, scope)
            if not self._is_truthy(cond):
                self._fail(
                    "E-condition", f"condition has type {cond}", stmt.span
                )
            self._loop_depth += 1
            self._check_stmt(stmt.body, Scope(scope))
            self._loop_depth -= 1
        elif isinstance(stmt, ast.ForStmt):
            inner = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.condition is not None:
                cond = self._check_expr(stmt.condition, inner)
                if not self._is_truthy(cond):
                    self._fail(
                        "E-condition", f"condition has type {cond}", stmt.span
                    )
            if stmt.step is not None:
                self._check_stmt(stmt.step, inner)
            self._loop_depth += 1
            self._check_stmt(stmt.body, Scope(inner))
            self._loop_depth -= 1
        elif isinstance(stmt, ast.ReturnStmt):
            if self._current_offload is not None:
                self._fail(
                    "E-offload-return",
                    "return cannot appear inside an offload block (the "
                    "block is not the enclosing function)",
                    stmt.span,
                )
            assert self._current_function is not None
            expected = self._current_function.resolved_return_type  # type: ignore[attr-defined]
            if stmt.value is None:
                if not isinstance(expected, VoidType):
                    self._fail(
                        "E-return",
                        f"non-void function must return {expected}",
                        stmt.span,
                    )
            else:
                if isinstance(expected, VoidType):
                    self._fail(
                        "E-return", "void function returns a value", stmt.span
                    )
                self._check_expr(stmt.value, scope)
                self._require_assignable(expected, stmt.value, stmt.span, "return")
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            if self._loop_depth == 0:
                self._fail(
                    "E-loop", "break/continue outside of a loop", stmt.span
                )
        elif isinstance(stmt, ast.JoinStmt):
            handle = self._check_expr(stmt.handle, scope)
            if not isinstance(handle, HandleType):
                self._fail(
                    "E-type-mismatch",
                    f"__offload_join expects a handle, got {handle}",
                    stmt.span,
                )
            if self._current_offload is not None:
                self._fail(
                    "E-offload-nesting",
                    "__offload_join cannot appear inside an offload block",
                    stmt.span,
                )
        else:
            raise AssertionError(f"unhandled statement {stmt!r}")

    def _check_var_decl(self, stmt: ast.VarDeclStmt, scope: Scope) -> None:
        declared = self._resolve_typeref(stmt.declared_type)
        if isinstance(declared, VoidType):
            self._fail(
                "E-var-type", f"variable {stmt.name!r} cannot be void", stmt.span
            )
        if isinstance(declared, AccessorType):
            self._check_accessor_decl(stmt, declared, scope)
            return
        if isinstance(declared, HandleType):
            if not isinstance(stmt.init, ast.OffloadExpr):
                self._fail(
                    "E-handle-init",
                    "a handle must be initialised with an __offload block",
                    stmt.span,
                )
        if stmt.init is not None:
            self._check_expr(stmt.init, scope)
            self._require_assignable(
                declared, stmt.init, stmt.span, f"initialise {stmt.name!r}"
            )
        offload_id = (
            self._current_offload.offload_id
            if self._current_offload is not None
            else -1
        )
        symbol = Symbol(
            stmt.name, SymbolKind.LOCAL, declared, stmt, offload_id=offload_id
        )
        if not scope.define(symbol):
            self._fail(
                "E-redefined",
                f"variable {stmt.name!r} redefined in this scope",
                stmt.span,
            )
        stmt.symbol = symbol

    def _check_accessor_decl(
        self, stmt: ast.VarDeclStmt, declared: AccessorType, scope: Scope
    ) -> None:
        if stmt.init is None:
            self._fail(
                "E-accessor-init",
                "Array<T, N> must be constructed from an outer array, "
                "e.g. Array<T, N> a(outer_array);",
                stmt.span,
            )
        init_type = self._check_expr(stmt.init, scope)
        bound: Optional[Type] = None
        if isinstance(init_type, ArrayType):
            bound = init_type.element
            if init_type.count < declared.count:
                self._fail(
                    "E-accessor-init",
                    f"Array<T, {declared.count}> cannot stage an array of "
                    f"{init_type.count} elements",
                    stmt.span,
                )
        elif isinstance(init_type, PointerType):
            bound = init_type.pointee
        else:
            self._fail(
                "E-accessor-init",
                f"Array<T, N> must bind an array or pointer, got {init_type}",
                stmt.span,
            )
        assert bound is not None
        if not self._same_pointee(declared.element, bound):
            self._fail(
                "E-accessor-init",
                f"Array element type {declared.element} does not match "
                f"bound array of {bound}",
                stmt.span,
            )
        offload_id = (
            self._current_offload.offload_id
            if self._current_offload is not None
            else -1
        )
        symbol = Symbol(
            stmt.name, SymbolKind.LOCAL, declared, stmt, offload_id=offload_id
        )
        if not scope.define(symbol):
            self._fail(
                "E-redefined",
                f"variable {stmt.name!r} redefined in this scope",
                stmt.span,
            )
        stmt.symbol = symbol

    def _check_assign(self, stmt: ast.AssignStmt, scope: Scope) -> None:
        target_type = self._check_expr(stmt.target, scope)
        if not self._is_lvalue(stmt.target):
            self._fail("E-lvalue", "assignment target is not assignable", stmt.span)
        self._check_expr(stmt.value, scope)
        if stmt.op == "":
            self._require_assignable(target_type, stmt.value, stmt.span, "assign")
            return
        # Compound assignment: target op value must itself type-check.
        value_type = stmt.value.type
        assert value_type is not None
        if isinstance(target_type, PointerType) and stmt.op in ("+", "-"):
            if not is_integer(self._decay(value_type)):
                self._fail(
                    "E-type-mismatch",
                    f"pointer {stmt.op}= requires an integer, got {value_type}",
                    stmt.span,
                )
            return
        if (
            common_arithmetic_type(target_type, self._decay(value_type))
            is None
        ):
            self._fail(
                "E-type-mismatch",
                f"cannot apply {stmt.op}= between {target_type} and "
                f"{value_type}",
                stmt.span,
            )
        if (
            isinstance(value_type, ScalarType)
            and value_type.is_float_type
            and isinstance(target_type, ScalarType)
            and not target_type.is_float_type
        ):
            self._fail(
                "E-type-mismatch",
                "float to integer compound assignment needs an explicit cast",
                stmt.span,
            )

    def _is_lvalue(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.NameExpr):
            return expr.symbol is not None and expr.symbol.kind in (
                SymbolKind.GLOBAL,
                SymbolKind.LOCAL,
                SymbolKind.PARAM,
                SymbolKind.FIELD,
            )
        if isinstance(expr, ast.UnaryExpr):
            return expr.op == "*"
        if isinstance(expr, (ast.IndexExpr, ast.MemberExpr)):
            return True
        return False

    # ------------------------------------------------------- expressions

    def _check_expr(self, expr: ast.Expr, scope: Scope) -> Type:
        result = self._check_expr_inner(expr, scope)
        expr.type = result
        return result

    def _check_expr_inner(self, expr: ast.Expr, scope: Scope) -> Type:
        if isinstance(expr, ast.IntLit):
            return {"int": INT, "uint": UINT, "char": CHAR}[expr.suffix]
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.BoolLit):
            return BOOL
        if isinstance(expr, ast.NullLit):
            return PointerType(VOID, MemSpace.GENERIC)
        if isinstance(expr, ast.NameExpr):
            return self._check_name(expr, scope)
        if isinstance(expr, ast.ThisExpr):
            return self._check_this(expr)
        if isinstance(expr, ast.SizeofExpr):
            expr.folded_size = self._resolve_typeref(expr.target_type).size()  # type: ignore[attr-defined]
            return INT
        if isinstance(expr, ast.UnaryExpr):
            return self._check_unary(expr, scope)
        if isinstance(expr, ast.BinaryExpr):
            return self._check_binary(expr, scope)
        if isinstance(expr, ast.IndexExpr):
            return self._check_index(expr, scope)
        if isinstance(expr, ast.MemberExpr):
            return self._check_member(expr, scope)
        if isinstance(expr, ast.CallExpr):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.CastExpr):
            return self._check_cast(expr, scope)
        if isinstance(expr, ast.OffloadExpr):
            return self._check_offload(expr, scope)
        raise AssertionError(f"unhandled expression {expr!r}")

    def _maybe_capture(self, symbol: Symbol, span: Optional[SourceSpan]) -> None:
        """Record a capture when an offload body references an enclosing
        function local/param declared outside the block."""
        offload = self._current_offload
        if offload is None:
            return
        if symbol.kind not in (SymbolKind.LOCAL, SymbolKind.PARAM, SymbolKind.THIS):
            return
        if symbol.offload_id == offload.offload_id:
            return
        if isinstance(symbol.type, HandleType):
            self._fail(
                "E-capture-handle",
                "offload handles cannot be captured by an offload block",
                span,
            )
        if isinstance(symbol.type, AccessorType):
            self._fail(
                "E-capture-accessor",
                "accessor objects cannot be captured by an offload block",
                span,
            )
        symbol.is_captured = True
        if symbol not in offload.captures:
            offload.captures.append(symbol)

    def _check_name(self, expr: ast.NameExpr, scope: Scope) -> Type:
        symbol = scope.lookup(expr.name)
        if symbol is None:
            # Implicit this->field / this->method inside a class body.
            if self._current_class is not None:
                field_info = self._current_class.find_field(expr.name)
                if field_info is not None:
                    field_symbol = Symbol(
                        expr.name, SymbolKind.FIELD, field_info.type, field_info
                    )
                    expr.symbol = field_symbol
                    if self._this_symbol is not None:
                        self._maybe_capture(self._this_symbol, expr.span)
                    return field_info.type
            self._fail("E-undeclared", f"use of undeclared name {expr.name!r}", expr.span)
        assert symbol is not None
        if symbol.kind is SymbolKind.FUNCTION:
            self._fail(
                "E-func-value",
                f"function {expr.name!r} used as a value (function "
                f"pointers are expressed through domain annotations)",
                expr.span,
            )
        expr.symbol = symbol
        self._maybe_capture(symbol, expr.span)
        return symbol.type

    def _check_this(self, expr: ast.ThisExpr) -> Type:
        if self._this_symbol is None:
            self._fail("E-this", "'this' used outside a method", expr.span)
        assert self._this_symbol is not None
        self._maybe_capture(self._this_symbol, expr.span)
        return self._this_symbol.type

    def _check_unary(self, expr: ast.UnaryExpr, scope: Scope) -> Type:
        if expr.op == "&" and isinstance(expr.operand, ast.NameExpr):
            symbol = scope.lookup(expr.operand.name)
            if symbol is not None and symbol.kind is SymbolKind.FUNCTION:
                return self._check_function_address(expr, symbol)
        operand = self._check_expr(expr.operand, scope)
        if expr.op == "*":
            decayed = self._decay(operand)
            if not isinstance(decayed, PointerType):
                self._fail(
                    "E-deref", f"cannot dereference {operand}", expr.span
                )
            assert isinstance(decayed, PointerType)
            if isinstance(decayed.pointee, VoidType):
                self._fail("E-deref", "cannot dereference void*", expr.span)
            return decayed.pointee
        if expr.op == "&":
            if not self._is_lvalue(expr.operand):
                self._fail(
                    "E-lvalue", "cannot take the address of this expression",
                    expr.span,
                )
            if (
                isinstance(expr.operand, ast.NameExpr)
                and expr.operand.symbol is not None
            ):
                expr.operand.symbol.address_taken = True
            if isinstance(operand, ArrayType):
                self._fail(
                    "E-addr-array",
                    "take the address of an element (&a[0]) instead of "
                    "the whole array",
                    expr.span,
                )
            return PointerType(operand, MemSpace.GENERIC)
        if expr.op == "-":
            if not is_arithmetic(operand):
                self._fail("E-type-mismatch", f"cannot negate {operand}", expr.span)
            return operand if operand == FLOAT else INT
        if expr.op == "!":
            if not self._is_truthy(operand):
                self._fail("E-type-mismatch", f"cannot apply ! to {operand}", expr.span)
            return BOOL
        if expr.op == "~":
            if not is_integer(operand):
                self._fail("E-type-mismatch", f"cannot apply ~ to {operand}", expr.span)
            return operand if operand == UINT else INT
        raise AssertionError(f"unhandled unary op {expr.op!r}")

    def _check_function_address(
        self, expr: ast.UnaryExpr, symbol: Symbol
    ) -> Type:
        """``&free_function`` yields a function-pointer value."""
        decl = symbol.decl
        assert isinstance(decl, ast.FuncDecl)
        if decl.owner is not None:
            self._fail(
                "E-func-value",
                "method pointers are not supported; use virtual dispatch "
                "with a domain annotation instead",
                expr.span,
            )
        params = tuple(
            self._decay(self._resolve_typeref(p.declared_type))
            for p in decl.params
        )
        operand = expr.operand
        assert isinstance(operand, ast.NameExpr)
        operand.symbol = symbol
        operand.type = VOID  # the bare name has no value of its own
        expr.func_target = decl  # type: ignore[attr-defined]
        return FuncPtrType(self._resolve_typeref(decl.return_type), params)

    def _check_binary(self, expr: ast.BinaryExpr, scope: Scope) -> Type:
        lhs = self._decay(self._check_expr(expr.lhs, scope))
        rhs = self._decay(self._check_expr(expr.rhs, scope))
        op = expr.op
        if op in ("&&", "||"):
            if not (self._is_truthy(lhs) and self._is_truthy(rhs)):
                self._fail(
                    "E-type-mismatch",
                    f"cannot apply {op} between {lhs} and {rhs}",
                    expr.span,
                )
            return BOOL
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if isinstance(lhs, PointerType) or isinstance(rhs, PointerType):
                null_ok = isinstance(expr.lhs, ast.NullLit) or isinstance(
                    expr.rhs, ast.NullLit
                )
                if not null_ok and not (
                    isinstance(lhs, PointerType)
                    and isinstance(rhs, PointerType)
                    and (
                        self._same_pointee(lhs.pointee, rhs.pointee)
                        or isinstance(lhs.pointee, VoidType)
                        or isinstance(rhs.pointee, VoidType)
                        or self._related_classes(lhs.pointee, rhs.pointee)
                    )
                ):
                    self._fail(
                        "E-type-mismatch",
                        f"cannot compare {lhs} with {rhs}",
                        expr.span,
                    )
                return BOOL
            if common_arithmetic_type(lhs, rhs) is None:
                self._fail(
                    "E-type-mismatch",
                    f"cannot compare {lhs} with {rhs}",
                    expr.span,
                )
            return BOOL
        if op in ("+", "-"):
            if isinstance(lhs, PointerType) and is_integer(rhs):
                return lhs  # addressing-unit legality checked at lowering
            if op == "+" and is_integer(lhs) and isinstance(rhs, PointerType):
                return rhs
            if (
                op == "-"
                and isinstance(lhs, PointerType)
                and isinstance(rhs, PointerType)
            ):
                if not self._same_pointee(lhs.pointee, rhs.pointee):
                    self._fail(
                        "E-type-mismatch",
                        f"cannot subtract {rhs} from {lhs}",
                        expr.span,
                    )
                return INT
        if op in ("&", "|", "^", "<<", ">>", "%"):
            if not (is_integer(lhs) and is_integer(rhs)):
                self._fail(
                    "E-type-mismatch",
                    f"operator {op} requires integers, got {lhs} and {rhs}",
                    expr.span,
                )
            return UINT if UINT in (lhs, rhs) else INT
        common = common_arithmetic_type(lhs, rhs)
        if common is None:
            self._fail(
                "E-type-mismatch",
                f"cannot apply {op} between {lhs} and {rhs}",
                expr.span,
            )
        assert common is not None
        return common

    def _related_classes(self, a: Type, b: Type) -> bool:
        return (
            isinstance(a, ClassType)
            and isinstance(b, ClassType)
            and (a.is_subclass_of(b) or b.is_subclass_of(a))
        )

    def _check_index(self, expr: ast.IndexExpr, scope: Scope) -> Type:
        base = self._check_expr(expr.base, scope)
        index = self._check_expr(expr.index, scope)
        if not is_integer(self._decay(index)):
            self._fail(
                "E-index", f"array index must be an integer, got {index}",
                expr.span,
            )
        if isinstance(base, ArrayType):
            return base.element
        if isinstance(base, AccessorType):
            return base.element
        decayed = self._decay(base)
        if isinstance(decayed, PointerType) and not isinstance(
            decayed.pointee, VoidType
        ):
            return decayed.pointee
        self._fail("E-index", f"cannot index a value of type {base}", expr.span)
        raise AssertionError

    def _check_member(self, expr: ast.MemberExpr, scope: Scope) -> Type:
        base = self._check_expr(expr.base, scope)
        if expr.arrow:
            decayed = self._decay(base)
            if not isinstance(decayed, PointerType) or not isinstance(
                decayed.pointee, ClassType
            ):
                self._fail(
                    "E-member",
                    f"-> requires a pointer to a class, got {base}",
                    expr.span,
                )
            assert isinstance(decayed, PointerType)
            class_type = decayed.pointee
        else:
            if not isinstance(base, ClassType):
                self._fail(
                    "E-member", f". requires a class value, got {base}", expr.span
                )
            class_type = base
        assert isinstance(class_type, ClassType)
        field_info = class_type.find_field(expr.name)
        if field_info is not None:
            expr.field = field_info
            return field_info.type
        method = class_type.find_method(expr.name)
        if method is not None:
            expr.method = method
            # Only valid as a call; _check_call consumes this.
            return VOID
        self._fail(
            "E-member",
            f"{class_type.name} has no member {expr.name!r}",
            expr.span,
        )
        raise AssertionError

    def _check_call(self, expr: ast.CallExpr, scope: Scope) -> Type:
        callee = expr.callee
        if isinstance(callee, ast.NameExpr):
            return self._check_free_call(expr, callee, scope)
        if isinstance(callee, ast.MemberExpr):
            return self._check_method_call(expr, callee, scope)
        self._fail("E-call", "expression is not callable", expr.span)
        raise AssertionError

    def _check_free_call(
        self, expr: ast.CallExpr, callee: ast.NameExpr, scope: Scope
    ) -> Type:
        # Indirect call through a function-pointer variable.
        pointer_symbol = scope.lookup(callee.name)
        if pointer_symbol is not None and isinstance(
            pointer_symbol.type, FuncPtrType
        ):
            return self._check_indirect_call(expr, callee, pointer_symbol, scope)
        # Implicit this->method() inside a class body.
        if self._current_class is not None:
            method = self._current_class.find_method(callee.name)
            if method is not None:
                return self._finish_method_call(
                    expr, method, implicit_this=True, arrow=True, scope=scope
                )
        if callee.name in INTRINSICS:
            return self._check_intrinsic(expr, callee, scope)
        func = self.info.functions.get(callee.name)
        if func is None or func.owner is not None:
            self._fail(
                "E-undeclared",
                f"call to undeclared function {callee.name!r}",
                expr.span,
            )
        assert func is not None
        if len(expr.args) != len(func.params):
            self._fail(
                "E-arity",
                f"{callee.name} expects {len(func.params)} arguments, "
                f"got {len(expr.args)}",
                expr.span,
            )
        for arg, param in zip(expr.args, func.params):
            self._check_expr(arg, scope)
            param_type = self._decay(self._resolve_typeref(param.declared_type))
            self._require_assignable(
                param_type, arg, arg.span, f"pass argument {param.name!r}"
            )
        expr.target = func
        return self._resolve_typeref(func.return_type)

    def _check_indirect_call(
        self,
        expr: ast.CallExpr,
        callee: ast.NameExpr,
        symbol: Symbol,
        scope: Scope,
    ) -> Type:
        func_type = symbol.type
        assert isinstance(func_type, FuncPtrType)
        callee.symbol = symbol
        callee.type = func_type
        self._maybe_capture(symbol, expr.span)
        if len(expr.args) != len(func_type.param_types):
            self._fail(
                "E-arity",
                f"function pointer expects {len(func_type.param_types)} "
                f"arguments, got {len(expr.args)}",
                expr.span,
            )
        for arg, param_type in zip(expr.args, func_type.param_types):
            self._check_expr(arg, scope)
            self._require_assignable(
                param_type, arg, arg.span, "pass through function pointer"
            )
        expr.target = "indirect"
        expr.funcptr_type = func_type  # type: ignore[attr-defined]
        return func_type.return_type

    def _check_intrinsic(
        self, expr: ast.CallExpr, callee: ast.NameExpr, scope: Scope
    ) -> Type:
        param_spec, return_type = INTRINSICS[callee.name]
        if callee.name in OFFLOAD_ONLY_INTRINSICS and self._current_offload is None:
            self._fail(
                "E-intrinsic-context",
                f"{callee.name} may only be used inside an __offload block "
                f"(the host has no DMA engine)",
                expr.span,
            )
        if len(expr.args) != len(param_spec):
            self._fail(
                "E-arity",
                f"{callee.name} expects {len(param_spec)} arguments, "
                f"got {len(expr.args)}",
                expr.span,
            )
        for arg, spec in zip(expr.args, param_spec):
            arg_type = self._decay(self._check_expr(arg, scope))
            if spec == "ptr":
                if isinstance(arg, ast.NullLit):
                    arg.type = PointerType(VOID, MemSpace.GENERIC)
                elif not isinstance(arg_type, PointerType):
                    self._fail(
                        "E-type-mismatch",
                        f"{callee.name} expects a pointer, got {arg_type}",
                        arg.span,
                    )
            else:
                assert isinstance(spec, Type)
                self._require_assignable(
                    spec, arg, arg.span, f"pass to {callee.name}"
                )
        expr.target = callee.name  # intrinsics carry their name
        return return_type

    def _check_method_call(
        self, expr: ast.CallExpr, callee: ast.MemberExpr, scope: Scope
    ) -> Type:
        base_type = self._check_expr(callee.base, scope)
        # Accessor built-ins: a.put_back()
        if isinstance(base_type, AccessorType):
            if callee.name != "put_back":
                self._fail(
                    "E-member",
                    f"Array<T, N> has no method {callee.name!r}",
                    expr.span,
                )
            if expr.args:
                self._fail("E-arity", "put_back takes no arguments", expr.span)
            expr.target = "accessor.put_back"
            return VOID
        if callee.arrow:
            decayed = self._decay(base_type)
            if not isinstance(decayed, PointerType) or not isinstance(
                decayed.pointee, ClassType
            ):
                self._fail(
                    "E-member",
                    f"-> requires a pointer to a class, got {base_type}",
                    expr.span,
                )
            assert isinstance(decayed, PointerType)
            class_type = decayed.pointee
        else:
            if not isinstance(base_type, ClassType):
                self._fail(
                    "E-member",
                    f". requires a class value, got {base_type}",
                    expr.span,
                )
            class_type = base_type
        assert isinstance(class_type, ClassType)
        method = class_type.find_method(callee.name)
        if method is None:
            self._fail(
                "E-member",
                f"{class_type.name} has no method {callee.name!r}",
                expr.span,
            )
        assert method is not None
        callee.method = method
        return self._finish_method_call(
            expr, method, implicit_this=False, arrow=callee.arrow, scope=scope
        )

    def _finish_method_call(
        self,
        expr: ast.CallExpr,
        method: MethodInfo,
        implicit_this: bool,
        arrow: bool,
        scope: Scope,
    ) -> Type:
        decl = method.decl
        assert isinstance(decl, ast.FuncDecl)
        if implicit_this and self._this_symbol is not None:
            self._maybe_capture(self._this_symbol, expr.span)
        if len(expr.args) != len(decl.params):
            self._fail(
                "E-arity",
                f"{method.qualified_name} expects {len(decl.params)} "
                f"arguments, got {len(expr.args)}",
                expr.span,
            )
        for arg, param in zip(expr.args, decl.params):
            self._check_expr(arg, scope)
            param_type = self._decay(self._resolve_typeref(param.declared_type))
            self._require_assignable(
                param_type, arg, arg.span, f"pass argument {param.name!r}"
            )
        expr.target = method
        expr.is_virtual = method.is_virtual and arrow
        expr.implicit_this = implicit_this  # type: ignore[attr-defined]
        return self._resolve_typeref(decl.return_type)

    def _check_cast(self, expr: ast.CastExpr, scope: Scope) -> Type:
        target = self._resolve_typeref(expr.target_type)
        expr.resolved_target = target  # type: ignore[attr-defined]
        operand = self._decay(self._check_expr(expr.operand, scope))
        if isinstance(target, (VoidType, AccessorType, HandleType)):
            self._fail("E-cast", f"cannot cast to {target}", expr.span)
        if isinstance(target, PointerType):
            if isinstance(expr.operand, ast.NullLit):
                return target
            if not isinstance(operand, PointerType) and not is_integer(operand):
                self._fail(
                    "E-cast", f"cannot cast {operand} to {target}", expr.span
                )
            return target
        if isinstance(target, ScalarType):
            if not (is_arithmetic(operand) or isinstance(operand, PointerType)):
                self._fail(
                    "E-cast", f"cannot cast {operand} to {target}", expr.span
                )
            return target
        if isinstance(target, ClassType):
            self._fail("E-cast", "cannot cast to a class value", expr.span)
        raise AssertionError

    # ----------------------------------------------------------- offloads

    def _check_offload(self, expr: ast.OffloadExpr, scope: Scope) -> Type:
        if self._current_offload is not None:
            self._fail(
                "E-offload-nesting", "offload blocks cannot nest", expr.span
            )
        if self._current_function is None:
            self._fail(
                "E-offload-context",
                "offload blocks must appear inside a function",
                expr.span,
            )
        expr.offload_id = self._next_offload_id
        self._next_offload_id += 1
        expr.enclosing_function = self._current_function  # type: ignore[attr-defined]
        self._resolve_domain(expr)
        if expr.cache_kind is not None and not is_cache_kind(expr.cache_kind):
            self._fail(
                "E-cache-kind",
                f"unknown cache kind {expr.cache_kind!r} (choose "
                f"{', '.join(CACHE_KIND_CHOICES)})",
                expr.span,
            )
        self._current_offload = expr
        self._check_block(expr.body, Scope(scope))
        self._current_offload = None
        self.info.offloads.append(expr)
        return HandleType()

    def _resolve_domain(self, expr: ast.OffloadExpr) -> None:
        resolved: list[ResolvedDomainItem] = []
        for item in expr.domain:
            if item.class_name is None:
                # A free function, callable through a function pointer.
                func = self.info.functions.get(item.method_name)
                if func is None or func.owner is not None:
                    self._fail(
                        "E-domain",
                        f"domain entry {item.method_name!r} names neither a "
                        f"Class::method nor a free function",
                        item.span,
                    )
                assert func is not None
                if item.this_space != "outer":
                    self._fail(
                        "E-domain",
                        f"free function {item.method_name!r} has no "
                        f"receiver; @local is meaningless",
                        item.span,
                    )
                resolved.append(ResolvedDomainItem(func=func))
                continue
            class_type = self.info.classes.get(item.class_name)  # type: ignore[arg-type]
            if class_type is None:
                self._fail(
                    "E-domain",
                    f"unknown class {item.class_name!r} in domain annotation",
                    item.span,
                )
            assert class_type is not None
            method = class_type.methods.get(item.method_name)
            if method is None:
                self._fail(
                    "E-domain",
                    f"{item.class_name} does not define method "
                    f"{item.method_name!r} (domain entries name the "
                    f"implementing class)",
                    item.span,
                )
            assert method is not None
            if not method.is_virtual:
                self._fail(
                    "E-domain",
                    f"{method.qualified_name} is not virtual; only virtual "
                    f"methods belong in a domain annotation",
                    item.span,
                )
            resolved.append(
                ResolvedDomainItem(class_type, method, item.this_space)
            )
        expr.resolved_domain = resolved  # type: ignore[attr-defined]

    # ---------------------------------------------------------------- run

    def analyze(self) -> SemanticInfo:
        """Run all passes; returns the semantic info or raises."""
        self._collect_classes()
        self._collect_globals()
        self._collect_functions()
        self._check_all_bodies()
        if "main" not in self.info.functions:
            self._fail("E-no-main", "program has no 'main' function", None)
        return self.info


def analyze(program: ast.Program) -> SemanticInfo:
    """Type-check a parsed program."""
    return SemanticAnalyzer(program).analyze()

"""Token kinds and the token record."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SourceSpan


class TokenKind(enum.Enum):
    """Lexical categories of OffloadMini."""

    # Literals and identifiers
    IDENT = "identifier"
    INT_LIT = "integer literal"
    FLOAT_LIT = "float literal"
    CHAR_LIT = "character literal"

    # Keywords
    KW_BOOL = "bool"
    KW_BREAK = "break"
    KW_CACHE = "cache"
    KW_CHAR = "char"
    KW_CLASS = "class"
    KW_CONTINUE = "continue"
    KW_DOMAIN = "domain"
    KW_ELSE = "else"
    KW_FALSE = "false"
    KW_FLOAT = "float"
    KW_FOR = "for"
    KW_HANDLE = "__offload_handle_t"
    KW_IF = "if"
    KW_INT = "int"
    KW_NULL = "null"
    KW_OFFLOAD = "__offload"
    KW_OFFLOAD_JOIN = "__offload_join"
    KW_OUTER = "__outer"
    KW_RETURN = "return"
    KW_SIZEOF = "sizeof"
    KW_STRUCT = "struct"
    KW_THIS = "this"
    KW_TRUE = "true"
    KW_UINT = "uint"
    KW_VIRTUAL = "virtual"
    KW_VOID = "void"
    KW_WHILE = "while"
    KW_BYTE_ATTR = "__byte"
    KW_WORD_ATTR = "__word"
    KW_ARRAY = "Array"

    # Punctuation and operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    ARROW = "->"
    COLON = ":"
    COLONCOLON = "::"
    AMP = "&"
    AMPAMP = "&&"
    PIPE = "|"
    PIPEPIPE = "||"
    CARET = "^"
    TILDE = "~"
    BANG = "!"
    PLUS = "+"
    PLUSPLUS = "++"
    MINUS = "-"
    MINUSMINUS = "--"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    LSHIFT = "<<"
    RSHIFT = ">>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQEQ = "=="
    NOTEQ = "!="
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    AT = "@"

    EOF = "end of input"


KEYWORDS: dict[str, TokenKind] = {
    "bool": TokenKind.KW_BOOL,
    "break": TokenKind.KW_BREAK,
    "cache": TokenKind.KW_CACHE,
    "char": TokenKind.KW_CHAR,
    "class": TokenKind.KW_CLASS,
    "continue": TokenKind.KW_CONTINUE,
    "domain": TokenKind.KW_DOMAIN,
    "else": TokenKind.KW_ELSE,
    "false": TokenKind.KW_FALSE,
    "float": TokenKind.KW_FLOAT,
    "for": TokenKind.KW_FOR,
    "__offload_handle_t": TokenKind.KW_HANDLE,
    "if": TokenKind.KW_IF,
    "int": TokenKind.KW_INT,
    "null": TokenKind.KW_NULL,
    "__offload": TokenKind.KW_OFFLOAD,
    "__offload_join": TokenKind.KW_OFFLOAD_JOIN,
    "__outer": TokenKind.KW_OUTER,
    "return": TokenKind.KW_RETURN,
    "sizeof": TokenKind.KW_SIZEOF,
    "struct": TokenKind.KW_STRUCT,
    "this": TokenKind.KW_THIS,
    "true": TokenKind.KW_TRUE,
    "uint": TokenKind.KW_UINT,
    "virtual": TokenKind.KW_VIRTUAL,
    "void": TokenKind.KW_VOID,
    "while": TokenKind.KW_WHILE,
    "__byte": TokenKind.KW_BYTE_ATTR,
    "__word": TokenKind.KW_WORD_ATTR,
    "Array": TokenKind.KW_ARRAY,
}


@dataclass(frozen=True)
class Token:
    """One lexed token.

    ``value`` carries the decoded payload for literals (int/float/str)
    and the spelling for identifiers.
    """

    kind: TokenKind
    text: str
    span: SourceSpan
    value: object = None

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"

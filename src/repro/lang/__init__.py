"""The OffloadMini language front end.

OffloadMini is the C++-like subset this reproduction compiles: classes
with single inheritance and virtual methods, structs, pointers, fixed
arrays, functions, and the paper's extensions — ``__offload`` blocks with
``domain(...)``/``cache(...)`` annotations, ``__outer`` pointer
qualification, the ``Array<T,N>`` accessor type, DMA intrinsics, and the
Section 5 ``__byte``/``__word`` addressing attributes.
"""

from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_program
from repro.lang.sema import SemanticAnalyzer, analyze
from repro.lang.tokens import Token, TokenKind

__all__ = [
    "Lexer",
    "Parser",
    "SemanticAnalyzer",
    "Token",
    "TokenKind",
    "analyze",
    "parse_program",
    "tokenize",
]

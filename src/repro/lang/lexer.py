"""Hand-written lexer for OffloadMini."""

from __future__ import annotations

from repro.errors import Diagnostic, LexError
from repro.lang.source import SourceFile
from repro.lang.tokens import KEYWORDS, Token, TokenKind

_PUNCT3: dict[str, TokenKind] = {}

_PUNCT2 = {
    "->": TokenKind.ARROW,
    "::": TokenKind.COLONCOLON,
    "&&": TokenKind.AMPAMP,
    "||": TokenKind.PIPEPIPE,
    "<<": TokenKind.LSHIFT,
    ">>": TokenKind.RSHIFT,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "==": TokenKind.EQEQ,
    "!=": TokenKind.NOTEQ,
    "+=": TokenKind.PLUS_ASSIGN,
    "-=": TokenKind.MINUS_ASSIGN,
    "*=": TokenKind.STAR_ASSIGN,
    "/=": TokenKind.SLASH_ASSIGN,
    "++": TokenKind.PLUSPLUS,
    "--": TokenKind.MINUSMINUS,
}

_PUNCT1 = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "~": TokenKind.TILDE,
    "!": TokenKind.BANG,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "=": TokenKind.ASSIGN,
    "@": TokenKind.AT,
    ":": TokenKind.COLON,
}

_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", "'": "'", '"': '"'}


class Lexer:
    """Turns an OffloadMini source buffer into a token stream."""

    def __init__(self, source: SourceFile):
        self.source = source
        self._text = source.text
        self._pos = 0

    # ------------------------------------------------------------- helpers

    def _peek(self, ahead: int = 0) -> str:
        index = self._pos + ahead
        return self._text[index] if index < len(self._text) else ""

    def _error(self, message: str, start: int) -> LexError:
        span = self.source.span(start, self._pos)
        return LexError([Diagnostic("E-lex", message, span)])

    def _skip_trivia(self) -> None:
        while self._pos < len(self._text):
            char = self._text[self._pos]
            if char in " \t\r\n":
                self._pos += 1
            elif char == "/" and self._peek(1) == "/":
                while self._pos < len(self._text) and self._text[self._pos] != "\n":
                    self._pos += 1
            elif char == "/" and self._peek(1) == "*":
                start = self._pos
                self._pos += 2
                while self._pos < len(self._text) and not (
                    self._text[self._pos] == "*" and self._peek(1) == "/"
                ):
                    self._pos += 1
                if self._pos >= len(self._text):
                    raise self._error("unterminated block comment", start)
                self._pos += 2
            else:
                return

    def _make(self, kind: TokenKind, start: int, value: object = None) -> Token:
        text = self._text[start : self._pos]
        return Token(kind, text, self.source.span(start, self._pos), value)

    # ------------------------------------------------------------ scanning

    def _scan_number(self, start: int) -> Token:
        # NOTE: character-class checks must reject the empty string that
        # _peek returns at end of input ("" is a substring of anything).
        text = self._text
        hex_digits = "0123456789abcdef"
        if text[start] == "0" and self._peek(1) in ("x", "X"):
            self._pos += 2
            digits_start = self._pos
            while self._peek() and self._peek().lower() in hex_digits:
                self._pos += 1
            if self._pos == digits_start:
                raise self._error("hex literal needs digits", start)
            value = int(text[start : self._pos], 16)
            return self._make(TokenKind.INT_LIT, start, value)
        while self._peek().isdigit():
            self._pos += 1
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._pos += 1
            while self._peek().isdigit():
                self._pos += 1
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in ("+", "-") and self._peek(2).isdigit())
        ):
            is_float = True
            self._pos += 1
            if self._peek() in ("+", "-"):
                self._pos += 1
            while self._peek().isdigit():
                self._pos += 1
        if self._peek() in ("f", "F"):
            is_float = True
            literal = text[start : self._pos]
            self._pos += 1
            return self._make(TokenKind.FLOAT_LIT, start, float(literal))
        literal = text[start : self._pos]
        if is_float:
            return self._make(TokenKind.FLOAT_LIT, start, float(literal))
        return self._make(TokenKind.INT_LIT, start, int(literal))

    def _scan_char(self, start: int) -> Token:
        self._pos += 1  # opening quote
        char = self._peek()
        if not char or char == "\n":
            raise self._error("unterminated character literal", start)
        if char == "\\":
            escape = self._peek(1)
            if escape not in _ESCAPES:
                raise self._error(f"unknown escape '\\{escape}'", start)
            value = _ESCAPES[escape]
            self._pos += 2
        else:
            value = char
            self._pos += 1
        if self._peek() != "'":
            raise self._error("unterminated character literal", start)
        self._pos += 1
        return self._make(TokenKind.CHAR_LIT, start, ord(value))

    def next_token(self) -> Token:
        """Scan and return the next token (EOF token at end of input)."""
        self._skip_trivia()
        start = self._pos
        if self._pos >= len(self._text):
            return self._make(TokenKind.EOF, start)
        char = self._text[self._pos]
        if char.isalpha() or char == "_":
            while self._peek().isalnum() or self._peek() == "_":
                self._pos += 1
            text = self._text[start : self._pos]
            kind = KEYWORDS.get(text, TokenKind.IDENT)
            return self._make(kind, start, text)
        if char.isdigit():
            return self._scan_number(start)
        if char == "'":
            return self._scan_char(start)
        pair = self._text[self._pos : self._pos + 2]
        if pair in _PUNCT2:
            self._pos += 2
            return self._make(_PUNCT2[pair], start)
        if char in _PUNCT1:
            self._pos += 1
            return self._make(_PUNCT1[char], start)
        self._pos += 1
        raise self._error(f"unexpected character {char!r}", start)

    def tokens(self) -> list[Token]:
        """Scan the whole buffer; the final element is the EOF token."""
        result = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.kind is TokenKind.EOF:
                return result


def tokenize(text: str, filename: str = "<input>") -> list[Token]:
    """Convenience wrapper: lex a string into a token list."""
    return Lexer(SourceFile(text, filename)).tokens()

"""Symbols and lexical scopes."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.lang.types import Type


class SymbolKind(enum.Enum):
    GLOBAL = "global"
    LOCAL = "local"
    PARAM = "param"
    FUNCTION = "function"
    FIELD = "field"  # implicit-this member access
    THIS = "this"


@dataclass(eq=False)
class Symbol:
    """A named entity resolved by sema (identity-hashed).

    ``offload_id`` records which offload block (if any) the symbol was
    *declared* inside; -1 means host code.  Lowering uses it to place the
    variable's storage (local store vs. host stack) and capture analysis
    uses it to decide what crosses the offload boundary.
    """

    name: str
    kind: SymbolKind
    type: Type
    decl: object = None
    offload_id: int = -1
    is_captured: bool = False
    #: True when '&symbol' appears anywhere; forces frame storage.
    address_taken: bool = False
    #: Unique id for stable ordering/mangling of locals.
    uid: int = field(default_factory=lambda: Symbol._next_uid())

    _uid_counter = 0

    @classmethod
    def _next_uid(cls) -> int:
        cls._uid_counter += 1
        return cls._uid_counter

    def __repr__(self) -> str:
        return f"Symbol({self.name!r}, {self.kind.value}, {self.type})"


class Scope:
    """One lexical scope; lookup walks outward through parents."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self._names: dict[str, Symbol] = {}

    def define(self, symbol: Symbol) -> bool:
        """Bind a symbol; returns False if the name exists in this scope."""
        if symbol.name in self._names:
            return False
        self._names[symbol.name] = symbol
        return True

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope._names:
                return scope._names[name]
            scope = scope.parent
        return None

    def lookup_here(self, name: str) -> Optional[Symbol]:
        return self._names.get(name)

"""Abstract syntax tree for OffloadMini.

Nodes are plain dataclasses.  Semantic analysis decorates expression
nodes in place with a resolved ``type`` attribute (a
:class:`repro.lang.types.Type`) and name nodes with their resolved
symbol; the lowering stage reads those annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SourceSpan


# --------------------------------------------------------------------------
# Type references (syntax-level; resolved to repro.lang.types in sema)
# --------------------------------------------------------------------------


@dataclass
class TypeRef:
    """Base class of syntactic type references."""

    span: Optional[SourceSpan] = field(default=None, kw_only=True)


@dataclass
class NamedTypeRef(TypeRef):
    """A builtin (``int``, ``float``, ...) or user type name."""

    name: str = ""


@dataclass
class PointerTypeRef(TypeRef):
    """One pointer level, with optional space/addressing qualifiers.

    ``outer`` forces the host memory space (the paper's ``__outer``);
    ``addressing`` is ``"byte"``, ``"word"`` or None (target default) —
    the Section 5 attributes.
    """

    pointee: TypeRef = field(default_factory=NamedTypeRef)
    outer: bool = False
    addressing: Optional[str] = None


@dataclass
class ArrayTypeRef(TypeRef):
    """A fixed-size array; the extent must be a constant expression."""

    element: TypeRef = field(default_factory=NamedTypeRef)
    size: "Expr" = None  # type: ignore[assignment]


@dataclass
class AccessorTypeRef(TypeRef):
    """The library type ``Array<T, N>`` (Section 4.2 accessor class)."""

    element: TypeRef = field(default_factory=NamedTypeRef)
    count: "Expr" = None  # type: ignore[assignment]


@dataclass
class HandleTypeRef(TypeRef):
    """``__offload_handle_t``."""


@dataclass
class FuncPtrTypeRef(TypeRef):
    """A function-pointer declarator: ``ret (*name)(params)``."""

    return_type: TypeRef = field(default_factory=NamedTypeRef)
    params: list[TypeRef] = field(default_factory=list)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    """Base expression; sema attaches ``.type`` to every instance."""

    span: Optional[SourceSpan] = field(default=None, kw_only=True)

    def __post_init__(self) -> None:
        self.type = None  # set by sema


@dataclass
class IntLit(Expr):
    value: int = 0
    suffix: str = "int"  # "int", "uint", "char"


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class NullLit(Expr):
    pass


@dataclass
class NameExpr(Expr):
    """An identifier use; sema sets ``.symbol``."""

    name: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        self.symbol = None


@dataclass
class ThisExpr(Expr):
    pass


@dataclass
class UnaryExpr(Expr):
    """Ops: ``-`` ``!`` ``~`` ``*`` (deref) ``&`` (address-of)."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class BinaryExpr(Expr):
    """Arithmetic, comparison, logical and bitwise binary operators."""

    op: str = ""
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass
class IndexExpr(Expr):
    """``base[index]`` — array, pointer or accessor indexing."""

    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class MemberExpr(Expr):
    """``base.name`` or ``base->name``; sema sets ``.field``/``.method``."""

    base: Expr = None  # type: ignore[assignment]
    name: str = ""
    arrow: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        self.field = None
        self.method = None


@dataclass
class CallExpr(Expr):
    """A call; callee is a NameExpr (free function / intrinsic) or a
    MemberExpr (method call).  Sema sets ``.target`` (FuncDecl or
    intrinsic name) and ``.is_virtual``."""

    callee: Expr = None  # type: ignore[assignment]
    args: list[Expr] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.target = None
        self.is_virtual = False


@dataclass
class CastExpr(Expr):
    target_type: TypeRef = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class SizeofExpr(Expr):
    """``sizeof(type)``; sema folds it to a constant."""

    target_type: TypeRef = None  # type: ignore[assignment]


@dataclass
class OffloadExpr(Expr):
    """``__offload [annotations] { body }`` — yields a handle.

    Captures are computed by sema: every enclosing-function local or
    parameter referenced inside the block (globals need no capture).
    """

    domain: list["DomainItem"] = field(default_factory=list)
    cache_kind: Optional[str] = None
    body: "BlockStmt" = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        self.captures = []  # list[Symbol], set by sema
        self.offload_id = -1  # set by sema (stable per program)


@dataclass
class DomainItem:
    """One entry of a ``domain(...)`` annotation.

    ``Class::method`` names a virtual method implementation;
    a bare ``name`` names a free function (for function pointers).
    ``this_space`` is ``"outer"`` (default) or ``"local"`` — which
    duplicate to pre-compile, selected with ``@local`` (e.g.
    ``domain(GameObject::move@local)``).
    """

    class_name: Optional[str]
    method_name: str
    this_space: str = "outer"
    span: Optional[SourceSpan] = None

    def display(self) -> str:
        prefix = f"{self.class_name}::" if self.class_name else ""
        suffix = "@local" if self.this_space == "local" else ""
        return f"{prefix}{self.method_name}{suffix}"


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    span: Optional[SourceSpan] = field(default=None, kw_only=True)


@dataclass
class BlockStmt(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class VarDeclStmt(Stmt):
    """A local declaration, possibly with an initializer.

    For accessor declarations (``Array<T,N> a(outer_expr);``) the
    initializer is the bound outer expression.
    """

    declared_type: TypeRef = None  # type: ignore[assignment]
    name: str = ""
    init: Optional[Expr] = None

    def __post_init__(self) -> None:
        self.symbol = None  # set by sema


@dataclass
class AssignStmt(Stmt):
    """``target op= value`` where op is '', '+', '-', '*' or '/'."""

    target: Expr = None  # type: ignore[assignment]
    op: str = ""
    value: Expr = None  # type: ignore[assignment]


@dataclass
class IncDecStmt(Stmt):
    """``target++;`` / ``target--;`` (statement-level only)."""

    target: Expr = None  # type: ignore[assignment]
    delta: int = 1


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class IfStmt(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    then_body: Stmt = None  # type: ignore[assignment]
    else_body: Optional[Stmt] = None


@dataclass
class WhileStmt(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    condition: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class JoinStmt(Stmt):
    """``__offload_join(handle);``"""

    handle: Expr = None  # type: ignore[assignment]


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------


@dataclass
class ParamDecl:
    declared_type: TypeRef
    name: str
    span: Optional[SourceSpan] = None

    def __post_init__(self) -> None:
        self.symbol = None  # set by sema


@dataclass
class FuncDecl:
    """A free function or a method (``owner`` set for methods)."""

    name: str
    return_type: TypeRef
    params: list[ParamDecl]
    body: Optional[BlockStmt]
    is_virtual: bool = False
    owner: Optional[str] = None  # owning class name for methods
    span: Optional[SourceSpan] = None

    def __post_init__(self) -> None:
        self.symbol = None  # set by sema

    @property
    def qualified_name(self) -> str:
        return f"{self.owner}::{self.name}" if self.owner else self.name


@dataclass
class FieldDecl:
    declared_type: TypeRef
    name: str
    span: Optional[SourceSpan] = None


@dataclass
class ClassDecl:
    """A ``class`` or ``struct`` (identical semantics here)."""

    name: str
    base: Optional[str]
    fields: list[FieldDecl]
    methods: list[FuncDecl]
    is_class: bool = True
    span: Optional[SourceSpan] = None


@dataclass
class GlobalVarDecl:
    declared_type: TypeRef
    name: str
    init: Optional[Expr] = None
    span: Optional[SourceSpan] = None

    def __post_init__(self) -> None:
        self.symbol = None  # set by sema


@dataclass
class Program:
    """A whole translation unit."""

    classes: list[ClassDecl] = field(default_factory=list)
    globals: list[GlobalVarDecl] = field(default_factory=list)
    functions: list[FuncDecl] = field(default_factory=list)
